"""repro — an HTAP database testbed.

A from-scratch Python reproduction of the systems landscape surveyed in
*"HTAP Databases: What is New and What is Next"* (Li & Zhang, SIGMOD
2022): the four storage architectures of Figure 1, every technique row
of Table 2 (transaction processing, analytical processing, data
synchronization, query optimization, resource scheduling), and the
benchmarks the paper discusses (TPC-C, CH-benCHmark, HTAPBench, ADAPT,
HAP).

Quick start::

    from repro import make_engine, TpccLoader, TpccScale

    engine = make_engine("a")            # Figure 1 architecture (a)-(d)
    TpccLoader(TpccScale()).load(engine)
    with engine.session() as s:          # OLTP
        row = s.read("warehouse", 1)
    result = engine.query(               # OLAP, cost-based hybrid scan
        "SELECT SUM(ol_amount) FROM order_line WHERE ol_quantity < 5"
    )
"""

from .bench import (
    ChBenchmarkDriver,
    HTAPBenchDriver,
    MixedWorkloadRunner,
    ScheduledWorkloadRunner,
    TpccLoader,
    TpccScale,
    TpccWorkload,
    run_adapt,
    run_hap_grid,
)
from .common import (
    Column,
    CostModel,
    DataType,
    LogicalClock,
    Predicate,
    ReproError,
    Schema,
    SimClock,
)
from .engines import (
    ColumnDeltaEngine,
    DiskRowIMCSEngine,
    DistributedReplicaEngine,
    HTAPEngine,
    RowIMCSEngine,
    make_engine,
)
from .obs import MetricsRegistry, SimTracer, get_registry, set_registry
from .query import AccessPath, Executor, Planner, parse
from .scheduler import (
    AdaptiveHTAPScheduler,
    FreshnessDrivenScheduler,
    GPUDevice,
    WorkloadDrivenScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "AccessPath",
    "AdaptiveHTAPScheduler",
    "ChBenchmarkDriver",
    "Column",
    "ColumnDeltaEngine",
    "CostModel",
    "DataType",
    "DiskRowIMCSEngine",
    "DistributedReplicaEngine",
    "Executor",
    "FreshnessDrivenScheduler",
    "GPUDevice",
    "HTAPBenchDriver",
    "HTAPEngine",
    "LogicalClock",
    "MetricsRegistry",
    "MixedWorkloadRunner",
    "Planner",
    "Predicate",
    "ReproError",
    "RowIMCSEngine",
    "ScheduledWorkloadRunner",
    "Schema",
    "SimClock",
    "SimTracer",
    "TpccLoader",
    "TpccScale",
    "TpccWorkload",
    "WorkloadDrivenScheduler",
    "__version__",
    "get_registry",
    "make_engine",
    "parse",
    "run_adapt",
    "run_hap_grid",
    "set_registry",
]
