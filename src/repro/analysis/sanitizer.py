"""Runtime sanitizers: happens-before and snapshot-isolation checkers.

htaplint proves properties of the *source*; these wrappers check the
*execution*.  Both attach to live objects by monkeypatching their public
entry points, record every check in ``sanitizer.*`` metrics, and (in
strict mode, the default) raise :class:`SanitizerViolation` at the
first broken invariant so the failing simulated step is the one on the
stack.

:class:`HappensBeforeChecker` wraps a
:class:`~repro.distributed.network.SimNetwork`:

* every ``send`` stamps the message with the sender's vector clock, the
  simulated send time, and a per-link sequence number;
* every delivery asserts the message was actually sent and not yet
  delivered (no duplication/fabrication), that simulated time did not
  run backwards, that per-link delivery order is monotone in send order
  (the bus has constant one-way latency, so any inversion is a bus
  bug), and that the sender-component of the stamped clock advances the
  receiver's view (a stale component means the receiver already saw a
  later state of the sender — a happens-before violation).

Dropped messages are handled naturally: their stamps are simply never
consumed, and sequence gaps are allowed (the order check is *monotone*,
not *consecutive*).  Stamps hold a strong reference to the message so a
recycled ``id()`` can never alias a dropped message's stamp.

:class:`SnapshotIsolationChecker` wraps a
:class:`~repro.txn.transaction.TransactionManager`:

* every ``MVCCRowStore.read``/``scan`` result is recomputed from the
  version-chain ground truth (``RowVersion.visible_at``) and compared —
  a cached, indexed, or fast-path read that returns a version outside
  its snapshot's visibility window is caught at the call site;
* every successful ``commit`` is checked for monotone commit
  timestamps and for the new versions actually being installed at the
  commit timestamp (first-committer-wins leaves no half-installed
  state behind).
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..common.predicate import ALWAYS_TRUE
from ..obs import get_registry


class SanitizerViolation(AssertionError):
    """A runtime invariant of the simulation was broken."""


# ------------------------------------------------------------------ vector clock


class VectorClock:
    """A node-id -> counter map with merge/tick, value-semantics copy."""

    __slots__ = ("_counts",)

    def __init__(self, counts: dict[str, int] | None = None):
        self._counts: dict[str, int] = dict(counts or {})

    def get(self, node: str) -> int:
        return self._counts.get(node, 0)

    def tick(self, node: str) -> None:
        self._counts[node] = self._counts.get(node, 0) + 1

    def merge(self, other: "VectorClock") -> None:
        for node, count in other._counts.items():
            if count > self._counts.get(node, 0):
                self._counts[node] = count

    def copy(self) -> "VectorClock":
        return VectorClock(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}:{c}" for n, c in sorted(self._counts.items()))
        return f"VC({inner})"


# ------------------------------------------------------------------ HB checker


@dataclass
class _Stamp:
    message: Any  # strong ref: keeps id(message) unambiguous for drops
    seq: int
    sent_at_us: float
    clock: VectorClock


@dataclass
class Violation:
    kind: str
    detail: str


class HappensBeforeChecker:
    """Vector-clock happens-before checking for a :class:`SimNetwork`."""

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.violations: list[Violation] = []
        self.deliveries_checked = 0
        self._network: Any | None = None
        self._orig_send: Callable | None = None
        self._orig_register: Callable | None = None
        self._clocks: dict[str, VectorClock] = {}
        self._stamps: dict[tuple[str, str, int], deque[_Stamp]] = {}
        self._link_seq: dict[tuple[str, str], int] = {}
        self._last_delivered_seq: dict[tuple[str, str], int] = {}
        registry = get_registry()
        self._m_checked = registry.counter("sanitizer.deliveries_checked")
        self._m_violations = registry.counter("sanitizer.violations")

    # -------------------------------------------------------------- wiring

    def attach(self, network: Any) -> "HappensBeforeChecker":
        """Wrap ``send`` and every (current and future) handler."""
        if self._network is not None:
            raise RuntimeError("checker is already attached")
        self._network = network
        self._orig_send = network.send
        self._orig_register = network.register

        def send(src: str, dst: str, message: Any) -> None:
            self._on_send(src, dst, message)
            self._orig_send(src, dst, message)

        def register(node_id: str, handler: Callable) -> None:
            self._orig_register(node_id, self._wrap_handler(node_id, handler))

        network.send = send
        network.register = register
        for node_id, handler in list(network._handlers.items()):
            network._handlers[node_id] = self._wrap_handler(node_id, handler)
        return self

    def detach(self) -> None:
        network = self._network
        if network is None:
            return
        # The wrappers were installed as instance attributes shadowing
        # the class methods; deleting them restores normal lookup.
        del network.send
        del network.register
        for node_id, handler in list(network._handlers.items()):
            original = getattr(handler, "_hb_original", None)
            if original is not None:
                network._handlers[node_id] = original
        self._network = None

    # -------------------------------------------------------------- checks

    def _clock(self, node: str) -> VectorClock:
        clock = self._clocks.get(node)
        if clock is None:
            clock = self._clocks[node] = VectorClock()
        return clock

    def _now_us(self) -> float:
        assert self._network is not None
        return self._network._cost.now_us()

    def _report(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(kind, detail))
        self._m_violations.inc()
        if self.strict:
            raise SanitizerViolation(f"{kind}: {detail}")

    def _on_send(self, src: str, dst: str, message: Any) -> None:
        sender = self._clock(src)
        sender.tick(src)
        seq = self._link_seq.get((src, dst), 0) + 1
        self._link_seq[(src, dst)] = seq
        stamp = _Stamp(message, seq, self._now_us(), sender.copy())
        self._stamps.setdefault((src, dst, id(message)), deque()).append(stamp)

    def _wrap_handler(self, node_id: str, handler: Callable) -> Callable:
        if getattr(handler, "_hb_original", None) is not None:
            return handler  # already wrapped

        def checked(src: str, message: Any) -> None:
            self._on_deliver(src, node_id, message)
            handler(src, message)

        checked._hb_original = handler
        return checked

    def _on_deliver(self, src: str, dst: str, message: Any) -> None:
        self.deliveries_checked += 1
        self._m_checked.inc()
        pending = self._stamps.get((src, dst, id(message)))
        if not pending:
            self._report(
                "phantom-delivery",
                f"{src}->{dst}: message delivered that was never sent "
                "on this link (or was already delivered once)",
            )
            return
        stamp = pending.popleft()
        now = self._now_us()
        if now < stamp.sent_at_us:
            self._report(
                "time-travel",
                f"{src}->{dst}: delivered at {now}us before its send "
                f"at {stamp.sent_at_us}us",
            )
        last = self._last_delivered_seq.get((src, dst), 0)
        if stamp.seq <= last:
            self._report(
                "link-reorder",
                f"{src}->{dst}: delivery seq {stamp.seq} after seq {last} "
                "on a constant-latency link",
            )
        else:
            self._last_delivered_seq[(src, dst)] = stamp.seq
        receiver = self._clock(dst)
        if stamp.clock.get(src) <= receiver.get(src):
            self._report(
                "happens-before",
                f"{src}->{dst}: stamped clock {stamp.clock} does not "
                f"advance the receiver's view of {src} "
                f"(receiver already at {receiver.get(src)})",
            )
        receiver.merge(stamp.clock)
        receiver.tick(dst)


# ------------------------------------------------------------------ SI checker


@dataclass
class _WrappedStore:
    store: Any
    orig_read: Callable
    orig_scan: Callable


class SnapshotIsolationChecker:
    """Visibility ground-truthing for MVCC reads + commit-path checks."""

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.violations: list[Violation] = []
        self.reads_checked = 0
        self._manager: Any | None = None
        self._orig_commit: Callable | None = None
        self._orig_create_table: Callable | None = None
        self._wrapped: list[_WrappedStore] = []
        self._last_commit_ts: Any | None = None
        registry = get_registry()
        self._m_checked = registry.counter("sanitizer.reads_checked")
        self._m_violations = registry.counter("sanitizer.violations")

    # -------------------------------------------------------------- wiring

    def attach(self, manager: Any) -> "SnapshotIsolationChecker":
        if self._manager is not None:
            raise RuntimeError("checker is already attached")
        self._manager = manager
        for store in manager._stores.values():
            self._wrap_store(store)
        self._orig_create_table = manager.create_table
        self._orig_commit = manager.commit

        def create_table(schema: Any) -> Any:
            store = self._orig_create_table(schema)
            self._wrap_store(store)
            return store

        def commit(txn: Any) -> Any:
            writes = [(w.table, w.key) for w in txn._writes]
            commit_ts = self._orig_commit(txn)
            self._check_commit(txn, commit_ts, writes)
            return commit_ts

        manager.create_table = create_table
        manager.commit = commit
        return self

    def detach(self) -> None:
        manager = self._manager
        if manager is None:
            return
        del manager.create_table
        del manager.commit
        for wrapped in self._wrapped:
            del wrapped.store.read
            del wrapped.store.scan
        self._wrapped.clear()
        self._manager = None

    # -------------------------------------------------------------- checks

    def _report(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(kind, detail))
        self._m_violations.inc()
        if self.strict:
            raise SanitizerViolation(f"{kind}: {detail}")

    @staticmethod
    def _ground_truth_read(store: Any, key: Any, snapshot_ts: Any) -> Any:
        chain = store._chains.get(key)
        if not chain:
            return None
        for version in reversed(chain):
            if version.visible_at(snapshot_ts):
                return version.row
        return None

    def _wrap_store(self, store: Any) -> None:
        orig_read = store.read
        orig_scan = store.scan
        table = store.schema.table_name

        def read(key: Any, snapshot_ts: Any) -> Any:
            got = orig_read(key, snapshot_ts)
            self.reads_checked += 1
            self._m_checked.inc()
            expected = self._ground_truth_read(store, key, snapshot_ts)
            if got != expected:
                self._report(
                    "si-read",
                    f"{table}[{key!r}] @ ts={snapshot_ts}: read returned "
                    f"{got!r} but the visible version is {expected!r}",
                )
            return got

        def scan(snapshot_ts: Any, predicate: Any = ALWAYS_TRUE, **kwargs: Any) -> Any:
            got = orig_scan(snapshot_ts, predicate, **kwargs)
            self.reads_checked += 1
            self._m_checked.inc()
            key_of = store.schema.key_of
            expected: dict[Any, Any] = {}
            for key in list(store._chains):
                row = self._ground_truth_read(store, key, snapshot_ts)
                if row is not None and predicate.matches(row, store.schema):
                    expected[key] = row
            got_by_key = {key_of(row): row for row in got}
            if got_by_key != expected:
                missing = sorted(set(expected) - set(got_by_key))
                extra = sorted(set(got_by_key) - set(expected))
                self._report(
                    "si-scan",
                    f"{table} @ ts={snapshot_ts}: scan visibility mismatch "
                    f"(missing keys {missing[:5]!r}, phantom keys "
                    f"{extra[:5]!r})",
                )
            return got

        store.read = read
        store.scan = scan
        self._wrapped.append(_WrappedStore(store, orig_read, orig_scan))

    def _check_commit(self, txn: Any, commit_ts: Any, writes: list) -> None:
        assert self._manager is not None
        if self._last_commit_ts is not None and commit_ts <= self._last_commit_ts:
            self._report(
                "commit-order",
                f"commit_ts {commit_ts} not after previous {self._last_commit_ts}",
            )
        self._last_commit_ts = commit_ts
        if commit_ts <= txn.begin_ts:
            self._report(
                "commit-ts",
                f"txn {txn.txn_id}: commit_ts {commit_ts} does not follow "
                f"begin_ts {txn.begin_ts}",
            )
        for table, key in writes:
            store = self._manager.store(table)
            chain = store._chains.get(key)
            if not chain:
                continue  # net no-op write (insert+delete in one txn)
            newest = chain[-1]
            touched = newest.begin_ts == commit_ts or newest.end_ts == commit_ts
            if not touched:
                self._report(
                    "commit-install",
                    f"txn {txn.txn_id}: {table}[{key!r}] shows no version "
                    f"installed/closed at commit_ts {commit_ts} "
                    f"(newest is [{newest.begin_ts}, {newest.end_ts}))",
                )


# ------------------------------------------------------------------ context


@contextmanager
def happens_before(network: Any, strict: bool = True) -> Iterator[HappensBeforeChecker]:
    checker = HappensBeforeChecker(strict=strict).attach(network)
    try:
        yield checker
    finally:
        checker.detach()


@contextmanager
def snapshot_isolation(
    manager: Any, strict: bool = True
) -> Iterator[SnapshotIsolationChecker]:
    checker = SnapshotIsolationChecker(strict=strict).attach(manager)
    try:
        yield checker
    finally:
        checker.detach()
