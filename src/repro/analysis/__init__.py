"""Static analysis (htaplint) and runtime sanitizers for the testbed.

Two enforcement layers for the invariants the paper reproduction rests
on:

* :mod:`repro.analysis.core` + :mod:`repro.analysis.rules` — *htaplint*,
  an AST-based analyzer with repo-specific rules (HTL001-HTL005) run via
  ``python -m repro.analysis``;
* :mod:`repro.analysis.sanitizer` — runtime checkers that wrap the
  simulated cluster's message bus (vector-clock happens-before) and the
  MVCC read path (snapshot-isolation visibility) during tests.
"""

from .core import (
    SUPPRESSION_AUDIT_RULE,
    FileContext,
    Finding,
    RuleInfo,
    Suppression,
    all_rules,
    analyze_file,
    analyze_source,
    analyze_tree,
    parse_suppressions,
    render_human,
    render_json,
)

__all__ = [
    "SUPPRESSION_AUDIT_RULE",
    "FileContext",
    "Finding",
    "RuleInfo",
    "Suppression",
    "all_rules",
    "analyze_file",
    "analyze_source",
    "analyze_tree",
    "parse_suppressions",
    "render_human",
    "render_json",
]
