"""Static analysis (htaplint) and runtime sanitizers for the testbed.

Two enforcement layers for the invariants the paper reproduction rests
on:

* :mod:`repro.analysis.core` + :mod:`repro.analysis.rules` — *htaplint*,
  an AST-based analyzer with repo-specific rules (HTL001-HTL009) run via
  ``python -m repro.analysis``.  HTL006-HTL009 are whole-program: a
  project index (:mod:`repro.analysis.project`) resolves cross-module
  calls and a CFG dominance pass (:mod:`repro.analysis.dataflow`)
  checks guard-before-sink path invariants;
* :mod:`repro.analysis.sanitizer` — runtime checkers that wrap the
  simulated cluster's message bus (vector-clock happens-before) and the
  MVCC read path (snapshot-isolation visibility) during tests.
"""

from .core import (
    SUPPRESSION_AUDIT_RULE,
    FileContext,
    Finding,
    RuleInfo,
    Suppression,
    all_rules,
    analyze_file,
    analyze_source,
    analyze_tree,
    parse_suppressions,
    render_human,
    render_json,
)
from .project import ProjectIndex, load_or_build, tree_digest
from .report import (
    apply_baseline,
    load_baseline,
    render_sarif,
    write_baseline,
)

__all__ = [
    "SUPPRESSION_AUDIT_RULE",
    "FileContext",
    "Finding",
    "RuleInfo",
    "Suppression",
    "all_rules",
    "analyze_file",
    "analyze_source",
    "analyze_tree",
    "parse_suppressions",
    "render_human",
    "render_json",
    "ProjectIndex",
    "load_or_build",
    "tree_digest",
    "apply_baseline",
    "load_baseline",
    "render_sarif",
    "write_baseline",
]
