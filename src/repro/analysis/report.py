"""SARIF output and baseline subtraction for htaplint.

CI wants two things beyond exit codes: annotatable diffs (GitHub's code
scanning ingests SARIF 2.1.0 and renders findings inline on the PR) and
a way to land the analyzer before the tree is perfectly clean
(``--baseline`` subtracts a committed snapshot of known findings so
only *new* violations fail the build).

Baselines are keyed by ``(rule, path, message)`` — deliberately not by
line, so pure moves (an unrelated edit shifting a known finding down
three lines) do not resurrect it, while any semantic change to the
finding (different message, different file) does.
"""

from __future__ import annotations

import json
from pathlib import Path

from .core import Finding, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "htaplint"


def render_sarif(findings: list[Finding]) -> str:
    """Findings as a minimal single-run SARIF 2.1.0 log."""
    rules = [
        {
            "id": info.id,
            "name": info.name,
            "shortDescription": {"text": info.description},
        }
        for info in all_rules()
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": f.line},
                    }
                }
            ],
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/htaplint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)


# ------------------------------------------------------------------ baseline


def _key(f: Finding) -> tuple[str, str, str]:
    return (f.rule, f.path, f.message)


def write_baseline(findings: list[Finding], path: Path | str) -> None:
    """Snapshot current findings as a committed baseline file."""
    entries = [
        {"rule": r, "path": p, "message": m}
        for r, p, m in sorted({_key(f) for f in findings})
    ]
    Path(path).write_text(
        json.dumps({"version": 1, "findings": entries}, indent=2) + "\n"
    )


def load_baseline(path: Path | str) -> set[tuple[str, str, str]]:
    raw = json.loads(Path(path).read_text())
    entries = raw.get("findings", []) if isinstance(raw, dict) else raw
    out: set[tuple[str, str, str]] = set()
    for entry in entries:
        out.add((entry["rule"], entry["path"], entry["message"]))
    return out


def apply_baseline(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> list[Finding]:
    """Findings not covered by the baseline (i.e. new violations)."""
    return [f for f in findings if _key(f) not in baseline]
