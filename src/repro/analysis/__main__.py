"""CLI: ``python -m repro.analysis`` — lint the repro tree.

One whole-program run: the project index (imports, class hierarchy,
attribute types) is built once — or reloaded from ``--cache`` when the
tree digest matches — and every rule, module-local and interprocedural,
runs over it.

Exit codes: 0 no findings, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import all_rules, analyze_tree, render_human, render_json
from .report import apply_baseline, load_baseline, render_sarif, write_baseline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="htaplint: repo-aware static analysis for the HTAP testbed",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules",
        metavar="HTL00X[,HTL00Y]",
        help="comma-separated rule ids to run (default: all, incl. HTL000 audit)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="package root to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract a committed baseline; only new findings are reported",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        help="pickle the project index keyed by tree digest (CI time box)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for info in all_rules():
            print(f"{info.id}  {info.name}: {info.description}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    root = Path(args.root) if args.root else None
    cache_path = Path(args.cache) if args.cache else None
    try:
        findings = analyze_tree(
            root=root, rule_ids=rule_ids, cache_path=cache_path
        )
    except ValueError as err:
        print(f"htaplint: {err}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        print(
            f"htaplint: baseline of {len(findings)} finding(s) written to "
            f"{args.write_baseline}"
        )
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as err:
            print(f"htaplint: bad baseline {args.baseline}: {err}", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, baseline)

    if args.format == "json":
        report = render_json(findings)
    elif args.format == "sarif":
        report = render_sarif(findings)
    else:
        report = render_human(findings)
    if args.output:
        Path(args.output).write_text(report + "\n")
    else:
        print(report)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
