"""CLI: ``python -m repro.analysis`` — lint the repro tree.

Exit codes: 0 no findings, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import all_rules, analyze_tree, render_human, render_json


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="htaplint: repo-aware static analysis for the HTAP testbed",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules",
        metavar="HTL00X[,HTL00Y]",
        help="comma-separated rule ids to run (default: all, incl. HTL000 audit)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="package root to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for info in all_rules():
            print(f"{info.id}  {info.name}: {info.description}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    root = Path(args.root) if args.root else None
    try:
        findings = analyze_tree(root=root, rule_ids=rule_ids)
    except ValueError as err:
        print(f"htaplint: {err}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_human(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
