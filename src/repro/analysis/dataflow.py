"""Per-function CFGs and the guard-dominance pass.

The exactly-once rules are *path* properties: "every path from this
entry to that sink passes through this guard first".  Name-based
reachability cannot express them (a guard behind an ``if`` still
"reaches"), so this module builds a statement-level control-flow graph
per function and answers dominance questions on it:

* :func:`build_cfg` — one node per simple statement plus headers for
  ``if``/``while``/``for``/``try``; edges for branches, loops (with
  back edges), ``break``/``continue``/``return``/``raise``, and
  exception flow from every ``try``-body statement to every handler.
  ``raise`` exits are kept separate from ``return`` exits so "raising
  *is* the guard outcome" paths (ownership check throws
  ``StaleEpochError``) don't count as unguarded escapes.
* :func:`dominators` — the classic iterative dataflow.
* :func:`unguarded` — sinks reachable from entry without passing a
  guard node, computed as vertex-cut reachability (equivalent to "no
  guard set member dominates the sink" but robust when several guard
  nodes jointly cover the paths).

**The at-least-once loop assumption.**  With ``loops_execute=True``,
``for`` bodies are assumed to run at least once (the header's bypass
edge is dropped).  This is the one deliberate unsoundness in the pass,
and it is scoped to the shape that needs it: the cluster's guard loops
iterate the same ``by_shard`` grouping that drives the downstream
propose fan-out, so the zero-iteration path that skips the guard also
has nothing to propose.  ``while`` loops never get the assumption —
their zero-iteration path is exactly the unbounded-retry hazard HTL007
checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable

ENTRY = 0
EXIT_RETURN = 1
EXIT_RAISE = 2


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    #: node id -> AST statement (None for the three synthetic nodes).
    stmts: dict[int, ast.stmt | None] = field(default_factory=dict)
    succs: dict[int, set[int]] = field(default_factory=dict)
    preds: dict[int, set[int]] = field(default_factory=dict)
    #: id(stmt) -> node id, for callers that hold AST nodes.
    node_of: dict[int, int] = field(default_factory=dict)

    def add_node(self, stmt: ast.stmt | None) -> int:
        nid = len(self.stmts)
        self.stmts[nid] = stmt
        self.succs.setdefault(nid, set())
        self.preds.setdefault(nid, set())
        if stmt is not None:
            self.node_of[id(stmt)] = nid
        return nid

    def add_edge(self, src: int, dst: int) -> None:
        self.succs[src].add(dst)
        self.preds[dst].add(src)

    def nodes(self) -> Iterable[int]:
        return self.stmts.keys()


class _Builder:
    def __init__(self, loops_execute: bool):
        self.cfg = CFG()
        self.loops_execute = loops_execute
        for _ in (ENTRY, EXIT_RETURN, EXIT_RAISE):
            self.cfg.add_node(None)
        #: (break-targets, continue-targets) stack for loop bodies.
        self._loops: list[tuple[set[int], int]] = []
        #: handler-entry nodes of enclosing try blocks (exception flow).
        self._handlers: list[list[int]] = []

    # ------------------------------------------------------------ plumbing

    def _join(self, frontier: set[int], node: int) -> None:
        for src in frontier:
            self.cfg.add_edge(src, node)

    def _stmt_node(self, stmt: ast.stmt) -> int:
        nid = self.cfg.add_node(stmt)
        # Any statement inside a try body may transfer to its handlers.
        for handlers in self._handlers:
            for h in handlers:
                self.cfg.add_edge(nid, h)
        return nid

    # ------------------------------------------------------------ sequence

    def seq(self, stmts: list[ast.stmt], frontier: set[int]) -> set[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: set[int]) -> set[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._stmt_node(stmt)
            self._join(frontier, node)
            return self.seq(stmt.body, {node})
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        node = self._stmt_node(stmt)
        self._join(frontier, node)
        if isinstance(stmt, ast.Return):
            self.cfg.add_edge(node, EXIT_RETURN)
            return set()
        if isinstance(stmt, ast.Raise):
            # An enclosing handler may catch it; the edge to the
            # handlers was added by _stmt_node already.
            self.cfg.add_edge(node, EXIT_RAISE)
            return set()
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][0].add(node)
            return set()
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self.cfg.add_edge(node, self._loops[-1][1])
            return set()
        return {node}

    # ------------------------------------------------------------ compound

    def _if(self, stmt: ast.If, frontier: set[int]) -> set[int]:
        test = self._stmt_node(stmt)
        self._join(frontier, test)
        out = self.seq(stmt.body, {test})
        if stmt.orelse:
            out |= self.seq(stmt.orelse, {test})
        else:
            out |= {test}
        return out

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, frontier: set[int]
    ) -> set[int]:
        header = self._stmt_node(stmt)
        self._join(frontier, header)
        breaks: set[int] = set()
        self._loops.append((breaks, header))
        body_out = self.seq(stmt.body, {header})
        self._loops.pop()
        for src in body_out:
            self.cfg.add_edge(src, header)  # back edge
        infinite = isinstance(stmt, ast.While) and (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        at_least_once = self.loops_execute and isinstance(
            stmt, (ast.For, ast.AsyncFor)
        )
        if at_least_once:
            out = set(body_out) | breaks
            if not body_out and not breaks:
                out = {header}  # empty body degenerates to the header
        elif infinite:
            out = set(breaks)
        else:
            out = {header} | breaks
        if stmt.orelse:
            out = self.seq(stmt.orelse, out or {header})
        return out

    def _try(self, stmt: ast.Try, frontier: set[int]) -> set[int]:
        header = self._stmt_node(stmt)
        self._join(frontier, header)
        handler_entries = [self.cfg.add_node(h) for h in stmt.handlers]
        self._handlers.append(handler_entries)
        body_out = self.seq(stmt.body, {header})
        self._handlers.pop()
        for entry in handler_entries:
            self.cfg.add_edge(header, entry)
        out = set(body_out)
        if stmt.orelse:
            out = self.seq(stmt.orelse, out) if out else set()
        for handler, entry in zip(stmt.handlers, handler_entries):
            out |= self.seq(handler.body, {entry})
        if stmt.finalbody:
            out = self.seq(stmt.finalbody, out or {header})
        return out

    def _match(self, stmt: ast.Match, frontier: set[int]) -> set[int]:
        header = self._stmt_node(stmt)
        self._join(frontier, header)
        out: set[int] = {header}
        for case in stmt.cases:
            out |= self.seq(case.body, {header})
        return out


def build_cfg(
    fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    loops_execute: bool = False,
) -> CFG:
    """CFG of ``fn``'s body; see the module docstring for semantics."""
    builder = _Builder(loops_execute)
    if isinstance(fn, ast.Lambda):
        body: list[ast.stmt] = [ast.copy_location(ast.Expr(value=fn.body), fn.body)]
    else:
        body = fn.body
    frontier = builder.seq(body, {ENTRY})
    builder._join(frontier, EXIT_RETURN)
    return builder.cfg


# ================================================================ queries


def dominators(cfg: CFG) -> dict[int, set[int]]:
    """dom(n) for every node: the classic iterative dataflow
    (dom(entry) = {entry}; dom(n) = {n} ∪ ⋂ dom(pred))."""
    all_nodes = set(cfg.nodes())
    dom: dict[int, set[int]] = {n: set(all_nodes) for n in all_nodes}
    dom[ENTRY] = {ENTRY}
    changed = True
    while changed:
        changed = False
        for n in all_nodes:
            if n == ENTRY:
                continue
            preds = cfg.preds[n]
            if preds:
                new = set.intersection(*(dom[p] for p in preds)) | {n}
            else:
                new = {n}  # unreachable
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


def reachable_avoiding(cfg: CFG, avoid: set[int], start: int = ENTRY) -> set[int]:
    """Nodes reachable from ``start`` without entering ``avoid``."""
    seen: set[int] = set()
    stack = [start] if start not in avoid else []
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for succ in sorted(cfg.succs[node]):
            if succ not in avoid and succ not in seen:
                stack.append(succ)
    return seen


def unguarded(cfg: CFG, guards: set[int], sinks: set[int]) -> set[int]:
    """The subset of ``sinks`` reachable from entry on some path that
    passes no guard node (a sink in ``guards`` counts as guarded)."""
    open_paths = reachable_avoiding(cfg, guards)
    return {s for s in sinks if s in open_paths and s not in guards}


def establishes_on_all_paths(cfg: CFG, guards: set[int]) -> bool:
    """True when every *normal* (returning) path passes a guard node.
    Paths that end in ``raise`` are exempt — for ownership guards the
    raise IS the guard's rejection outcome."""
    return EXIT_RETURN not in reachable_avoiding(cfg, guards)


def stmt_nodes(cfg: CFG, predicate: Callable[[ast.stmt], bool]) -> set[int]:
    """Node ids whose statement satisfies ``predicate``."""
    out: set[int] = set()
    for nid, stmt in cfg.stmts.items():
        if stmt is not None and predicate(stmt):
            out.add(nid)
    return out


def calls_in_stmt(stmt: ast.stmt, include_nested_defs: bool = False):
    """Calls syntactically inside one statement, excluding (by default)
    bodies of nested function definitions — those run when *called*,
    not when the statement executes.  Lambda bodies **are** included:
    for the analyses here a lambda argument is assumed invoked by its
    callee (``retrying(lambda: ...)``).  Headers only for compound
    statements: an ``if``/``while``/``for``/``with``/``try`` statement
    contributes its test/iter/context expressions, not its body (body
    statements are their own CFG nodes)."""
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        roots: list[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        roots = []
    elif isinstance(stmt, ast.ExceptHandler):
        roots = [stmt.type] if stmt.type is not None else []
    elif isinstance(stmt, ast.Match):
        roots = [stmt.subject]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # Defining a function executes nothing of its body; default
        # values and decorators do run at definition time.
        roots = [*stmt.args.defaults, *stmt.args.kw_defaults, *stmt.decorator_list]
        roots = [r for r in roots if r is not None]
        if include_nested_defs:
            roots = [stmt]
    else:
        roots = [stmt]
    out: list[ast.Call] = []
    for root in roots:
        stack: list[ast.AST] = [root]
        while stack:
            node = stack.pop()
            if (
                not include_nested_defs
                and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not root
            ):
                continue
            if isinstance(node, ast.Call):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
    out.reverse()
    return out
