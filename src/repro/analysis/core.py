"""htaplint core: findings, rules, suppressions, and the analyzer driver.

The testbed's credibility rests on invariants no generic linter can
see — determinism (SimClock/SeededRNG only), cache-version bumps on
every write path, simulated-cost parity across vectorized/scalar
splits, registered metric names, and no swallowed errors on the
txn/WAL/Raft paths.  ``htaplint`` turns those reviewer conventions into
machine-checked gates: an AST pass per file, a rule registry, per-line
suppression comments, JSON/human output, and exit codes for CI.

Suppression syntax (one per line, after the offending construct)::

    something_suspicious()  # htaplint: ignore[HTL001] -- reason it is safe

The rule list is mandatory and so is the ``-- reason`` tail; a bare
``# htaplint: ignore`` (or one without a reason) is itself a finding
(**HTL000**, the self-hosting suppression audit), and HTL000 cannot be
suppressed.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .project import ProjectIndex

# --------------------------------------------------------------------- findings


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str            # repo-relative, forward slashes
    line: int            # 1-based
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


# --------------------------------------------------------------------- suppressions

#: ``# htaplint: ignore[HTL001,HTL003] -- reason`` (reason mandatory).
_SUPPRESS_RE = re.compile(
    r"#\s*htaplint:\s*ignore"
    r"(?:\[(?P<rules>[A-Z0-9,\s]*)\])?"
    r"(?:\s*--\s*(?P<reason>.*))?\s*$"
)

SUPPRESSION_AUDIT_RULE = "HTL000"


@dataclass(frozen=True)
class Suppression:
    line: int
    rules: frozenset[str]
    reason: str


def parse_suppressions(source: str, path: str) -> tuple[list[Suppression], list[Finding]]:
    """Extract suppression comments; malformed ones become HTL000 findings.

    Uses the tokenizer (not a line regex) so ``# htaplint:`` inside a
    string literal is never mistaken for a directive.
    """
    suppressions: list[Suppression] = []
    audit: list[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []
    for tok in comments:
        if "htaplint" not in tok.string:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            # Mentions htaplint but is not a well-formed directive
            # (e.g. prose in a comment); leave it alone.
            if re.search(r"#\s*htaplint:\s*ignore", tok.string):
                audit.append(
                    Finding(
                        SUPPRESSION_AUDIT_RULE,
                        path,
                        tok.start[0],
                        "malformed suppression; use "
                        "`# htaplint: ignore[RULE] -- reason`",
                    )
                )
            continue
        line = tok.start[0]
        rules_raw = match.group("rules")
        reason = (match.group("reason") or "").strip()
        rules = frozenset(
            r.strip() for r in (rules_raw or "").split(",") if r.strip()
        )
        if not rules:
            audit.append(
                Finding(
                    SUPPRESSION_AUDIT_RULE,
                    path,
                    line,
                    "bare suppression: name the rule(s), e.g. "
                    "`# htaplint: ignore[HTL001] -- reason`",
                )
            )
            continue
        if not reason:
            audit.append(
                Finding(
                    SUPPRESSION_AUDIT_RULE,
                    path,
                    line,
                    f"suppression of {','.join(sorted(rules))} has no reason; "
                    "append `-- <why this is safe>`",
                )
            )
            continue
        suppressions.append(Suppression(line=line, rules=rules, reason=reason))
    return suppressions, audit


# --------------------------------------------------------------------- context


@dataclass
class FileContext:
    """Everything a rule needs about one source file."""

    path: str                      # repo-relative with forward slashes
    source: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)
    #: Metric/span registry for HTL004 (injected by the driver).
    registered_metrics: frozenset[str] = field(default_factory=frozenset)
    registered_spans: frozenset[str] = field(default_factory=frozenset)
    #: Whole-program index for HTL006-HTL009.  The tree driver builds
    #: it once and shares it across files; rules fall back to a
    #: single-module index when it is absent (snippet fixtures).
    project: "ProjectIndex | None" = None

    def in_subtree(self, *prefixes: str) -> bool:
        return any(
            self.path.startswith(p) or f"/{p}" in f"/{self.path}"
            for p in prefixes
        )


# --------------------------------------------------------------------- rules


@dataclass(frozen=True)
class RuleInfo:
    id: str
    name: str
    description: str


RuleFn = Callable[[FileContext], Iterator[Finding]]

_RULES: dict[str, tuple[RuleInfo, RuleFn]] = {}


def register(rule_id: str, name: str, description: str):
    """Class/function decorator adding a rule to the global registry."""

    def deco(fn: RuleFn) -> RuleFn:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _RULES[rule_id] = (RuleInfo(rule_id, name, description), fn)
        return fn

    return deco


def all_rules() -> list[RuleInfo]:
    # Import for side effect: rule modules self-register on first use.
    from . import rules as _rules  # noqa: F401

    return sorted((info for info, _ in _RULES.values()), key=lambda r: r.id)


# --------------------------------------------------------------------- AST helpers


def attr_chain(node: ast.AST) -> list[str]:
    """Dotted name parts of an attribute/call chain, outermost last.

    ``self.scan_cache.invalidate`` -> ["self", "scan_cache", "invalidate"];
    nested calls/subscripts are looked through:
    ``self._chains.setdefault(k, []).append`` ->
    ["self", "_chains", "setdefault", "append"].
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            break
    parts.reverse()
    return parts


def first_str_arg(call: ast.Call) -> str | None:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


# --------------------------------------------------------------------- driver

#: Paths (relative to the repro package root) never analyzed.
_SKIP_PARTS = {"__pycache__"}


def _iter_py_files(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_PARTS for part in path.parts):
            continue
        yield path


def _load_registry_names(root: Path) -> tuple[frozenset[str], frozenset[str]]:
    """Statically read REGISTERED_METRICS / REGISTERED_SPANS from
    ``obs/names.py`` under the analyzed tree (no import side effects)."""
    names_py = root / "obs" / "names.py"
    if not names_py.is_file():
        return frozenset(), frozenset()
    metrics: set[str] = set()
    spans: set[str] = set()
    tree = ast.parse(names_py.read_text())
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        names = {t.id for t in targets if isinstance(t, ast.Name)}
        value = node.value
        if value is None:
            continue
        literals = {
            c.value
            for c in ast.walk(value)
            if isinstance(c, ast.Constant) and isinstance(c.value, str)
        }
        if "REGISTERED_METRICS" in names:
            metrics |= literals
        elif "REGISTERED_SPANS" in names:
            spans |= literals
    return frozenset(metrics), frozenset(spans)


def _selected(rule_ids: Iterable[str] | None) -> list[tuple[RuleInfo, RuleFn]]:
    # Import for side effect: rule modules self-register on first use.
    from . import rules as _rules  # noqa: F401

    if rule_ids is None:
        return [pair for _, pair in sorted(_RULES.items())]
    unknown = set(rule_ids) - set(_RULES)
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [_RULES[r] for r in sorted(rule_ids)]


def analyze_file(
    ctx: FileContext, rule_ids: Iterable[str] | None = None
) -> list[Finding]:
    """Run rules over one parsed file, applying same-line suppressions."""
    findings: list[Finding] = []
    suppressed_lines = {s.line: s.rules for s in ctx.suppressions}
    for _info, fn in _selected(rule_ids):
        for finding in fn(ctx):
            rules_here = suppressed_lines.get(finding.line)
            if rules_here is not None and finding.rule in rules_here:
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def analyze_source(
    source: str,
    path: str = "snippet.py",
    rule_ids: Iterable[str] | None = None,
    registered_metrics: frozenset[str] | None = None,
    registered_spans: frozenset[str] | None = None,
) -> list[Finding]:
    """Analyze an in-memory snippet (fixture tests use this)."""
    from .project import ProjectIndex

    suppressions, audit = parse_suppressions(source, path)
    tree = ast.parse(source)
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        suppressions=suppressions,
        registered_metrics=registered_metrics or frozenset(),
        registered_spans=registered_spans or frozenset(),
        project=ProjectIndex.from_single(path, tree),
    )
    findings = analyze_file(ctx, rule_ids)
    if rule_ids is None or SUPPRESSION_AUDIT_RULE in set(rule_ids):
        findings.extend(audit)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def analyze_tree(
    root: Path | str | None = None,
    rule_ids: Iterable[str] | None = None,
    cache_path: Path | str | None = None,
) -> list[Finding]:
    """Analyze every ``.py`` file under the repro package root.

    ``root`` defaults to the installed ``repro`` package directory, so
    ``python -m repro.analysis`` lints whatever tree it runs from.  The
    whole-program index is built once for the tree (reloaded from
    ``cache_path`` when the content digest matches) and shared by every
    file's :class:`FileContext`.
    """
    from .project import ProjectIndex, load_or_build

    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    metrics, spans = _load_registry_names(root)
    if cache_path is not None:
        project = load_or_build(root, Path(cache_path))
    else:
        project = ProjectIndex.build(root)
    findings: list[Finding] = []
    for path in _iter_py_files(root):
        rel = path.relative_to(root).as_posix()
        source = path.read_text()
        suppressions, audit = parse_suppressions(source, rel)
        try:
            tree = ast.parse(source)
        except SyntaxError as err:
            findings.append(
                Finding("HTL999", rel, err.lineno or 1, f"syntax error: {err.msg}")
            )
            continue
        ctx = FileContext(
            path=rel,
            source=source,
            tree=tree,
            suppressions=suppressions,
            registered_metrics=metrics,
            registered_spans=spans,
            project=project,
        )
        findings.extend(analyze_file(ctx, rule_ids))
        if rule_ids is None or SUPPRESSION_AUDIT_RULE in set(rule_ids):
            findings.extend(audit)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# --------------------------------------------------------------------- output


def render_human(findings: list[Finding]) -> str:
    if not findings:
        return "htaplint: no findings"
    lines = [f.render() for f in findings]
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{r}: {n}" for r, n in sorted(by_rule.items()))
    lines.append(f"htaplint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
        },
        indent=2,
    )
