"""Whole-program index: modules, imports, classes, and call resolution.

The module-local :mod:`~repro.analysis.callgraph` deliberately treats
every cross-object call as opaque, which is the right cost/precision
point for HTL002/HTL003 but useless for the elastic cluster's
exactly-once invariants: the path from
``DistributedCluster.execute_transaction`` to a Raft ``propose_and_wait``
crosses four modules, two constructor-assigned fields
(``self.coordinator``, ``self.router``), one ``lambda`` handed to
``Router.retrying``, and one duck-typed 2PC participant.  This module
builds the project-wide picture those rules need:

* a **module map** — every ``.py`` under the analyzed root, keyed by
  dotted name, with its import bindings resolved (relative imports by
  path, absolute imports by root-package prefix; anything that leaves
  the tree is external/opaque);
* a **class index** — methods, resolved base classes (so method lookup
  walks the hierarchy), and **attribute types** learned from
  ``__init__``/class-level assignments and annotations
  (``self.coordinator = TwoPhaseCoordinator(...)`` gives
  ``coordinator`` the type ``TwoPhaseCoordinator``;
  ``self._groups: list[RaftGroup]`` gives subscripts of ``_groups`` the
  element type ``RaftGroup``);
* **call resolution** — given a call site and its enclosing function,
  the set of project functions it may invoke, using parameter/return
  annotations, local assignment tracking, and the attribute types
  above.  Calls that still do not resolve can fall back to *duck
  resolution* (every project method with that name, capped) — used only
  by may-analyses (sink reachability), never by must-analyses (guard
  establishment), so imprecision widens searches instead of silencing
  findings.

The index is deterministic and picklable; :func:`load_or_build` caches
it on disk keyed by a digest of every file's content so repeated CI
runs skip the parse + index work entirely.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Containers whose subscripts yield their element type.
_CONTAINER_NAMES = {"list", "dict", "set", "frozenset", "tuple", "OrderedDict"}

#: Duck resolution is capped so a common method name (``get``, ``apply``)
#: cannot fan a may-analysis out over the whole tree.
DUCK_CAP = 8


@dataclass(frozen=True)
class TypeRef:
    """A resolved type: ``qual`` is ``"<module>:<Class>"`` for project
    classes or ``"builtins:<name>"`` for builtin containers; ``elem`` is
    the element (value) type for subscriptable containers."""

    qual: str
    elem: "TypeRef | None" = None

    @property
    def is_builtin(self) -> bool:
        return self.qual.startswith("builtins:")

    @property
    def class_name(self) -> str:
        return self.qual.rsplit(":", 1)[-1]


@dataclass
class ClassInfo:
    module: str
    name: str
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)  # raw dotted tails
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: self.<attr> -> TypeRef, learned from __init__ + annotations.
    attr_types: dict[str, TypeRef] = field(default_factory=dict)

    @property
    def qual(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass
class ModuleInfo:
    name: str                         # dotted, rooted at the analyzed tree
    path: str                         # repo-relative posix path
    tree: ast.Module
    #: local alias -> (module dotted name, attr-or-None)
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)


@dataclass
class FunctionRef:
    """A resolved function: the node plus enough context to keep
    resolving calls found inside it (module for imports, cls for
    ``self``)."""

    module: ModuleInfo
    cls: ClassInfo | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda

    @property
    def qual(self) -> str:
        cls = f"{self.cls.name}." if self.cls else ""
        return f"{self.module.name}:{cls}{self.name}@{self.node.lineno}"


class ProjectIndex:
    """The whole-program view rules query for cross-module resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        #: method name -> [(ClassInfo, FunctionDef)] for duck fallback.
        self._methods_by_name: dict[str, list[tuple[ClassInfo, ast.FunctionDef]]] = {}
        #: scratch space for cross-rule memoization (not pickled as API).
        self.cache: dict[str, Any] = {}

    # ------------------------------------------------------------- build

    @classmethod
    def build(cls, root: Path, files: list[Path] | None = None) -> "ProjectIndex":
        root = Path(root)
        index = cls()
        if files is None:
            files = [
                p
                for p in sorted(root.rglob("*.py"))
                if "__pycache__" not in p.parts
            ]
        root_pkg = root.name or "root"
        for path in files:
            rel = path.relative_to(root).as_posix()
            try:
                tree = ast.parse(path.read_text())
            except SyntaxError:
                continue  # the driver reports HTL999 separately
            index.add_module(_module_name(root_pkg, rel), rel, tree)
        index._finish()
        return index

    @classmethod
    def from_single(cls, path: str, tree: ast.Module) -> "ProjectIndex":
        """A one-module project (fixture snippets analyzed in memory)."""
        index = cls()
        stem = path[:-3] if path.endswith(".py") else path
        name = stem.replace("/", ".").lstrip(".")
        index.add_module(name or "snippet", path, tree)
        index._finish()
        return index

    def add_module(self, name: str, rel_path: str, tree: ast.Module) -> None:
        mod = ModuleInfo(name=name, path=rel_path, tree=tree)
        mod.imports = _collect_imports(name, rel_path, tree)
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                mod.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                mod.classes[node.name] = _build_class(name, node)
        self.modules[name] = mod
        self.by_path[rel_path] = mod

    def _finish(self) -> None:
        self._methods_by_name.clear()
        for mod in self.modules.values():
            for ci in mod.classes.values():
                for mname, fn in ci.methods.items():
                    self._methods_by_name.setdefault(mname, []).append((ci, fn))
        # Resolve annotation-based attribute types now that every class
        # is known (ctor-call types were resolved at class build time
        # only by name; re-resolve against the import table here).
        for mod in self.modules.values():
            for ci in mod.classes.values():
                resolved: dict[str, TypeRef] = {}
                for attr, tref in ci.attr_types.items():
                    resolved[attr] = self._reresolve(mod, tref)
                ci.attr_types = resolved

    def _reresolve(self, mod: ModuleInfo, tref: TypeRef) -> TypeRef:
        elem = self._reresolve(mod, tref.elem) if tref.elem else None
        if tref.qual.startswith("?"):
            found = self.resolve_class(mod, tref.qual[1:])
            if found is not None:
                return TypeRef(found.qual, elem)
            return TypeRef(f"external:{tref.qual[1:]}", elem)
        return TypeRef(tref.qual, elem)

    # ------------------------------------------------------------- lookup

    def module_of(self, path: str) -> ModuleInfo | None:
        return self.by_path.get(path)

    def class_by_qual(self, qual: str) -> ClassInfo | None:
        if ":" not in qual:
            return None
        modname, clsname = qual.split(":", 1)
        mod = self.modules.get(modname)
        return mod.classes.get(clsname) if mod else None

    def resolve_class(self, mod: ModuleInfo, dotted: str) -> ClassInfo | None:
        """Resolve a (possibly dotted) name used in ``mod`` to a project
        class, following one import hop and re-exports."""
        head, _, tail = dotted.partition(".")
        if not tail and head in mod.classes:
            return mod.classes[head]
        binding = mod.imports.get(head)
        if binding is None:
            return None
        target_mod, attr = binding
        name = attr if attr else None
        if tail:
            name = tail if name is None else f"{name}.{tail}"
        if name is None:
            return None
        seen = 0
        while seen < 4:
            target = self.modules.get(target_mod)
            if target is None:
                return None
            first, _, rest = name.partition(".")
            if first in target.classes and not rest:
                return target.classes[first]
            nxt = target.imports.get(first)
            if nxt is None:
                return None
            target_mod, attr = nxt
            name = attr if not rest else (f"{attr}.{rest}" if attr else rest)
            if name is None:
                return None
            seen += 1
        return None

    def resolve_function(
        self, mod: ModuleInfo, dotted: str
    ) -> FunctionRef | None:
        """Resolve a bare/dotted name to a module-level project function."""
        head, _, tail = dotted.partition(".")
        if not tail and head in mod.functions:
            return FunctionRef(mod, None, head, mod.functions[head])
        binding = mod.imports.get(head)
        if binding is None:
            return None
        target_mod, attr = binding
        name = attr if attr else tail
        if not name:
            return None
        for _hop in range(4):
            target = self.modules.get(target_mod)
            if target is None:
                return None
            if name in target.functions:
                return FunctionRef(target, None, name, target.functions[name])
            nxt = target.imports.get(name)
            if nxt is None:
                return None
            target_mod, attr = nxt
            name = attr or name
        return None

    # -------------------------------------------------------- class queries

    def mro(self, ci: ClassInfo) -> Iterator[ClassInfo]:
        """The class and its resolvable project bases, depth-first."""
        seen: set[str] = set()
        stack = [ci]
        while stack:
            cur = stack.pop(0)
            if cur.qual in seen:
                continue
            seen.add(cur.qual)
            yield cur
            mod = self.modules.get(cur.module)
            if mod is None:
                continue
            for base in cur.base_names:
                resolved = self.resolve_class(mod, base)
                if resolved is not None:
                    stack.append(resolved)

    def method(self, ci: ClassInfo, name: str) -> FunctionRef | None:
        for cls in self.mro(ci):
            fn = cls.methods.get(name)
            if fn is not None:
                mod = self.modules[cls.module]
                return FunctionRef(mod, cls, name, fn)
        return None

    def attr_type(self, ci: ClassInfo, name: str) -> TypeRef | None:
        for cls in self.mro(ci):
            tref = cls.attr_types.get(name)
            if tref is not None:
                return tref
        return None

    def duck_methods(self, name: str, cap: int = DUCK_CAP) -> list[FunctionRef]:
        """Every project method with this name (may-analysis fallback);
        an empty list when the name is too common to be informative."""
        hits = self._methods_by_name.get(name, [])
        if not hits or len(hits) > cap:
            return []
        return [
            FunctionRef(self.modules[ci.module], ci, name, fn) for ci, fn in hits
        ]

    # ----------------------------------------------------------- functions

    def iter_functions(self) -> Iterator[FunctionRef]:
        """Every module-level function and method in the project."""
        for mod in self.modules.values():
            for name, fn in mod.functions.items():
                yield FunctionRef(mod, None, name, fn)
            for ci in mod.classes.values():
                for name, fn in ci.methods.items():
                    yield FunctionRef(mod, ci, name, fn)

    # ------------------------------------------------------ call resolution

    def resolver(self, ref: FunctionRef) -> "CallResolver":
        return CallResolver(self, ref)


# ===================================================================== build


def _module_name(root_pkg: str, rel: str) -> str:
    parts = rel[:-3].split("/")  # strip .py
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([root_pkg, *parts]) if parts else root_pkg


def _collect_imports(
    mod_name: str, rel_path: str, tree: ast.Module
) -> dict[str, tuple[str, str | None]]:
    imports: dict[str, tuple[str, str | None]] = {}
    is_pkg = rel_path.endswith("__init__.py")
    pkg_parts = mod_name.split(".") if is_pkg else mod_name.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[bound] = (target, None)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                if not base:
                    continue
                target_mod = ".".join(base)
                if node.module:
                    target_mod = f"{target_mod}.{node.module}"
            else:
                target_mod = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = (target_mod, alias.name)
    return imports


def _build_class(mod_name: str, node: ast.ClassDef) -> ClassInfo:
    ci = ClassInfo(module=mod_name, name=node.name, node=node)
    for base in node.bases:
        dotted = _dotted(base)
        if dotted:
            ci.base_names.append(dotted)
    for item in node.body:
        if isinstance(item, ast.FunctionDef):
            ci.methods[item.name] = item
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            # Dataclass-style field: `data: np.ndarray`.
            tref = _annotation_type(item.annotation)
            if tref is not None:
                ci.attr_types[item.target.id] = tref
    init = ci.methods.get("__init__")
    if init is not None:
        _learn_ctor_types(ci, init)
    return ci


def _learn_ctor_types(ci: ClassInfo, init: ast.FunctionDef) -> None:
    param_types: dict[str, TypeRef] = {}
    args = init.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None:
            tref = _annotation_type(arg.annotation)
            if tref is not None:
                param_types[arg.arg] = tref
    for node in ast.walk(init):
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            not isinstance(target, ast.Attribute)
            or not isinstance(target.value, ast.Name)
            or target.value.id != "self"
        ):
            continue
        attr = target.attr
        if isinstance(node, ast.AnnAssign) and node.annotation is not None:
            tref = _annotation_type(node.annotation)
            if tref is not None:
                ci.attr_types[attr] = tref
                continue
        if value is None:
            continue
        tref = _value_type(value, param_types)
        if tref is not None and attr not in ci.attr_types:
            ci.attr_types[attr] = tref


def _value_type(
    value: ast.expr, param_types: dict[str, TypeRef]
) -> TypeRef | None:
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        if dotted is None:
            return None
        tail = dotted.rsplit(".", 1)[-1]
        if tail in _CONTAINER_NAMES:
            return TypeRef(f"builtins:{tail}")
        if tail and tail[0].isupper():
            # Constructor by convention; re-resolved project-wide later.
            return TypeRef(f"?{dotted}")
        return None
    if isinstance(value, (ast.List, ast.ListComp)):
        return TypeRef("builtins:list")
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return TypeRef("builtins:dict")
    if isinstance(value, (ast.Set, ast.SetComp)):
        return TypeRef("builtins:set")
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    if isinstance(value, ast.BoolOp) and value.values:
        # `cost or CostModel()`: prefer the constructed fallback.
        for sub in reversed(value.values):
            tref = _value_type(sub, param_types)
            if tref is not None:
                return tref
    return None


def _annotation_type(annotation: ast.expr) -> TypeRef | None:
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        # `X | None` — take the first non-None arm.
        for side in (annotation.left, annotation.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            return _annotation_type(side)
        return None
    if isinstance(annotation, ast.Subscript):
        head = _dotted(annotation.value)
        if head is None:
            return None
        tail = head.rsplit(".", 1)[-1]
        if tail in ("Optional",):
            return _annotation_type(annotation.slice)
        elem: TypeRef | None = None
        sl = annotation.slice
        if tail == "dict" or tail == "Dict" or tail == "OrderedDict":
            if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
                elem = _annotation_type(sl.elts[1])
        elif isinstance(sl, ast.Tuple):
            elem = _annotation_type(sl.elts[0]) if sl.elts else None
        else:
            elem = _annotation_type(sl)
        if tail.lower() in _CONTAINER_NAMES or tail in _CONTAINER_NAMES:
            return TypeRef(f"builtins:{tail.lower()}", elem)
        return TypeRef(f"?{head}", elem)
    dotted = _dotted(annotation)
    if dotted is None:
        return None
    tail = dotted.rsplit(".", 1)[-1]
    if tail in _CONTAINER_NAMES:
        return TypeRef(f"builtins:{tail}")
    if tail == "ndarray":
        return TypeRef("numpy:ndarray")
    if tail and tail[0].isupper():
        return TypeRef(f"?{dotted}")
    return None


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# =============================================================== resolution


class CallResolver:
    """Resolves call sites inside one function, tracking local types."""

    def __init__(self, project: ProjectIndex, ref: FunctionRef):
        self.project = project
        self.ref = ref
        self._locals: dict[str, TypeRef] = {}
        self._local_defs: dict[str, ast.FunctionDef] = {}
        self._collect_locals()

    # --------------------------------------------------------------- env

    def _collect_locals(self) -> None:
        node = self.ref.node
        if isinstance(node, ast.Lambda):
            return
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                tref = _annotation_type(arg.annotation)
                if tref is not None:
                    self._locals[arg.arg] = self._fix(tref)
        if self.ref.cls is not None:
            self._locals["self"] = TypeRef(self.ref.cls.qual)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.FunctionDef) and stmt is not node:
                self._local_defs[stmt.name] = stmt
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    tref = self._expr_type(stmt.value, _depth=0)
                    if tref is not None:
                        self._locals.setdefault(target.id, tref)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                tref = _annotation_type(stmt.annotation)
                if tref is not None:
                    self._locals.setdefault(stmt.target.id, self._fix(tref))

    def _fix(self, tref: TypeRef) -> TypeRef:
        return self.project._reresolve(self.ref.module, tref)

    # ------------------------------------------------------------- typing

    def _expr_type(self, expr: ast.expr, _depth: int = 0) -> TypeRef | None:
        if _depth > 6:
            return None
        if isinstance(expr, ast.Name):
            return self._locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value, _depth + 1)
            if base is None or base.is_builtin:
                return None
            ci = self.project.class_by_qual(base.qual)
            if ci is None:
                return None
            return self.project.attr_type(ci, expr.attr)
        if isinstance(expr, ast.Subscript):
            base = self._expr_type(expr.value, _depth + 1)
            if base is not None:
                return base.elem
            return None
        if isinstance(expr, ast.Call):
            return self._call_return_type(expr, _depth + 1)
        if isinstance(expr, (ast.List, ast.ListComp)):
            return TypeRef("builtins:list")
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return TypeRef("builtins:dict")
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return TypeRef("builtins:set")
        return None

    def _call_return_type(self, call: ast.Call, _depth: int) -> TypeRef | None:
        dotted = _dotted(call.func)
        if dotted is not None:
            tail = dotted.rsplit(".", 1)[-1]
            if tail in ("set", "frozenset"):
                return TypeRef("builtins:set")
            if tail == "sorted" or tail == "list":
                return TypeRef("builtins:list")
            if tail == "dict":
                return TypeRef("builtins:dict")
            ci = self.project.resolve_class(self.ref.module, dotted)
            if ci is not None:
                return TypeRef(ci.qual)
        for target in self.resolve_call(call, ducks=False):
            node = target.node
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.returns is not None
            ):
                tref = _annotation_type(node.returns)
                if tref is not None:
                    return self.project._reresolve(target.module, tref)
        return None

    def expr_type(self, expr: ast.expr) -> TypeRef | None:
        """Best-effort static type of an expression in this function."""
        return self._expr_type(expr)

    # ---------------------------------------------------------- resolution

    def resolve_call(self, call: ast.Call, ducks: bool = False) -> list[FunctionRef]:
        """Project functions this call may invoke.  With ``ducks``,
        unresolvable or abstract method receivers widen to every project
        method of that name (capped) — may-analyses only."""
        out = self._resolve_func(call.func, ducks)
        widened: list[FunctionRef] = []
        for ref in out:
            if ducks and _is_abstract(ref.node):
                widened.extend(
                    d
                    for d in self.project.duck_methods(ref.name)
                    if d.qual != ref.qual
                )
        out.extend(widened)
        return out

    def _resolve_func(self, func: ast.expr, ducks: bool) -> list[FunctionRef]:
        if isinstance(func, ast.Name):
            if func.id in self._local_defs:
                return [
                    FunctionRef(
                        self.ref.module,
                        self.ref.cls,
                        func.id,
                        self._local_defs[func.id],
                    )
                ]
            found = self.project.resolve_function(self.ref.module, func.id)
            if found is not None:
                return [found]
            ci = self.project.resolve_class(self.ref.module, func.id)
            if ci is not None:
                ctor = self.project.method(ci, "__init__")
                return [ctor] if ctor is not None else []
            return []
        if not isinstance(func, ast.Attribute):
            return []
        # Receiver typing: self.m, self.attr.m, local.m, alias.m, Cls.m.
        recv = func.value
        tref = self._expr_type(recv)
        if tref is not None and not tref.is_builtin:
            ci = self.project.class_by_qual(tref.qual)
            if ci is not None:
                m = self.project.method(ci, func.attr)
                if m is not None:
                    return [m]
                if ducks:
                    return self.project.duck_methods(func.attr)
                return []
        dotted = _dotted(func)
        if dotted is not None:
            found = self.project.resolve_function(self.ref.module, dotted)
            if found is not None:
                return [found]
            head, _, tail = dotted.rpartition(".")
            if head:
                ci = self.project.resolve_class(self.ref.module, head)
                if ci is not None:
                    m = self.project.method(ci, tail)
                    if m is not None:
                        return [m]
        if ducks:
            return self.project.duck_methods(func.attr)
        return []

    def callback_args(self, call: ast.Call) -> list[FunctionRef]:
        """Lambdas and locally-defined functions passed as arguments —
        assumed invoked by the callee (``router.retrying(attempt)``)."""
        out: list[FunctionRef] = []
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            if isinstance(arg, ast.Lambda):
                out.append(
                    FunctionRef(self.ref.module, self.ref.cls, "<lambda>", arg)
                )
            elif isinstance(arg, ast.Name) and arg.id in self._local_defs:
                out.append(
                    FunctionRef(
                        self.ref.module,
                        self.ref.cls,
                        arg.id,
                        self._local_defs[arg.id],
                    )
                )
        return out


def _is_abstract(node: ast.AST) -> bool:
    """Protocol/ABC stubs (``...``/``pass``/docstring-only bodies) — a
    typed receiver that resolves to one says nothing about runtime
    dispatch, so may-analyses widen it to duck candidates."""
    if isinstance(node, ast.Lambda):
        return False
    body = getattr(node, "body", [])
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            name = _dotted(exc.func if isinstance(exc, ast.Call) else exc) if exc else None
            if name and name.rsplit(".", 1)[-1] == "NotImplementedError":
                continue
        return False
    return True


# ================================================================== caching


def tree_digest(root: Path, files: list[Path] | None = None) -> str:
    """Content digest of every analyzed file (cache key)."""
    root = Path(root)
    if files is None:
        files = [
            p for p in sorted(root.rglob("*.py")) if "__pycache__" not in p.parts
        ]
    h = hashlib.sha256()
    for path in files:
        h.update(path.relative_to(root).as_posix().encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def load_or_build(root: Path, cache_path: Path | None = None) -> ProjectIndex:
    """Build the index, or reload it from ``cache_path`` when the tree
    digest matches (keeps repeated CI invocations under the time box)."""
    root = Path(root)
    if cache_path is None:
        return ProjectIndex.build(root)
    digest = tree_digest(root)
    try:
        with open(cache_path, "rb") as fh:
            cached_digest, index = pickle.load(fh)
        if cached_digest == digest and isinstance(index, ProjectIndex):
            index.cache = {}
            return index
    except (OSError, pickle.PickleError, EOFError, AttributeError, ValueError):
        pass  # htaplint: ignore[HTL005] -- cache miss/corruption falls back to a fresh build
    index = ProjectIndex.build(root)
    try:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        with open(cache_path, "wb") as fh:
            pickle.dump((digest, index), fh)
    except OSError:
        pass  # htaplint: ignore[HTL005] -- read-only checkout: cache write is best-effort
    return index
