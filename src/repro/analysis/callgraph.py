"""Lightweight per-module call graph for the flow-ish rules.

HTL002 (mutation-without-invalidation) and HTL003 (vectorized cost
parity) need to know whether a method *reaches* some sink — a version
bump, a ``scan_cache.invalidate``, a ``cost.charge`` — possibly through
helper methods.  Full inter-procedural analysis is overkill for a
single-package testbed, so resolution is name-based and module-local:

* ``self.foo(...)`` resolves to the method ``foo`` of the enclosing
  class (if defined there);
* a bare ``foo(...)`` resolves to a module-level function ``foo``;
* anything else (calls on other objects, imports) is opaque.

That is deliberately conservative in both directions: cross-object
calls neither satisfy nor violate a reachability requirement, which
keeps false positives near zero at the price of needing the invariant
to be locally visible — exactly the style the hand-written call sites
already follow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .core import attr_chain


@dataclass
class ClassIndex:
    node: ast.ClassDef
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    base_names: list[str] = field(default_factory=list)


@dataclass
class ModuleIndex:
    """Classes and top-level functions of one module, by name."""

    classes: dict[str, ClassIndex] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)

    @classmethod
    def build(cls, tree: ast.Module) -> "ModuleIndex":
        index = cls()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.FunctionDef):
                    index.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                ci = ClassIndex(node=node)
                for base in node.bases:
                    parts = attr_chain(base)
                    if parts:
                        ci.base_names.append(parts[-1])
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        ci.methods[item.name] = item
                index.classes[node.name] = ci
        return index


def local_callees(node: ast.AST) -> tuple[set[str], set[str]]:
    """(self-method names, bare function names) called anywhere under
    ``node``.  ``self.x.y(...)`` is *not* a self-method call (the
    receiver is an attribute, not the instance)."""
    self_methods: set[str] = set()
    bare: set[str] = set()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self_methods.add(func.attr)
        elif isinstance(func, ast.Name):
            bare.add(func.id)
    return self_methods, bare


def reaches(
    start: ast.FunctionDef,
    predicate,
    class_index: ClassIndex | None,
    module_index: ModuleIndex,
    max_depth: int = 8,
) -> bool:
    """True if ``predicate(fn_node)`` holds for ``start`` or any
    module-locally resolvable (transitive) callee."""
    seen: set[int] = set()
    frontier: list[tuple[ast.FunctionDef, int]] = [(start, 0)]
    while frontier:
        fn, depth = frontier.pop()
        if id(fn) in seen:
            continue
        seen.add(id(fn))
        if predicate(fn):
            return True
        if depth >= max_depth:
            continue
        self_methods, bare = local_callees(fn)
        if class_index is not None:
            for name in self_methods:
                target = class_index.methods.get(name)
                if target is not None:
                    frontier.append((target, depth + 1))
        for name in bare:
            target = module_index.functions.get(name)
            if target is not None:
                frontier.append((target, depth + 1))
    return False
