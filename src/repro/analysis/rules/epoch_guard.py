"""HTL006 — epoch guard before propose (exactly-once under retries).

PR 8's exactly-once story is a *path* invariant: every server-side
entry point (``execute_transaction`` / ``bulk_load`` / ``read`` /
``row_scan`` in ``distributed/cluster.py``) must validate ownership
against the live epoch — ``_check_ownership``, which raises
``StaleEpochError`` — on **every** path *before* anything reaches a
Raft ``propose*`` sink.  If a stale route proposes first and rejects
later, the client's retry re-applies the writes: the exact
double-apply the epoch contract exists to prevent.

The sinks grew with the commit-path optimization: the single-shard
"commit1p" fast path proposes directly from ``_commit_single_shard``,
the piggybacked protocol proposes "intent" from the participant
adapter, and the lazy commit round batch-proposes "resolve" from
``_settle_shard`` (reachable from every entry, including reads and
scans, which settle before serving).  All of them must stay dominated
by the guard — the rule proves it for each path separately.

The check is interprocedural over the project index: calls resolve
through constructor-assigned fields (``self.coordinator`` →
``TwoPhaseCoordinator.execute``), lambdas/closures handed to
``Router.retrying`` are assumed invoked by their callee, and abstract
receivers (the 2PC ``Participant`` protocol) widen to duck candidates
for *sink reachability only*.  Guard establishment is must-analysis on
the per-function CFG: a sink-reaching call is protected when a
``_check_ownership*`` call (or a call to a helper that establishes the
guard on all normal paths) blocks every CFG path from the entry to it.
``for`` loops are assumed to run at least once for guard placement —
the cluster's guard loops iterate the same per-shard grouping that
drives the propose fan-out, so the skipped-guard path has nothing to
propose (see :mod:`~repro.analysis.dataflow`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, register
from ..dataflow import (
    build_cfg,
    calls_in_stmt,
    establishes_on_all_paths,
    stmt_nodes,
    unguarded,
)
from ..project import FunctionRef, ProjectIndex

#: The rule anchors on the module that defines the server-side entries.
ANCHOR_SUFFIX = "distributed/cluster.py"

ENTRY_NAMES = ("execute_transaction", "bulk_load", "read", "row_scan")
GUARD_PREFIX = "_check_ownership"
SINK_PREFIX = "propose"

#: Guard-summary / sink-reachability recursion depth cap.
MAX_DEPTH = 12


def _call_tail(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_sink_call(call: ast.Call) -> bool:
    return _call_tail(call).startswith(SINK_PREFIX)


def _is_guard_call(call: ast.Call) -> bool:
    return _call_tail(call).startswith(GUARD_PREFIX)


class _Analysis:
    """One whole-program HTL006 pass, memoized on the project index."""

    def __init__(self, project: ProjectIndex):
        self.project = project
        self._resolvers: dict[str, object] = {}
        self._reaches_sink: dict[str, bool] = {}
        self._establishes: dict[str, bool] = {}
        self.findings: list[tuple[str, int, str]] = []  # (path, line, message)
        self._visited: set[tuple[str, bool]] = set()

    # ---------------------------------------------------------- resolution

    def _resolver(self, ref: FunctionRef):
        res = self._resolvers.get(ref.qual)
        if res is None:
            res = self.project.resolver(ref)
            self._resolvers[ref.qual] = res
        return res

    def _callees(
        self, ref: FunctionRef, call: ast.Call, ducks: bool
    ) -> list[FunctionRef]:
        res = self._resolver(ref)
        out = res.resolve_call(call, ducks=ducks)
        out.extend(res.callback_args(call))
        return out

    # ------------------------------------------------------- sink reachable

    def reaches_sink(self, ref: FunctionRef, depth: int = 0) -> bool:
        """May-analysis: can this function (transitively) hit a
        ``propose*`` call?  Duck-widened, so unresolved dispatch errs
        toward *checking* a path rather than ignoring it."""
        key = ref.qual
        cached = self._reaches_sink.get(key)
        if cached is not None:
            return cached
        if depth > MAX_DEPTH:
            return False
        self._reaches_sink[key] = False  # cycle guard
        result = False
        for node in ast.walk(ref.node):
            if isinstance(node, ast.Call) and _is_sink_call(node):
                result = True
                break
        if not result:
            for node in ast.walk(ref.node):
                if not isinstance(node, ast.Call):
                    continue
                for callee in self._callees(ref, node, ducks=True):
                    if callee.qual == key:
                        continue
                    if self.reaches_sink(callee, depth + 1):
                        result = True
                        break
                if result:
                    break
        self._reaches_sink[key] = result
        return result

    # --------------------------------------------------- guard establishment

    def establishes_guard(self, ref: FunctionRef, depth: int = 0) -> bool:
        """Must-analysis: every normal path through ``ref`` passes a
        guard call.  Definite resolution only — duck candidates never
        establish a guard."""
        key = ref.qual
        cached = self._establishes.get(key)
        if cached is not None:
            return cached
        if depth > MAX_DEPTH:
            return False
        self._establishes[key] = False  # cycle guard: assume not
        cfg = build_cfg(ref.node, loops_execute=True)
        guards = stmt_nodes(cfg, lambda s: self._stmt_establishes(ref, s, depth))
        result = establishes_on_all_paths(cfg, guards)
        self._establishes[key] = result
        return result

    def _stmt_establishes(
        self, ref: FunctionRef, stmt: ast.stmt, depth: int
    ) -> bool:
        for call in calls_in_stmt(stmt):
            if _is_guard_call(call):
                return True
            for callee in self._callees(ref, call, ducks=False):
                if isinstance(callee.node, ast.Lambda):
                    continue
                if self.establishes_guard(callee, depth + 1):
                    return True
        return False

    # ------------------------------------------------------------- checking

    def check_entry(self, ref: FunctionRef) -> None:
        self._visit(ref, guarded=False, entry=ref, depth=0)

    def _visit(
        self, ref: FunctionRef, guarded: bool, entry: FunctionRef, depth: int
    ) -> None:
        key = (ref.qual, guarded)
        if key in self._visited or depth > MAX_DEPTH:
            return
        self._visited.add(key)
        cfg = build_cfg(ref.node, loops_execute=True)
        guard_nodes = stmt_nodes(
            cfg, lambda s: self._stmt_establishes(ref, s, depth)
        )
        # Sink-relevant statements: contain a direct propose* call or a
        # call that may transitively reach one.
        relevant: dict[int, list[ast.Call]] = {}
        for nid, stmt in cfg.stmts.items():
            if stmt is None:
                continue
            hits = []
            for call in calls_in_stmt(stmt):
                if _is_sink_call(call):
                    hits.append(call)
                    continue
                for callee in self._callees(ref, call, ducks=True):
                    if callee.qual != ref.qual and self.reaches_sink(
                        callee, depth + 1
                    ):
                        hits.append(call)
                        break
            if hits:
                relevant[nid] = hits
        if not relevant:
            return
        exposed = (
            set(relevant)
            if not guarded
            else set()
        )
        open_sinks = unguarded(cfg, guard_nodes, exposed) if exposed else set()
        for nid, calls in relevant.items():
            protected = guarded or nid not in open_sinks
            for call in calls:
                if _is_sink_call(call):
                    if not protected:
                        self.findings.append(
                            (
                                ref.module.path,
                                call.lineno,
                                f"path from {_entry_desc(entry)} reaches "
                                f"{_call_tail(call)}() without "
                                f"{GUARD_PREFIX} dominating it; a stale "
                                "route could propose before the epoch "
                                "contract rejects it (double-apply under "
                                "client retries)",
                            )
                        )
                    continue
                for callee in self._callees(ref, call, ducks=True):
                    if callee.qual == ref.qual:
                        continue
                    if self.reaches_sink(callee, depth + 1):
                        self._visit(callee, protected, entry, depth + 1)


def _entry_desc(ref: FunctionRef) -> str:
    cls = f"{ref.cls.name}." if ref.cls else ""
    return f"{cls}{ref.name}"


def _project_findings(project: ProjectIndex, anchor_path: str) -> list:
    memo_key = f"htl006:{anchor_path}"
    cached = project.cache.get(memo_key)
    if cached is not None:
        return cached
    analysis = _Analysis(project)
    mod = project.module_of(anchor_path)
    if mod is not None:
        for ci in mod.classes.values():
            for name in ENTRY_NAMES:
                fn = ci.methods.get(name)
                if fn is not None:
                    analysis.check_entry(
                        FunctionRef(mod, ci, name, fn)
                    )
        for name in ENTRY_NAMES:
            fn = mod.functions.get(name)
            if fn is not None:
                analysis.check_entry(FunctionRef(mod, None, name, fn))
    findings = sorted(set(analysis.findings))
    project.cache[memo_key] = findings
    return findings


@register(
    "HTL006",
    "epoch-guard-before-propose",
    "server-side entry reaches a Raft propose* sink on a path not "
    "dominated by _check_ownership",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.path.endswith(ANCHOR_SUFFIX):
        return
    project = ctx.project or ProjectIndex.from_single(ctx.path, ctx.tree)
    for path, line, message in _project_findings(project, ctx.path):
        yield Finding("HTL006", path, line, message)
