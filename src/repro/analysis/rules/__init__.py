"""htaplint rules — importing this package registers every rule.

Each module calls :func:`repro.analysis.core.register` at import time;
the driver imports this package lazily so adding a rule means adding a
module here, nothing else.  HTL001–HTL005 are module-local (name-based
callgraph); HTL006–HTL009 are whole-program (project index + CFG
dominance, see :mod:`repro.analysis.project` /
:mod:`repro.analysis.dataflow`).
"""

from . import (
    buffer_escape,
    cost_parity,
    determinism,
    epoch_guard,
    error_swallow,
    invalidation,
    metric_names,
    nondet_iter,
    retry_discipline,
)

__all__ = [
    "buffer_escape",
    "cost_parity",
    "determinism",
    "epoch_guard",
    "error_swallow",
    "invalidation",
    "metric_names",
    "nondet_iter",
    "retry_discipline",
]
