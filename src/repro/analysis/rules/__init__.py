"""htaplint rules — importing this package registers every rule.

Each module calls :func:`repro.analysis.core.register` at import time;
the driver imports this package lazily so adding a rule means adding a
module here, nothing else.
"""

from . import (
    cost_parity,
    determinism,
    error_swallow,
    invalidation,
    metric_names,
)

__all__ = [
    "cost_parity",
    "determinism",
    "error_swallow",
    "invalidation",
    "metric_names",
]
