"""HTL005 — no swallowed errors on the engine's critical paths.

Durability and consensus code must fail loudly: an ``except Exception:
pass`` in the WAL force path or the Raft apply loop converts a
corruption bug into silent data loss that only surfaces as a wrong
Table 1 number three PRs later.  The same holds for the query kernels
(a broad except degrades a kernel bug into a silent scalar fallback —
see ``executor._morsel_aggregate``), the session front door, and the
TP→AP sync pipeline.  Within ``txn/``, ``distributed/``, ``query/``,
``session/``, and ``sync/`` this rule flags:

* any handler whose body is only ``pass``/``...`` (regardless of how
  narrow the caught type is);
* any handler catching ``Exception``/``BaseException`` or using a bare
  ``except:`` that does not re-``raise`` somewhere in its body.

Handlers that log-and-reraise, translate to a domain error (``raise X
from err``), or catch a *specific* exception and handle it with real
statements all pass.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, register

_SCOPES = ("txn/", "distributed/", "query/", "session/", "sync/")

_BROAD = {"Exception", "BaseException"}


def _in_scope(ctx: FileContext) -> bool:
    return any(scope in ctx.path for scope in _SCOPES)


def _caught_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return {"<bare>"}
    nodes = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    names: set[str] = set()
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _body_is_noop(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register(
    "HTL005",
    "swallowed-error",
    "pass-only or broad except without re-raise in txn/WAL/Raft code",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    if not _in_scope(ctx):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = _caught_names(node)
        if _body_is_noop(node.body):
            yield Finding(
                "HTL005",
                ctx.path,
                node.lineno,
                f"except {'/'.join(sorted(caught))} swallows the error "
                "(pass-only body) on a durability-critical path",
            )
            continue
        if (caught & _BROAD or "<bare>" in caught) and not _reraises(node):
            yield Finding(
                "HTL005",
                ctx.path,
                node.lineno,
                f"broad except {'/'.join(sorted(caught))} without re-raise "
                "can hide txn/WAL/Raft failures",
            )
