"""HTL001 — determinism: no wall clock, no unseeded randomness.

The whole testbed is a deterministic simulation: time is simulated
microseconds on a :class:`~repro.common.clock.SimClock`, ordering
timestamps come from a :class:`~repro.common.clock.LogicalClock`, and
every random draw flows through an explicitly seeded generator from
:mod:`repro.common.rng`.  One stray ``datetime.now()`` or bare
``random.random()`` silently breaks bit-for-bit reproducibility of the
Table 1 / Table 2 orderings, so this rule bans the entry points
outright:

* importing ``random``, ``time``, ``datetime``, or ``secrets``
  (route through ``common/rng`` / ``common/clock``);
* calling ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``, or any
  ``numpy.random`` module-level function (``np.random.seed`` mutates
  hidden global state; seeded ``Generator`` objects from
  ``make_np_rng`` are fine — they are values, not ambient state).

``common/rng.py`` and ``common/clock.py`` are the sanctioned wrappers
and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, attr_chain, register

_BANNED_MODULES = {
    "random": "seeded RNGs from repro.common.rng (make_rng/make_np_rng)",
    "time": "simulated time from repro.common.clock.SimClock",
    "datetime": "logical/simulated clocks from repro.common.clock",
    "secrets": "seeded RNGs from repro.common.rng",
}

#: Attribute-chain suffixes whose call is nondeterministic no matter how
#: the module was imported/aliased.
_BANNED_CALLS = {
    ("os", "urandom"): "os.urandom is nondeterministic",
    ("uuid", "uuid1"): "uuid.uuid1 mixes in wall-clock and host state",
    ("uuid", "uuid4"): "uuid.uuid4 draws from the OS entropy pool",
}

_NP_RANDOM_HINT = (
    "numpy.random module-level functions use hidden global state; "
    "use repro.common.rng.make_np_rng(seed)"
)

_EXEMPT_FILES = ("common/rng.py", "common/clock.py")


def _is_exempt(ctx: FileContext) -> bool:
    return any(ctx.path.endswith(suffix) for suffix in _EXEMPT_FILES)


@register(
    "HTL001",
    "nondeterminism",
    "wall-clock or unseeded randomness outside common/rng and common/clock",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    if _is_exempt(ctx):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in _BANNED_MODULES:
                    yield Finding(
                        "HTL001",
                        ctx.path,
                        node.lineno,
                        f"import of {alias.name!r}: use {_BANNED_MODULES[top]}",
                    )
        elif isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            if node.level == 0 and top in _BANNED_MODULES:
                yield Finding(
                    "HTL001",
                    ctx.path,
                    node.lineno,
                    f"import from {node.module!r}: use {_BANNED_MODULES[top]}",
                )
        elif isinstance(node, ast.Call):
            chain = tuple(attr_chain(node.func))
            if len(chain) >= 2:
                tail = chain[-2:]
                if tail in _BANNED_CALLS:
                    yield Finding(
                        "HTL001",
                        ctx.path,
                        node.lineno,
                        f"call to {'.'.join(chain)}: {_BANNED_CALLS[tail]}",
                    )
                    continue
            # numpy.random.* / np.random.* module-level draws; seeded
            # default_rng(seed) is sanctioned only inside common/rng.
            if len(chain) >= 3 and chain[-2] == "random" and chain[0] in (
                "np",
                "numpy",
            ):
                yield Finding(
                    "HTL001",
                    ctx.path,
                    node.lineno,
                    f"call to {'.'.join(chain)}: {_NP_RANDOM_HINT}",
                )
