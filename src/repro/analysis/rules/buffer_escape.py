"""HTL008 — store-owned NumPy buffers must not escape writable.

The storage tier hands out column data constantly — codec ``decode()``,
segment slices, cached scan batches.  A store-owned ``ndarray`` that
escapes into a caller-visible result *by reference* lets any downstream
kernel silently corrupt sealed segments (or lets a caller mutate a
batch after handing it to a cache, poisoning every later hit).  Two
escape shapes are checked:

**(a) Alias returns.**  ``return self.X`` where ``X`` is
``ndarray``-typed (via the project index's attribute typing), and
``return self.X[a:b]`` — basic slicing aliases the buffer.  Advanced
indexing (``self.X[positions]``, boolean masks, fancy gathers) copies
and is exempt.  The sanctioned fixes: ``.copy()`` for small results, or
a read-only view (``v = self.X.view(); v.flags.writeable = False``) for
zero-copy hand-out — both naturally fall outside the flagged shapes.
Wrapping a slice in another store-owned object
(``PlainEncoding(data=self.data[a:b])``) is *not* flagged: the alias
stays inside the storage tier, which is the codec slice contract.

**(b) Cache aliasing discipline.**  For array-batch caches (class name
contains ``Cache`` and some method annotates an ``ndarray``-typed
payload), ``put`` must defensively decouple what it stores from the
caller's mapping *and* freeze array values (a ``.writeable`` assignment
or ``.copy()`` in the method body), and ``get`` must not return the
stored entry object itself (a shallow ``dict(entry)`` per hit keeps the
frozen arrays shared but the mapping private).  Violations of either
half let one reader's mutation corrupt every other reader's hits.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, register
from ..project import ClassInfo, FunctionRef, ModuleInfo, ProjectIndex

NDARRAY_QUAL = "numpy:ndarray"


def _self_attr(expr: ast.expr) -> str | None:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _is_basic_slice(sub: ast.expr) -> bool:
    if isinstance(sub, ast.Slice):
        return True
    if isinstance(sub, ast.Tuple):
        return any(isinstance(e, ast.Slice) for e in sub.elts)
    return False


def _mentions_ndarray(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Attribute) and node.attr == "ndarray":
            return True
        if isinstance(node, ast.Name) and node.id == "ndarray":
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if "ndarray" in node.value:
                return True
    return False


# -------------------------------------------------------------- (a) returns


def _alias_return_findings(
    project: ProjectIndex, mod: ModuleInfo, ci: ClassInfo
) -> Iterator[tuple[int, str]]:
    for mname, fn in ci.methods.items():
        for node in ast.walk(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            attr = _self_attr(value)
            if attr is not None:
                tref = project.attr_type(ci, attr)
                if tref is not None and tref.qual == NDARRAY_QUAL:
                    yield (
                        node.lineno,
                        f"{ci.name}.{mname} returns store-owned buffer "
                        f"self.{attr} by reference; a caller write would "
                        "corrupt the sealed segment — return a read-only "
                        "view or .copy()",
                    )
                continue
            if isinstance(value, ast.Subscript):
                attr = _self_attr(value.value)
                if attr is None or not _is_basic_slice(value.slice):
                    continue  # advanced indexing copies
                tref = project.attr_type(ci, attr)
                if tref is not None and tref.qual == NDARRAY_QUAL:
                    yield (
                        node.lineno,
                        f"{ci.name}.{mname} returns a basic slice of "
                        f"store-owned buffer self.{attr} (a writable "
                        "view); use .copy() or a read-only view",
                    )


# ---------------------------------------------------------- (b) cache shape


def _is_array_cache(ci: ClassInfo) -> bool:
    if "Cache" not in ci.name:
        return False
    for fn in ci.methods.values():
        args = fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _mentions_ndarray(arg.annotation):
                return True
    return False


def _freezes(fn: ast.FunctionDef) -> bool:
    """Does the method freeze or copy what it stores?  Either a
    ``<view>.flags.writeable = False`` assignment or a ``.copy()``
    call satisfies the discipline."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and target.attr == "writeable":
                    return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "copy"
        ):
            return True
    return False


def _entry_alias_names(fn: ast.FunctionDef) -> set[str]:
    """Local names bound to a stored cache entry (``self.X[k]`` or
    ``self.X.get(k)``) — returning one bare leaks the entry object."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Subscript) and _self_attr(value.value):
            names.add(target.id)
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
            and _self_attr(value.func.value)
        ):
            names.add(target.id)
    return names


def _cache_findings(ci: ClassInfo) -> Iterator[tuple[int, str]]:
    for mname, fn in ci.methods.items():
        # put-side: storing a mapping/array payload without freezing.
        stores = [
            node
            for node in ast.walk(fn)
            if isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Subscript) and _self_attr(t.value)
                for t in node.targets
            )
            and _stores_payload(fn, node.value)
        ]
        if stores and not _freezes(fn):
            for node in stores:
                yield (
                    node.lineno,
                    f"{ci.name}.{mname} caches a caller-supplied batch "
                    "without freezing its arrays (.copy() or a read-only "
                    "view); a later caller write poisons every hit",
                )
        # get-side: returning the stored entry object by reference.
        aliases = _entry_alias_names(fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            leaked = (
                isinstance(value, ast.Subscript)
                and _self_attr(value.value) is not None
            ) or (isinstance(value, ast.Name) and value.id in aliases)
            if leaked:
                yield (
                    node.lineno,
                    f"{ci.name}.{mname} returns the stored cache entry by "
                    "reference; mutate-after-get corrupts other readers — "
                    "return a shallow dict(entry) copy",
                )


def _stores_payload(fn: ast.FunctionDef, value: ast.expr) -> bool:
    """Is the stored value a batch-shaped payload (dict/mapping or
    array), as opposed to bookkeeping scalars?  Conservative: dict
    literals/calls, ``dict(...)`` of a parameter, or a name assigned
    from one."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return tail == "dict"
    if isinstance(value, ast.Name):
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == value.id
            ):
                if _stores_payload(fn, node.value):
                    return True
        # A parameter annotated as a mapping/array is a payload too.
        args = fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg == value.id and (
                _mentions_ndarray(arg.annotation)
                or _annotation_is_mapping(arg.annotation)
            ):
                return True
    return False


def _annotation_is_mapping(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in ("Mapping", "dict", "Dict"):
            return True
        if isinstance(node, ast.Attribute) and node.attr in ("Mapping",):
            return True
    return False


# ------------------------------------------------------------------- rule


@register(
    "HTL008",
    "buffer-aliasing-escape",
    "store-owned ndarray escapes into caller-visible results or cache "
    "entries without .copy() or a read-only view",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    project = ctx.project or ProjectIndex.from_single(ctx.path, ctx.tree)
    mod = project.module_of(ctx.path)
    if mod is None:
        return
    for ci in mod.classes.values():
        for line, message in _alias_return_findings(project, mod, ci):
            yield Finding("HTL008", ctx.path, line, message)
        if _is_array_cache(ci):
            for line, message in _cache_findings(ci):
                yield Finding("HTL008", ctx.path, line, message)
