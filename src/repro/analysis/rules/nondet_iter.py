"""HTL009 — nondeterministic set iteration feeding order-sensitive sinks.

Replica apply, dictionary merges, result assembly, and network fan-out
must all be deterministic: the whole sync/distributed tier is built on
"same inputs → same bytes" (merge generations, CRC-checked snapshots,
Raft log replay).  Iterating a ``set``/``frozenset`` has no defined
order (and *actually* varies run-to-run for str elements under hash
randomization), so a set iteration that feeds an order-sensitive sink —
an ``append``/``extend``/``write``/``send``, a ``yield``, an
accumulating ``+=``, or a ``propose*`` — silently breaks replay
determinism.

Flagged shapes (set-typed iterables via the project index's local type
tracking, plus syntactic ``set(...)``/``{...}`` literals):

* ``for x in <set>:`` whose body hits an order-sensitive sink;
* a ``list``/``tuple`` comprehension over a set (it *produces* an
  ordered sequence from an unordered source);
* ``list(<set>)`` / ``tuple(<set>)`` calls.

Escape hatch: ``sorted(...)`` — it pins the order and is the idiomatic
fix everywhere in the tree (see ``DictionaryEncoding.encode``).
Membership tests, ``len``/``sum``/``min``/``max``/``any``/``all``
reductions, and building another set are order-insensitive and never
flagged.  ``dict`` iteration is *not* flagged: insertion order is
defined in the target runtime, so determinism reduces to deterministic
insertion — which the rules above already police at the set boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, register
from ..project import FunctionRef, ProjectIndex

#: Method-call tails that are order-sensitive sinks.
ORDER_SINKS = {"append", "extend", "insert", "write", "send", "emit", "put"}
SINK_PREFIX = "propose"

#: Reductions whose result does not depend on iteration order.
_ORDER_FREE_CALLS = {
    "len", "sum", "min", "max", "any", "all", "set", "frozenset", "sorted",
}


def _tail(expr: ast.expr) -> str:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


class _SetTyping:
    """Is an expression set-typed?  Syntactic forms first, then the
    resolver's local/attribute typing."""

    def __init__(self, resolver):
        self.resolver = resolver

    def is_set(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            tail = _tail(expr.func)
            if tail in ("set", "frozenset"):
                return True
            if tail in ("union", "intersection", "difference", "symmetric_difference"):
                return self.is_set(expr.func.value) if isinstance(
                    expr.func, ast.Attribute
                ) else False
            return self._typed_set(expr)
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(expr.left) or self.is_set(expr.right)
        return self._typed_set(expr)

    def _typed_set(self, expr: ast.expr) -> bool:
        if self.resolver is None:
            return False
        tref = self.resolver.expr_type(expr)
        return tref is not None and tref.qual in (
            "builtins:set",
            "builtins:frozenset",
        )


def _has_order_sink(loop: ast.For) -> tuple[bool, int]:
    """(found, line) — an order-sensitive operation in the loop body."""
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                tail = _tail(node.func)
                if tail in ORDER_SINKS or tail.startswith(SINK_PREFIX):
                    return True, node.lineno
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True, getattr(node, "lineno", loop.lineno)
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                return True, node.lineno
    return False, loop.lineno


def _function_findings(
    typing: _SetTyping, fn: ast.AST
) -> Iterator[tuple[int, str]]:
    # Nested defs/lambdas are walked here too: closures share the
    # enclosing function's resolver (which collects their assigns).
    for node in ast.walk(fn):
        if isinstance(node, ast.For) and typing.is_set(node.iter):
            found, line = _has_order_sink(node)
            if found:
                yield (
                    node.lineno,
                    "iterating an unordered set feeds an order-sensitive "
                    f"sink at line {line}; replay/merge determinism breaks "
                    "under hash randomization — iterate sorted(...)",
                )
        elif isinstance(node, ast.ListComp):
            for gen in node.generators:
                if typing.is_set(gen.iter):
                    yield (
                        node.lineno,
                        "list comprehension over an unordered set produces "
                        "a nondeterministic ordering — use sorted(...)",
                    )
                    break
        elif isinstance(node, ast.Call):
            tail = _tail(node.func)
            if (
                tail in ("list", "tuple")
                and len(node.args) == 1
                and not node.keywords
                and typing.is_set(node.args[0])
            ):
                yield (
                    node.lineno,
                    f"{tail}() of an unordered set pins a nondeterministic "
                    "ordering — use sorted(...)",
                )


@register(
    "HTL009",
    "nondeterministic-iteration",
    "unordered set iteration feeding an order-sensitive sink (merge, "
    "append, send, yield)",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    project = ctx.project or ProjectIndex.from_single(ctx.path, ctx.tree)
    mod = project.module_of(ctx.path)
    if mod is None:
        return
    refs: list[FunctionRef] = []
    for name, fn in mod.functions.items():
        refs.append(FunctionRef(mod, None, name, fn))
    for ci in mod.classes.values():
        for name, fn in ci.methods.items():
            refs.append(FunctionRef(mod, ci, name, fn))
    seen: set[tuple[int, str]] = set()
    for ref in refs:
        typing = _SetTyping(project.resolver(ref))
        for line, message in _function_findings(typing, ref.node):
            key = (line, message)
            if key not in seen:
                seen.add(key)
                yield Finding("HTL009", ctx.path, line, message)
    # Module-level code (outside any def) — rare but checkable without
    # local typing.
    module_typing = _SetTyping(None)
    for stmt in mod.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for line, message in _function_findings(module_typing, stmt):
            key = (line, message)
            if key not in seen:
                seen.add(key)
                yield Finding("HTL009", ctx.path, line, message)
