"""HTL007 — StaleEpochError retry discipline.

The epoch contract has a client half: a shard rejecting a stale route
with :class:`StaleEpochError` is *routine* (it happens on every
split/merge/migrate), so every call that can surface it must flow
through ``Router.retrying`` — the one place that refreshes the cached
map, backs off, and bounds attempts.  A bare call site that lets the
error escape turns an online reshard into user-visible failures; a
hand-rolled retry loop without a bound or backoff turns a flapping map
into a livelock.  Two checks:

**(a) Raiser escape.**  The project-wide *raiser set* — functions that
``raise StaleEpochError`` or call another raiser outside a protected
context — is computed as a fixpoint.  Protection contexts that stop
propagation: an argument (lambda / local closure) of a ``*.retrying(...)``
call, or an enclosing ``try`` whose handler catches ``StaleEpochError``
(or a base of it).  Private helpers (leading-underscore names) may
propagate freely — ``_commit_routed`` raising through to ``retrying``
is the design — and the function that *directly* raises is the
contract surface itself.  The finding is a **public** function that
merely propagates: it leaks another component's routing-contract error
to callers who never opted into handling it.

**(b) Bounded retry loops.**  Any loop that catches ``StaleEpochError``
must (i) bound its attempts — a conditional ``raise`` whose test reads
a counter the loop advances or an attribute named like ``max_*`` — and
(ii) back off between attempts (a ``charge``/``sleep``/``backoff``/
``advance`` call in the handler).  ``Router.retrying`` is the reference
implementation; copies that drop either half are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, register
from ..project import FunctionRef, ProjectIndex

ERROR_NAME = "StaleEpochError"
#: Catching any of these stops propagation (bases of StaleEpochError).
CATCHING_NAMES = {ERROR_NAME, "ReproError", "Exception", "BaseException"}
RETRY_CALL = "retrying"
BACKOFF_HINTS = ("charge", "sleep", "backoff", "advance")

MAX_DEPTH = 12


def _tail(expr: ast.expr | None) -> str:
    while isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


def _raises_directly(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise) and node.exc is not None:
            if _tail(node.exc) == ERROR_NAME:
                return True
    return False


def _handler_catches(handler: ast.ExceptHandler, names: set[str]) -> bool:
    if handler.type is None:
        return True  # bare except
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(_tail(n) in names for n in nodes)


class _Context:
    """Per-function positional facts: which AST calls sit inside a
    ``try`` whose handler catches StaleEpochError (or a base)."""

    def __init__(self, fn: ast.AST):
        self.protected: set[int] = set()  # id(call)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try):
                continue
            if any(_handler_catches(h, CATCHING_NAMES) for h in node.handlers):
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Call):
                            self.protected.add(id(sub))


def _own_calls(fn: ast.AST) -> Iterator[ast.Call]:
    """Calls executed by ``fn``'s own body.  Nested defs and lambdas are
    skipped: their calls run when *they* are invoked, and the common
    invocation — being handed to ``Router.retrying`` — is exactly the
    protected context.  A nested helper called directly still counts:
    ``helper()`` resolves to the local def, whose body is then walked as
    its own function."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class _Analysis:
    def __init__(self, project: ProjectIndex):
        self.project = project
        self._raiser: dict[str, bool] = {}
        self._resolvers: dict[str, object] = {}
        self._contexts: dict[str, _Context] = {}

    def _resolver(self, ref: FunctionRef):
        res = self._resolvers.get(ref.qual)
        if res is None:
            res = self.project.resolver(ref)
            self._resolvers[ref.qual] = res
        return res

    def _context(self, ref: FunctionRef) -> _Context:
        ctx = self._contexts.get(ref.qual)
        if ctx is None:
            ctx = _Context(ref.node)
            self._contexts[ref.qual] = ctx
        return ctx

    def is_raiser(self, ref: FunctionRef, depth: int = 0) -> bool:
        """Can a call to this function surface StaleEpochError to its
        caller?  Locally-raised or propagated from an *unprotected*
        callee call; stops at catches and at ``retrying`` boundaries."""
        key = ref.qual
        cached = self._raiser.get(key)
        if cached is not None:
            return cached
        if depth > MAX_DEPTH:
            return False
        self._raiser[key] = False  # cycle guard
        result = _raises_directly(ref.node)
        if not result:
            ctx = self._context(ref)
            resolver = self._resolver(ref)
            for node in _own_calls(ref.node):
                if id(node) in ctx.protected:
                    continue
                if _tail(node.func) == RETRY_CALL:
                    continue  # the protocol boundary sanitizes its args
                for callee in resolver.resolve_call(node, ducks=False):
                    if isinstance(callee.node, ast.Lambda):
                        continue
                    if callee.qual == key:
                        continue
                    if self.is_raiser(callee, depth + 1):
                        result = True
                        break
                if result:
                    break
        self._raiser[key] = result
        return result

    # ------------------------------------------------------------ findings

    def escape_findings(self, ref: FunctionRef) -> Iterator[tuple[int, str]]:
        """(line, raiser-name) for the unprotected raiser calls that
        make a *public* function leak StaleEpochError."""
        if isinstance(ref.node, ast.Lambda):
            return
        if ref.name.startswith("_"):
            return  # private helpers propagate by design
        if _raises_directly(ref.node):
            return  # the contract surface itself
        if not self.is_raiser(ref):
            return
        ctx = self._context(ref)
        resolver = self._resolver(ref)
        for node in _own_calls(ref.node):
            if id(node) in ctx.protected:
                continue
            if _tail(node.func) == RETRY_CALL:
                continue
            for callee in resolver.resolve_call(node, ducks=False):
                if isinstance(callee.node, ast.Lambda):
                    continue
                if self.is_raiser(callee):
                    yield node.lineno, callee.name
                    break


def _analysis(project: ProjectIndex) -> _Analysis:
    memo = project.cache.get("htl007")
    if memo is None:
        memo = _Analysis(project)
        project.cache["htl007"] = memo
    return memo


# ----------------------------------------------------------- bounded loops


def _loop_findings(tree: ast.Module) -> Iterator[tuple[int, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.While, ast.For)):
            continue
        handlers = [
            h
            for sub in ast.walk(node)
            if isinstance(sub, ast.Try)
            for h in sub.handlers
            if _handler_catches(h, {ERROR_NAME})
        ]
        if not handlers:
            continue
        counters = _advanced_names(node)
        if not _has_bound(node, counters):
            yield (
                node.lineno,
                "retry loop catching StaleEpochError has no attempt bound "
                "(no conditional raise on a loop-advanced counter or "
                "max_* limit); a flapping shard map livelocks here",
            )
        if not any(_has_backoff(h) for h in handlers):
            yield (
                node.lineno,
                "retry loop catching StaleEpochError never backs off "
                "(no charge/sleep/backoff call in the handler); stale "
                "retries hammer the metadata service",
            )


def _advanced_names(loop: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Assign):
            # attempt = attempt + 1
            for target in node.targets:
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.BinOp
                ):
                    names.add(target.id)
    return names


def _has_bound(loop: ast.AST, counters: set[str]) -> bool:
    for node in ast.walk(loop):
        if not isinstance(node, ast.If):
            continue
        if not any(isinstance(s, ast.Raise) for s in ast.walk(node)):
            continue
        for sub in ast.walk(node.test):
            if isinstance(sub, ast.Name) and sub.id in counters:
                return True
            if isinstance(sub, ast.Attribute) and sub.attr.startswith("max"):
                return True
    return False


def _has_backoff(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Call):
            tail = _tail(node.func)
            if any(h in tail for h in BACKOFF_HINTS):
                return True
    return False


# ------------------------------------------------------------------- rule


@register(
    "HTL007",
    "stale-epoch-retry-discipline",
    "StaleEpochError raiser called outside Router.retrying, or a retry "
    "loop without bound/backoff",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    project = ctx.project or ProjectIndex.from_single(ctx.path, ctx.tree)
    mod = project.module_of(ctx.path)
    if mod is None:
        return
    analysis = _analysis(project)
    for ci in mod.classes.values():
        for name, fn in ci.methods.items():
            for line, raiser in analysis.escape_findings(
                FunctionRef(mod, ci, name, fn)
            ):
                yield Finding(
                    "HTL007",
                    ctx.path,
                    line,
                    f"{ci.name}.{name} calls {raiser}() which can raise "
                    "StaleEpochError outside Router.retrying; online "
                    "resharding would surface as caller-visible errors",
                )
    for name, fn in mod.functions.items():
        for line, raiser in analysis.escape_findings(
            FunctionRef(mod, None, name, fn)
        ):
            yield Finding(
                "HTL007",
                ctx.path,
                line,
                f"{name} calls {raiser}() which can raise StaleEpochError "
                "outside Router.retrying; online resharding would surface "
                "as caller-visible errors",
            )
    for line, message in _loop_findings(ctx.tree):
        yield Finding("HTL007", ctx.path, line, message)
