"""HTL004 — metric/span name literals must be registered.

The obs layer looks series up by dotted name, so a typo'd counter
(``"wal.fsync"`` for ``"wal.fsyncs"``) records faithfully into a series
nobody snapshots — the metric silently reads zero forever.  Every name
literal passed to a registry instrument method or ``tracer.span`` must
therefore appear in :mod:`repro.obs.names` (``REGISTERED_METRICS`` /
``REGISTERED_SPANS``), which doubles as the documentation of the
testbed's whole metric surface.

Only string literals shaped like dotted series names are checked;
dynamic names (f-strings, variables) are out of static reach and the
runtime registry's own pattern validation covers them.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import FileContext, Finding, first_str_arg, register

_METRIC_METHODS = {
    "counter",
    "gauge",
    "histogram",
    "inc",
    "set_gauge",
    "observe",
    "counter_total",
}
_SPAN_METHODS = {"span"}

_NAME_SHAPE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: The registry module itself (defines the sets) and the obs layer's own
#: validation/tests are exempt.
_EXEMPT_FILES = ("obs/names.py",)


@register(
    "HTL004",
    "unregistered-metric-name",
    "metric/span name literal missing from repro.obs.names registry",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    if any(ctx.path.endswith(suffix) for suffix in _EXEMPT_FILES):
        return
    if not ctx.registered_metrics and not ctx.registered_spans:
        return  # no registry available (bare snippet without injection)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        name = first_str_arg(node)
        if name is None or not _NAME_SHAPE.match(name):
            continue
        if func.attr in _METRIC_METHODS:
            if name not in ctx.registered_metrics:
                yield Finding(
                    "HTL004",
                    ctx.path,
                    node.lineno,
                    f"metric name {name!r} is not in "
                    "repro.obs.names.REGISTERED_METRICS "
                    "(typo, or register it there)",
                )
        elif func.attr in _SPAN_METHODS:
            if name not in ctx.registered_spans:
                yield Finding(
                    "HTL004",
                    ctx.path,
                    node.lineno,
                    f"span name {name!r} is not in "
                    "repro.obs.names.REGISTERED_SPANS "
                    "(typo, or register it there)",
                )
