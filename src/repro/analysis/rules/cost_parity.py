"""HTL003 — simulated-cost parity across vectorized/scalar splits.

Every vectorized fast path in the testbed keeps a scalar reference
implementation behind a ``vectorized=`` switch, and DESIGN.md's
substitution rule requires both branches to charge the *same* simulated
cost — vectorization may only change wall-clock time, never the
simulated microseconds that drive the paper's claimed orderings.  A
fast path that forgets its ``cost.charge_rows`` quietly re-ranks
Table 1.

This rule finds every ``if``/ternary whose condition tests a
``vectorized`` flag and checks that either *both* arms reach a cost
charge (``.charge``/``.charge_rows``, directly or through methods and
functions resolvable in the same module) or *neither* does.  An
asymmetric split — one arm charges, the other cannot be shown to —
is flagged.  Charges issued by shared store primitives called on other
objects are invisible to both arms alike, so they never create
asymmetry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..callgraph import ClassIndex, ModuleIndex, local_callees, reaches
from ..core import FileContext, Finding, register

_CHARGE_METHODS = {"charge", "charge_rows"}


def _mentions_vectorized(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "vectorized":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "vectorized":
            return True
    return False


def _charges_directly(node: ast.AST) -> bool:
    """A `.charge`/`.charge_rows` call anywhere under ``node``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _CHARGE_METHODS
        ):
            return True
    return False


def _branch_charges(
    branch_nodes: list[ast.AST],
    class_index: ClassIndex | None,
    module_index: ModuleIndex,
) -> bool:
    """Does this arm charge cost — inline, or via a same-class method /
    same-module function it calls?"""
    for node in branch_nodes:
        if _charges_directly(node):
            return True
    for node in branch_nodes:
        self_methods, bare = local_callees(node)
        for name in self_methods:
            target = (
                class_index.methods.get(name) if class_index is not None else None
            )
            if target is not None and reaches(
                target, _charges_directly, class_index, module_index
            ):
                return True
        for name in bare:
            target = module_index.functions.get(name)
            if target is not None and reaches(
                target, _charges_directly, class_index, module_index
            ):
                return True
    return False


def _enclosing_class(
    tree: ast.Module, target: ast.AST, module_index: ModuleIndex
) -> ClassIndex | None:
    for class_name, ci in module_index.classes.items():
        for sub in ast.walk(ci.node):
            if sub is target:
                return module_index.classes[class_name]
    return None


@register(
    "HTL003",
    "cost-parity",
    "vectorized/scalar split where only one arm charges simulated cost",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    module_index = ModuleIndex.build(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.If):
            test, body, orelse = node.test, node.body, node.orelse
        elif isinstance(node, ast.IfExp):
            test, body, orelse = node.test, [node.body], [node.orelse]
        else:
            continue
        if not _mentions_vectorized(test):
            continue
        if not orelse:
            # `if vectorized:` with fall-through — both paths share the
            # code after the if, so there is no split to compare.
            continue
        class_index = _enclosing_class(ctx.tree, node, module_index)
        fast = _branch_charges(list(body), class_index, module_index)
        slow = _branch_charges(list(orelse), class_index, module_index)
        if fast != slow:
            missing = "scalar" if fast else "vectorized"
            yield Finding(
                "HTL003",
                ctx.path,
                node.lineno,
                "vectorized= split charges simulated cost on only one arm "
                f"(the {missing} arm reaches no .charge/.charge_rows); "
                "fast paths must cost the same as their scalar reference",
            )
