"""HTL002 — mutation without a scan-cache version bump.

The MVCC-aware snapshot-scan cache keys every batch on a version token
assembled from store counters (``ColumnStore.mutations``,
``MVCCRowStore.installs``, ...).  A write path that changes what a scan
returns *without* moving any token component makes a stale cached batch
indistinguishable from a fresh one — the one bug class the cache design
cannot survive.  PR 2/3 wired the bumps by hand through dozens of call
sites; this rule machine-checks the convention at two layers:

**Store layer.**  A class that declares a version counter (an attribute
named ``mutations``, ``installs``/``_installs``, or ``epoch``/``_epoch``
initialized in ``__init__``) is *version-tracked*.  The rule learns which ``self.*``
attributes its bumping methods mutate (the scan-visible state) and then
flags any public method that mutates one of those attributes while
neither bumping the counter itself nor (transitively, through
same-class helpers) calling a method that does.

**Engine layer.**  Classes deriving from ``HTAPEngine`` own a
``scan_cache``; any public engine method that directly calls a store
write primitive (``append_rows``, ``install_insert``,
``record_delete``, ...) must reach a ``scan_cache.invalidate(...)`` on
the same path.  Commit-listener plumbing (private methods) is exempt —
it is reached via the transaction manager, whose listeners carry the
invalidate.

Watermark-only methods (e.g. ``advance_sync_ts``) that move a timestamp
no token includes are the intended use of a per-line suppression with a
reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..callgraph import ClassIndex, ModuleIndex, reaches
from ..core import FileContext, Finding, attr_chain, register

#: ``epoch`` covers the statistics/plan-cache fence (PR 6): a class
#: serving cached state under an epoch must bump it on every state
#: change, or the plan cache keeps serving plans costed against
#: statistics that no longer exist.
_VERSION_COUNTERS = {"mutations", "installs", "_installs", "epoch", "_epoch"}

#: Methods that mutate a container in place when called on `self.<attr>`.
_MUTATOR_CALLS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
}

#: Store write primitives an engine method may call directly.
_WRITE_PRIMITIVES = {
    "install_insert",
    "install_update",
    "install_delete",
    "append_rows",
    "append_batch",
    "delete_keys",
    "delete_batch",
    "record_insert",
    "record_update",
    "record_delete",
    "record_insert_batch",
    "record_delete_batch",
    "append_batch_columns",
}

_ENGINE_BASES = {"HTAPEngine"}


# --------------------------------------------------------------- store layer


def _self_attr_of_target(node: ast.AST) -> str | None:
    """The `self.<attr>` root written by an assignment target /
    subscript / delete, if any (``self._locations[k] = v`` -> "_locations")."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_self_attrs(fn: ast.FunctionDef) -> set[str]:
    """All `self.<attr>` roots this method writes (assign / augassign /
    del / in-place container-mutator call)."""
    mutated: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr_of_target(target)
                if attr:
                    mutated.add(attr)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = _self_attr_of_target(node.target)
            if attr:
                mutated.add(attr)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr_of_target(target)
                if attr:
                    mutated.add(attr)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_CALLS:
                chain = attr_chain(node.func)
                if len(chain) >= 3 and chain[0] == "self":
                    mutated.add(chain[1])
    return mutated


def _bumps_counter(fn: ast.FunctionDef, counters: set[str]) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.AugAssign):
            attr = _self_attr_of_target(node.target)
            if attr in counters:
                return True
    return False


def _declared_counters(ci: ClassIndex) -> set[str]:
    init = ci.methods.get("__init__")
    if init is None:
        return set()
    counters: set[str] = set()
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr_of_target(target)
                if attr in _VERSION_COUNTERS:
                    counters.add(attr)
    return counters


def _store_layer(ctx: FileContext, module_index: ModuleIndex) -> Iterator[Finding]:
    for ci in module_index.classes.values():
        counters = _declared_counters(ci)
        if not counters:
            continue
        bumpers = [
            fn
            for name, fn in ci.methods.items()
            if name != "__init__" and _bumps_counter(fn, counters)
        ]
        if not bumpers:
            continue
        # Scan-visible state = what the bumping write paths touch.
        tracked: set[str] = set()
        for fn in bumpers:
            tracked |= _mutated_self_attrs(fn)
        tracked -= counters
        if not tracked:
            continue

        def bump_pred(fn: ast.FunctionDef, _counters=counters) -> bool:
            return _bumps_counter(fn, _counters)

        for name, fn in ci.methods.items():
            if name.startswith("_"):
                continue  # helpers are checked through their public callers
            touched = _mutated_self_attrs(fn) & tracked
            # Include state mutated via private same-class helpers.
            for callee_name in _collect_self_calls(fn):
                callee = ci.methods.get(callee_name)
                if callee is not None and callee_name.startswith("_"):
                    touched |= _mutated_self_attrs(callee) & tracked
            if not touched:
                continue
            if reaches(fn, bump_pred, ci, module_index):
                continue
            yield Finding(
                "HTL002",
                ctx.path,
                fn.lineno,
                f"{ci.node.name}.{name} mutates version-tracked state "
                f"({', '.join(sorted(touched))}) without bumping "
                f"{'/'.join(sorted(counters))}; stale scan-cache entries "
                "would keep matching their token",
            )


def _collect_self_calls(fn: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            names.add(node.func.attr)
    return names


# --------------------------------------------------------------- engine layer


def _calls_write_primitive(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_PRIMITIVES
        ):
            return True
    return False


def _invalidates_cache(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if (
                len(chain) >= 2
                and chain[-1] == "invalidate"
                and chain[-2] == "scan_cache"
            ):
                return True
    return False


def _engine_layer(ctx: FileContext, module_index: ModuleIndex) -> Iterator[Finding]:
    for ci in module_index.classes.values():
        if not (_ENGINE_BASES & set(ci.base_names)):
            continue
        for name, fn in ci.methods.items():
            if name.startswith("_"):
                continue  # listener plumbing; reached via txn listeners
            if not _calls_write_primitive(fn):
                continue
            if reaches(fn, _invalidates_cache, ci, module_index):
                continue
            yield Finding(
                "HTL002",
                ctx.path,
                fn.lineno,
                f"engine method {ci.node.name}.{name} calls a store write "
                "primitive but never reaches scan_cache.invalidate(); "
                "cached batches for the table stay resident until eviction",
            )


@register(
    "HTL002",
    "mutation-without-invalidation",
    "write path that changes scan results without a version bump/invalidate",
)
def check(ctx: FileContext) -> Iterator[Finding]:
    module_index = ModuleIndex.build(ctx.tree)
    yield from _store_layer(ctx, module_index)
    yield from _engine_layer(ctx, module_index)
