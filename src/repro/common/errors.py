"""Exception hierarchy shared by every subsystem of the testbed.

Keeping all error types in one module lets callers catch a single base
class (:class:`ReproError`) or a narrow subclass without importing the
subsystem that raised it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A table schema is malformed or a row does not match its schema."""


class StorageError(ReproError):
    """A storage engine rejected an operation (missing table, bad key...)."""


class DuplicateKeyError(StorageError):
    """An insert collided with an existing, visible primary key."""


class KeyNotFoundError(StorageError):
    """A point operation referenced a primary key that does not exist."""


class TransactionError(ReproError):
    """A transaction was used incorrectly (e.g. write after commit)."""


class TransactionAborted(TransactionError):
    """The system aborted the transaction, typically on a write conflict."""

    def __init__(self, txn_id: int, reason: str):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class WriteConflictError(TransactionAborted):
    """First-committer-wins conflict under snapshot isolation."""

    def __init__(self, txn_id: int, key: object):
        TransactionError.__init__(
            self, f"transaction {txn_id} aborted: write-write conflict on {key!r}"
        )
        self.txn_id = txn_id
        self.reason = f"write-write conflict on {key!r}"
        self.key = key


class QueryError(ReproError):
    """A query could not be parsed, planned, or executed."""


class SqlSyntaxError(QueryError):
    """The SQL text failed to parse."""

    def __init__(self, message: str, position: int | None = None):
        suffix = f" (at offset {position})" if position is not None else ""
        super().__init__(message + suffix)
        self.position = position


class PlanningError(QueryError):
    """The planner could not produce a plan (unknown table/column...)."""


class ConsensusError(ReproError):
    """A Raft group could not serve a request (no leader, lost quorum)."""


class NotLeaderError(ConsensusError):
    """A log append was sent to a node that is not the group leader."""

    def __init__(self, node_id: str, leader_hint: str | None):
        super().__init__(f"node {node_id} is not leader (hint: {leader_hint})")
        self.leader_hint = leader_hint


class TwoPhaseCommitError(ReproError):
    """A distributed commit failed during prepare or commit."""


class StaleEpochError(ReproError):
    """A shard rejected a request routed with an out-of-date shard map.

    Carries the authoritative epoch so the router can tell how far
    behind its cache is before refetching."""

    def __init__(self, shard_id: int, current_epoch: int, detail: str = ""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"shard {shard_id} rejected stale-epoch request; "
            f"metadata is at epoch {current_epoch}{suffix}"
        )
        self.shard_id = shard_id
        self.current_epoch = current_epoch


class RoutingError(ReproError):
    """A router could not place a request (retries exhausted, no shard)."""


class SchedulerError(ReproError):
    """A resource scheduler was configured or driven incorrectly."""


class BenchmarkError(ReproError):
    """A benchmark driver was misconfigured."""
