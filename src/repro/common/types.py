"""Schema primitives shared by the row store, column store, and planner.

A *row* in this library is a plain tuple whose positions line up with the
columns of a :class:`Schema`.  Keeping rows as tuples (instead of objects)
keeps every storage engine cheap to copy and trivially hashable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from .errors import SchemaError

Row = tuple
Key = Any


class DataType(enum.Enum):
    """Logical column types understood by every store and the executor."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    BOOL = "bool"
    # Dates are stored as int64 days-since-epoch; DATE only affects parsing
    # and formatting, never storage.
    DATE = "date"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used when this column is held columnar."""
        if self is DataType.INT64 or self is DataType.DATE:
            return np.dtype(np.int64)
        if self is DataType.FLOAT64:
            return np.dtype(np.float64)
        if self is DataType.BOOL:
            return np.dtype(np.bool_)
        return np.dtype(object)

    def validate(self, value: Any) -> bool:
        """Whether ``value`` is acceptable for a column of this type."""
        if value is None:
            return True
        if self is DataType.INT64 or self is DataType.DATE:
            return isinstance(value, (int, np.integer)) and not isinstance(value, bool)
        if self is DataType.FLOAT64:
            return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
                value, bool
            )
        if self is DataType.BOOL:
            return isinstance(value, (bool, np.bool_))
        return isinstance(value, str)


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    dtype: DataType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered set of columns plus the primary-key column names.

    The primary key may be composite; the key of a row is then a tuple of
    the key column values in declaration order.
    """

    table_name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...]
    _index_of: dict = field(default_factory=dict, compare=False, repr=False)

    def __init__(
        self,
        table_name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str],
    ):
        object.__setattr__(self, "table_name", table_name)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "primary_key", tuple(primary_key))
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {table_name!r}")
        if not self.primary_key:
            raise SchemaError(f"table {table_name!r} needs a primary key")
        index_of = {name: i for i, name in enumerate(names)}
        for key_col in self.primary_key:
            if key_col not in index_of:
                raise SchemaError(f"primary key column {key_col!r} not in schema")
            if self.columns[index_of[key_col]].nullable:
                raise SchemaError(f"primary key column {key_col!r} must not be nullable")
        object.__setattr__(self, "_index_of", index_of)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._index_of

    def index_of(self, name: str) -> int:
        """Position of ``name`` in a row tuple; raises on unknown columns."""
        try:
            return self._index_of[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in table {self.table_name!r}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def key_indexes(self) -> tuple[int, ...]:
        return tuple(self.index_of(name) for name in self.primary_key)

    def key_of(self, row: Row) -> Key:
        """Extract the primary key of ``row`` (scalar for 1-column keys)."""
        idx = self.key_indexes()
        if len(idx) == 1:
            return row[idx[0]]
        return tuple(row[i] for i in idx)

    def validate_row(self, row: Sequence[Any]) -> Row:
        """Check arity, types, and nullability; return the row as a tuple."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values, table {self.table_name!r} "
                f"has {len(self.columns)} columns"
            )
        for value, col in zip(row, self.columns):
            if value is None:
                if not col.nullable:
                    raise SchemaError(
                        f"column {col.name!r} of {self.table_name!r} is not nullable"
                    )
            elif not col.dtype.validate(value):
                raise SchemaError(
                    f"value {value!r} is not valid for column "
                    f"{col.name!r} ({col.dtype.value})"
                )
        return tuple(row)

    def project(self, names: Iterable[str]) -> list[int]:
        """Indexes of ``names`` in row order, validating each name."""
        return [self.index_of(n) for n in names]


#: SQL NULL in an INT64/DATE column array.  Far enough from real data
#: that range predicates with sane constants exclude it, like NULL
#: semantics require; floats use NaN, strings/objects use None directly.
NULL_INT: int = -(2**62)


def encode_cell(value: Any, dtype: DataType) -> Any:
    """Map a (possibly-None) row cell to its columnar representation."""
    if value is not None:
        return value
    if dtype is DataType.INT64 or dtype is DataType.DATE:
        return NULL_INT
    if dtype is DataType.FLOAT64:
        return float("nan")
    if dtype is DataType.BOOL:
        return False
    return None


def decode_cell(value: Any, dtype: DataType) -> Any:
    """Inverse of :func:`encode_cell` (columnar -> row cell)."""
    if hasattr(value, "item"):
        value = value.item()
    if dtype is DataType.INT64 or dtype is DataType.DATE:
        return None if value == NULL_INT else value
    if dtype is DataType.FLOAT64:
        return None if value != value else value  # NaN check
    return value


def rows_to_columns(schema: Schema, rows: Sequence[Row]) -> dict[str, np.ndarray]:
    """Pivot row tuples into one NumPy array per column.

    The work-horse conversion used when deltas are merged into columnar
    form and when the vectorized executor pulls row-store data.  NULLs
    become per-dtype sentinels (see :data:`NULL_INT`).
    """
    arrays: dict[str, np.ndarray] = {}
    for i, col in enumerate(schema.columns):
        values = [row[i] for row in rows]
        if None in values:  # only NULL cells need sentinel mapping
            dtype = col.dtype
            values = [encode_cell(v, dtype) for v in values]
        arrays[col.name] = np.array(values, dtype=col.dtype.numpy_dtype)
    return arrays


def columns_to_rows(schema: Schema, arrays: dict[str, np.ndarray]) -> list[Row]:
    """Inverse of :func:`rows_to_columns` (column order from the schema)."""
    if not arrays:
        return []
    ordered = [(arrays[c.name], c.dtype) for c in schema.columns]
    length = len(ordered[0][0]) if ordered else 0
    return [
        tuple(decode_cell(col[i], dtype) for col, dtype in ordered)
        for i in range(length)
    ]
