"""Logical and simulated clocks.

The testbed never reads the wall clock.  Transactions are ordered by a
:class:`LogicalClock` (a monotone counter, as in most MVCC systems), and
performance is accounted on a :class:`SimClock` in simulated microseconds
so every benchmark is deterministic and independent of interpreter noise.
"""

from __future__ import annotations

Timestamp = int

#: Sentinel "end of time" for versions that are still the newest.
INFINITY_TS: Timestamp = 2**62


class LogicalClock:
    """Monotone counter handing out begin/commit timestamps."""

    def __init__(self, start: Timestamp = 1):
        self._now = start

    def now(self) -> Timestamp:
        return self._now

    def tick(self) -> Timestamp:
        """Advance and return the new timestamp (strictly increasing)."""
        self._now += 1
        return self._now

    def advance_to(self, ts: Timestamp) -> None:
        """Fast-forward so the next tick is after ``ts`` (HLC-style merge)."""
        if ts > self._now:
            self._now = ts


class SimClock:
    """Accumulates simulated time in microseconds.

    Subsystems call :meth:`advance` with the cost of each primitive they
    perform; benchmark harnesses read :meth:`now_us` before and after a
    workload to compute simulated throughput.
    """

    def __init__(self) -> None:
        self._now_us = 0.0

    def now_us(self) -> float:
        return self._now_us

    def now_s(self) -> float:
        return self._now_us / 1e6

    def advance(self, delta_us: float) -> None:
        if delta_us < 0:
            raise ValueError(f"cannot move simulated time backwards ({delta_us})")
        self._now_us += delta_us

    def reset(self) -> None:
        self._now_us = 0.0


class StopWatch:
    """Measures a span of simulated time on a :class:`SimClock`."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._start = clock.now_us()

    def elapsed_us(self) -> float:
        return self._clock.now_us() - self._start

    def restart(self) -> None:
        self._start = self._clock.now_us()
