"""The calibrated cost model that accounts simulated time.

Every storage/network/compute primitive has a cost in simulated
microseconds.  The constants are not meant to match any specific
hardware; they preserve the *ratios* that drive the paper's qualitative
claims:

* scanning one value in a columnar segment is much cheaper than touching
  one row in a row store (vectorization + cache locality, the premise of
  every HTAP design in the survey);
* a disk page read dwarfs any in-memory operation (why Heatwave-style
  systems bolt an in-memory column store onto a disk RDBMS);
* a network round trip dwarfs local work (why 2PC+Raft commits are slow
  but scale out, Table 2's TP row);
* a GPU scans values faster than a CPU but pays a fixed launch cost and
  a per-value transfer cost (Table 2's CPU/GPU row).

All engines share one :class:`CostModel` instance wired to one
:class:`~repro.common.clock.SimClock`, so time composes across
subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .clock import SimClock


@dataclass
class CostModel:
    """Cost constants (simulated microseconds) plus the clock they feed."""

    clock: SimClock = field(default_factory=SimClock)

    # --- in-memory row store -------------------------------------------------
    row_point_read_us: float = 1.0      # hash-index probe + version walk
    row_point_write_us: float = 1.5     # install a new version
    row_scan_per_row_us: float = 0.5    # full scan, per visible row
    index_lookup_us: float = 1.2        # B+-tree descent
    index_scan_per_row_us: float = 0.4  # leaf-chain walk, per row

    # --- columnar store ------------------------------------------------------
    column_scan_per_value_us: float = 0.02   # vectorized scan, per value
    column_materialize_per_row_us: float = 0.15  # stitch row from columns
    delta_scan_per_row_us: float = 0.6       # unsorted in-memory delta probe
    segment_seal_per_row_us: float = 0.3     # encode one row into a segment
    zone_map_check_us: float = 0.05          # min/max probe, per segment
    code_filter_per_value_us: float = 0.004  # predicate on dictionary codes / runs
    code_gather_per_value_us: float = 0.006  # hand a dictionary code downstream
    code_remap_per_value_us: float = 0.003   # rewrite a code into a merged dictionary

    # --- logging / disk --------------------------------------------------------
    wal_append_us: float = 2.0
    wal_fsync_us: float = 25.0
    page_read_us: float = 120.0          # buffer-pool miss
    page_write_us: float = 150.0
    buffer_hit_us: float = 0.8

    # --- delta merge / sync ----------------------------------------------------
    merge_per_row_us: float = 0.8        # move one delta row into the main store
    dict_rebuild_per_value_us: float = 0.12
    rebuild_per_row_us: float = 0.5      # full rebuild from the row store

    # --- network (simulated cluster) --------------------------------------------
    network_rtt_us: float = 500.0        # intra-DC round trip
    network_oneway_us: float = 250.0
    network_per_kb_us: float = 8.0

    # --- heterogeneous hardware --------------------------------------------------
    gpu_kernel_launch_us: float = 15.0
    gpu_scan_per_value_us: float = 0.002
    gpu_transfer_per_value_us: float = 0.008  # PCIe, per resident value
    cpu_dispatch_us: float = 0.3

    # --- generic compute ---------------------------------------------------------
    hash_build_per_row_us: float = 0.25
    hash_probe_per_row_us: float = 0.15
    sort_per_row_us: float = 0.35
    agg_per_value_us: float = 0.01
    distinct_per_row_us: float = 0.12        # dedup hashing, per input row
    residual_filter_per_row_us: float = 0.05  # post-join equality filter, per row
    cache_probe_us: float = 0.5              # snapshot-scan cache hit

    # -- accounting helpers -------------------------------------------------------

    def charge(self, micros: float) -> None:
        """Accrue ``micros`` of simulated time."""
        self.clock.advance(micros)

    def charge_rows(self, per_row_us: float, n_rows: int) -> None:
        self.clock.advance(per_row_us * n_rows)

    def now_us(self) -> float:
        return self.clock.now_us()

    def fork_detached(self) -> "CostModel":
        """A copy with the same constants but a fresh, independent clock.

        Used when a subsystem needs private accounting (e.g. measuring
        just the merge cost) without advancing the shared timeline.
        """
        clone = CostModel(clock=SimClock())
        for name in self.__dataclass_fields__:
            if name != "clock":
                setattr(clone, name, getattr(self, name))
        return clone


DEFAULT_COST_MODEL = CostModel()
