"""Seeded randomness helpers used by workload generators and Raft timers.

Everything random in the testbed flows through an explicit
``random.Random`` (or ``numpy.random.Generator``) seeded by the caller,
so every benchmark run is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
import string

import numpy as np


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def make_np_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_string(rng: random.Random, min_len: int, max_len: int) -> str:
    """TPC-C style a-string: random letters, length in [min_len, max_len]."""
    length = rng.randint(min_len, max_len)
    return "".join(rng.choices(string.ascii_letters, k=length))


def random_numeric_string(rng: random.Random, length: int) -> str:
    """TPC-C style n-string of digits (zip codes, phone numbers)."""
    return "".join(rng.choices(string.digits, k=length))


def nurand(rng: random.Random, a: int, x: int, y: int, c: int = 123) -> int:
    """TPC-C NURand non-uniform distribution over [x, y]."""
    return (((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1)) + x


class ZipfGenerator:
    """Zipf-distributed integers in [0, n) with parameter ``theta``.

    Used to build the skewed/correlated workloads that §2.4 argues
    TPC-H lacks; precomputes the CDF once so draws are O(log n).
    """

    def __init__(self, n: int, theta: float, seed: int):
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self._rng = random.Random(seed)
        weights = np.arange(1, n + 1, dtype=np.float64) ** (-theta)
        self._cdf = np.cumsum(weights / weights.sum())

    def draw(self) -> int:
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="left"))

    def draw_many(self, k: int) -> list[int]:
        return [self.draw() for _ in range(k)]
