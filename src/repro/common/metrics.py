"""Measurement helpers: latency distributions, throughput, freshness.

These are the metric definitions §2.3 of the paper builds on: tpmC-style
transaction throughput, QphH-style query throughput, data freshness
(staleness of the analytical view), and workload-isolation degradation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


class LatencyRecorder:
    """Collects latency samples (simulated microseconds) and summarizes.

    The sorted view is computed lazily and cached, so a p50/p95/p99
    summary costs one sort total instead of one sort per percentile;
    any new sample invalidates the cache.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted: list[float] | None = None

    def record(self, latency_us: float) -> None:
        self._samples.append(latency_us)
        self._sorted = None

    def extend(self, samples: Iterable[float]) -> None:
        self._samples.extend(samples)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; pct in (0, 100]."""
        if not self._samples:
            return 0.0
        if not 0 < pct <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {pct}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        rank = max(1, math.ceil(pct / 100 * len(ordered)))
        return ordered[rank - 1]

    def p50(self) -> float:
        return self.percentile(50)

    def p95(self) -> float:
        return self.percentile(95)

    def p99(self) -> float:
        return self.percentile(99)

    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0


@dataclass
class ThroughputMeter:
    """Ops per simulated second over an explicit window."""

    ops: int = 0
    window_us: float = 0.0

    def add(self, ops: int, window_us: float) -> None:
        self.ops += ops
        self.window_us += window_us

    def per_second(self) -> float:
        if self.window_us <= 0:
            return 0.0
        return self.ops / (self.window_us / 1e6)

    def per_minute(self) -> float:
        return self.per_second() * 60.0


@dataclass
class FreshnessSample:
    """One freshness observation at analytical-query time.

    ``lag_ts`` counts commit timestamps not yet visible to the reader
    (version distance); ``lag_us`` is the simulated age of the oldest
    missing update.  Both appear in the literature; we track both.
    """

    lag_ts: int
    lag_us: float


class FreshnessRecorder:
    """Aggregates freshness samples into the scores used by the benches."""

    def __init__(self) -> None:
        self.samples: list[FreshnessSample] = []

    def record(self, lag_ts: int, lag_us: float = 0.0) -> None:
        self.samples.append(FreshnessSample(lag_ts=lag_ts, lag_us=lag_us))

    def mean_lag_ts(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.lag_ts for s in self.samples) / len(self.samples)

    def mean_lag_us(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.lag_us for s in self.samples) / len(self.samples)

    def freshness_score(self) -> float:
        """1 / (1 + mean version lag): 1.0 means perfectly fresh reads."""
        return 1.0 / (1.0 + self.mean_lag_ts())


def isolation_degradation(throughput_alone: float, throughput_mixed: float) -> float:
    """Fractional throughput lost when the other workload co-runs.

    0.0 = perfect isolation (no interference); 1.0 = fully starved.
    This is the §2.3(2) "performance degradation paid" metric.
    """
    if throughput_alone <= 0:
        return 0.0
    return max(0.0, 1.0 - throughput_mixed / throughput_alone)


@dataclass
class BenchReport:
    """A labelled bundle of the four headline HTAP metrics."""

    label: str
    tp_per_sec: float = 0.0
    ap_per_sec: float = 0.0
    freshness: float = 0.0
    isolation: float = 0.0
    extras: dict = field(default_factory=dict)

    def row(self) -> str:
        return (
            f"{self.label:<38} {self.tp_per_sec:>12.1f} {self.ap_per_sec:>12.2f} "
            f"{self.freshness:>10.3f} {self.isolation:>10.3f}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'system':<38} {'TP ops/s':>12} {'AP q/s':>12} "
            f"{'freshness':>10} {'isolation':>10}"
        )
