"""Predicates evaluable both row-at-a-time and vectorized.

The same predicate object is pushed into the row store (tuple-at-a-time
``matches``) and into the column store (NumPy ``mask`` over whole column
arrays).  Having one representation for both paths is what makes the
hybrid row/column access-path choice of Table 2 a pure optimizer
decision with identical semantics either way.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .errors import QueryError
from .types import Row, Schema

_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """Base predicate. Subclasses implement both evaluation strategies."""

    def matches(self, row: Row, schema: Schema) -> bool:
        raise NotImplementedError

    def mask(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        """Boolean mask over columnar data (one array per referenced column)."""
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        raise NotImplementedError

    # Composition sugar so call sites read naturally.
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches everything; the default WHERE clause."""

    def matches(self, row: Row, schema: Schema) -> bool:
        return True

    def mask(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        n = len(next(iter(arrays.values()))) if arrays else 0
        return np.ones(n, dtype=bool)

    def referenced_columns(self) -> set[str]:
        return set()


ALWAYS_TRUE = TruePredicate()


@dataclass(frozen=True)
class Param:
    """Placeholder for a prepared-statement parameter (SQL ``?``).

    Appears only in predicate *value* slots (the literal side of a
    comparison, BETWEEN bound, or IN-list member).  A predicate holding
    Params is a template: :func:`bind_predicate` must replace every
    Param with a concrete literal before evaluation.  Comparison
    operators raise so an unbound template fails loudly instead of
    silently matching nothing (``__eq__`` stays structural — templates
    are dict keys in the plan cache).
    """

    index: int

    def _unbound(self, *_args):
        raise QueryError(
            f"parameter ?{self.index} is unbound; bind_predicate() first"
        )

    __lt__ = __le__ = __gt__ = __ge__ = _unbound


def collect_params(predicate: Predicate) -> list[int]:
    """Indices of every :class:`Param` in value slots, in syntax order."""
    found: list[int] = []

    def visit_value(value: Any) -> None:
        if isinstance(value, Param):
            found.append(value.index)

    def visit(p: Predicate) -> None:
        if isinstance(p, Comparison):
            visit_value(p.value)
        elif isinstance(p, Between):
            visit_value(p.low)
            visit_value(p.high)
        elif isinstance(p, InList):
            for v in p.values:
                visit_value(v)
        elif isinstance(p, (And, Or)):
            for child in p.children:
                visit(child)
        elif isinstance(p, Not):
            visit(p.child)

    visit(predicate)
    return found


def bind_predicate(predicate: Predicate, params: Sequence[Any]) -> Predicate:
    """Replace every :class:`Param` with ``params[param.index]``.

    Returns ``predicate`` itself when it holds no Params, so binding a
    plain predicate is free.  Raises :class:`QueryError` on an index
    beyond ``params`` (too few arguments for the statement).
    """

    def bind_value(value: Any) -> Any:
        if isinstance(value, Param):
            if value.index >= len(params):
                raise QueryError(
                    f"statement needs parameter ?{value.index} but only "
                    f"{len(params)} were bound"
                )
            return params[value.index]
        return value

    def visit(p: Predicate) -> Predicate:
        if isinstance(p, Comparison):
            bound = bind_value(p.value)
            return p if bound is p.value else Comparison(p.column, p.op, bound)
        if isinstance(p, Between):
            low, high = bind_value(p.low), bind_value(p.high)
            if low is p.low and high is p.high:
                return p
            return Between(p.column, low, high)
        if isinstance(p, InList):
            values = tuple(bind_value(v) for v in p.values)
            if values == p.values:
                return p
            return InList(p.column, values)
        if isinstance(p, And):
            children = tuple(visit(c) for c in p.children)
            if all(c is o for c, o in zip(children, p.children)):
                return p
            return And(children)
        if isinstance(p, Or):
            children = tuple(visit(c) for c in p.children)
            if all(c is o for c, o in zip(children, p.children)):
                return p
            return Or(children)
        if isinstance(p, Not):
            child = visit(p.child)
            return p if child is p.child else Not(child)
        return p

    return visit(predicate)


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> literal`` for op in =, !=, <, <=, >, >=."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: Row, schema: Schema) -> bool:
        cell = row[schema.index_of(self.column)]
        if cell is None:
            return False
        return bool(_OPS[self.op](cell, self.value))

    def mask(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        arr = arrays[self.column]
        result = _OPS[self.op](arr, self.value)
        return np.asarray(result, dtype=bool)

    def referenced_columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= column <= high`` — the classic zone-map-friendly range."""

    column: str
    low: Any
    high: Any

    def matches(self, row: Row, schema: Schema) -> bool:
        cell = row[schema.index_of(self.column)]
        if cell is None:
            return False
        return self.low <= cell <= self.high

    def mask(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        arr = arrays[self.column]
        return np.asarray((arr >= self.low) & (arr <= self.high), dtype=bool)

    def referenced_columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class InList(Predicate):
    """``column IN (values...)``."""

    column: str
    values: tuple

    def __init__(self, column: str, values: Iterable[Any]):
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def matches(self, row: Row, schema: Schema) -> bool:
        return row[schema.index_of(self.column)] in self.values

    def mask(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        arr = arrays[self.column]
        return np.isin(arr, np.array(list(self.values), dtype=arr.dtype))

    def referenced_columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class And(Predicate):
    children: tuple

    def __init__(self, children: Sequence[Predicate]):
        object.__setattr__(self, "children", tuple(children))

    def matches(self, row: Row, schema: Schema) -> bool:
        return all(child.matches(row, schema) for child in self.children)

    def mask(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        result: np.ndarray | None = None
        for child in self.children:
            m = child.mask(arrays)
            result = m if result is None else result & m
        if result is None:
            return TruePredicate().mask(arrays)
        return result

    def referenced_columns(self) -> set[str]:
        cols: set[str] = set()
        for child in self.children:
            cols |= child.referenced_columns()
        return cols


@dataclass(frozen=True)
class Or(Predicate):
    children: tuple

    def __init__(self, children: Sequence[Predicate]):
        object.__setattr__(self, "children", tuple(children))

    def matches(self, row: Row, schema: Schema) -> bool:
        return any(child.matches(row, schema) for child in self.children)

    def mask(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        result: np.ndarray | None = None
        for child in self.children:
            m = child.mask(arrays)
            result = m if result is None else result | m
        if result is None:
            return TruePredicate().mask(arrays)
        return result

    def referenced_columns(self) -> set[str]:
        cols: set[str] = set()
        for child in self.children:
            cols |= child.referenced_columns()
        return cols


@dataclass(frozen=True)
class Not(Predicate):
    child: Predicate

    def matches(self, row: Row, schema: Schema) -> bool:
        return not self.child.matches(row, schema)

    def mask(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        return ~self.child.mask(arrays)

    def referenced_columns(self) -> set[str]:
        return self.child.referenced_columns()


def key_equality(predicate: Predicate, key_columns: Sequence[str]) -> Any | None:
    """If ``predicate`` pins every key column with equality, return the key.

    Used by the optimizer to recognize point lookups (scalar key for a
    single key column, tuple otherwise); returns ``None`` when the
    predicate does not fully determine the key.
    """
    bindings: dict[str, Any] = {}

    def collect(p: Predicate) -> bool:
        if isinstance(p, Comparison) and p.op == "=":
            bindings.setdefault(p.column, p.value)
            return True
        if isinstance(p, And):
            return all(collect(c) for c in p.children)
        if isinstance(p, TruePredicate):
            return True
        return False

    # A disjunction (or negation) anywhere means we cannot prove a point.
    if not collect(predicate):
        return None
    if not all(col in bindings for col in key_columns):
        return None
    if len(key_columns) == 1:
        return bindings[key_columns[0]]
    return tuple(bindings[col] for col in key_columns)


def column_range(predicate: Predicate, column: str) -> tuple[Any, Any] | None:
    """Extract a ``[low, high]`` bound on ``column`` from AND-ed comparisons.

    Feeds zone-map pruning in the column store.  Returns ``None`` when
    the predicate gives no usable bound (or uses OR/NOT at the top).
    """
    low: Any = None
    high: Any = None

    def visit(p: Predicate) -> bool:
        nonlocal low, high
        if isinstance(p, And):
            return all(visit(c) for c in p.children)
        if isinstance(p, Between) and p.column == column:
            low = p.low if low is None else max(low, p.low)
            high = p.high if high is None else min(high, p.high)
            return True
        if isinstance(p, Comparison) and p.column == column:
            if p.op == "=":
                low = p.value if low is None else max(low, p.value)
                high = p.value if high is None else min(high, p.value)
            elif p.op in (">", ">="):
                low = p.value if low is None else max(low, p.value)
            elif p.op in ("<", "<="):
                high = p.value if high is None else min(high, p.value)
            return True
        # Comparisons on other columns are fine; OR/NOT poison the bound.
        return isinstance(p, (Comparison, Between, InList, TruePredicate))

    if not visit(predicate):
        return None
    if low is None and high is None:
        return None
    return (low, high)
