"""The registered-name registry for metrics and trace spans.

Every series name passed to :class:`~repro.obs.registry.MetricsRegistry`
and every span name passed to :class:`~repro.obs.trace.SimTracer` in
``src/repro`` must appear here.  The ``htaplint`` rule **HTL004**
statically checks every name literal against this registry, so a typo'd
counter (``"wal.fsync"`` for ``"wal.fsyncs"``) fails lint instead of
silently recording into an orphan series that no bench snapshot reads.

Keep the sets sorted; add the name here *in the same commit* that
introduces the instrument.  Tests and ad-hoc scripts are outside the
registry's scope — only ``src/repro`` is linted.
"""

from __future__ import annotations

#: Every metric series name registered by src/repro (label sets vary
#: per call site; only the dotted name is registered).
REGISTERED_METRICS: frozenset[str] = frozenset(
    {
        # engine layer
        "engine.ap_queries",
        "engine.sync_calls",
        "engine.sync_rows",
        "engine.tp_aborts",
        "engine.tp_commits",
        # simulated network
        "network.delivered",
        "network.dropped",
        "network.latency_us",
        "network.sent",
        # raft replication
        "raft.apply_batch_commands",
        "raft.elections",
        "raft.heartbeats",
        "raft.replication_lag",
        # stateless router tier
        "router.cached_epoch",
        "router.refreshes",
        "router.retries_exhausted",
        "router.routes",
        "router.stale_retries",
        # shard-map metadata service
        "shardmap.delta_fetches",
        "shardmap.epoch",
        "shardmap.full_fetches",
        "shardmap.shards",
        # online resharding
        "reshard.duration_us",
        "reshard.merges",
        "reshard.migrations",
        "reshard.rows_moved",
        "reshard.splits",
        "reshard.tail_writes",
        # morsel-driven parallel scan pipeline
        "parallel.merge_ns",
        "parallel.morsels",
        "parallel.tasks",
        # compressed (code-space) execution
        "exec.code_space_distincts",
        "exec.code_space_groups",
        "exec.code_space_joins",
        "exec.morsel_partials",
        "exec.morsel_probes",
        # predicate-aware column scans
        "scan.code_space_filters",
        "scan.segments_pruned",
        "scan.segments_scanned",
        # parameterized plan cache
        "plan_cache.entries",
        "plan_cache.evictions",
        "plan_cache.hits",
        "plan_cache.invalidations",
        "plan_cache.misses",
        # snapshot-scan cache
        "scan_cache.bytes",
        "scan_cache.entries",
        "scan_cache.evictions",
        "scan_cache.hits",
        "scan_cache.invalidations",
        "scan_cache.misses",
        # session tier (front door)
        "session.admitted",
        "session.completed",
        "session.delayed",
        "session.group_commit_size",
        "session.latency_us",
        "session.opened",
        "session.queue_depth",
        "session.shed",
        # schedulers
        "scheduler.freshness_lag",
        "scheduler.olap_slots",
        "scheduler.oltp_slots",
        "scheduler.rounds",
        "scheduler.syncs",
        # data synchronization
        "sync.batch_rows",
        "sync.delta_merge.events",
        "sync.delta_merge.l1_to_l2",
        "sync.delta_merge.l2_to_main",
        "sync.delta_merge.rows",
        "sync.log_merge.events",
        "sync.log_merge.rows",
        "sync.merge_latency_us",
        "sync.propagation.events",
        "sync.rebuild.events",
        "sync.rebuild.rows",
        # commit paths (placement-aware cluster commit routing)
        "commit.participant_fanout",
        "commit.piggybacked",
        "commit.single_shard",
        "commit.two_phase",
        # two-phase commit
        "twopc.aborts",
        "twopc.commits",
        "twopc.participants",
        "twopc.prepares",
        # transactions
        "txn.aborts",
        "txn.commits",
        "txn.conflicts",
        # write-ahead log
        "wal.appends",
        "wal.fsyncs",
        "wal.group_commit_batch",
        # runtime sanitizer (repro.analysis.sanitizer)
        "sanitizer.deliveries_checked",
        "sanitizer.reads_checked",
        "sanitizer.violations",
    }
)

#: Every tracer span name opened by src/repro.
REGISTERED_SPANS: frozenset[str] = frozenset(
    {
        "engine.query",
        "engine.sync",
    }
)
