"""A process-wide metrics registry for the testbed's observability layer.

Every subsystem that used to keep private tallies (``WriteAheadLog.fsyncs``,
``SimNetwork.sent`` ...) now *also* reports into one shared
:class:`MetricsRegistry`, keyed by dotted ``component.name`` series names
with optional labels (``wal.fsyncs{engine=row+imcs}``).  The benches
snapshot the registry per measured engine, which is what turns a Table 1
headline number into a per-component cost breakdown (WAL fsyncs, network
messages, merge events, ...) — the "why" behind each cell.

Three instrument kinds:

* **Counter** — monotonically increasing count (appends, fsyncs, drops);
* **Gauge** — last-written value (backlog depth, replication lag);
* **Histogram** — sample distribution summarized as count/mean/p50/p95/
  p99/max (per-link latency, group-commit batch sizes).

Hot paths hold the series object returned by :meth:`MetricsRegistry.counter`
(one attribute bump per event); occasional reporters can use the
``inc``/``set_gauge``/``observe`` conveniences that look the series up by
name each call.
"""

from __future__ import annotations

import re
from ..common.metrics import LatencyRecorder

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

SeriesKey = tuple[str, tuple[tuple[str, str], ...]]


def _series_key(name: str, labels: dict[str, str] | None) -> SeriesKey:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must be dotted component.name "
            "(lowercase letters, digits, underscores)"
        )
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def render_key(key: SeriesKey) -> str:
    """``name`` or ``name{k=v,k2=v2}`` — the snapshot's flat key format."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (got {amount})")
        self.value += amount


class Gauge:
    """A last-value-wins series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A sample distribution (backed by the shared LatencyRecorder)."""

    __slots__ = ("_recorder",)

    def __init__(self) -> None:
        self._recorder = LatencyRecorder()

    def observe(self, value: float) -> None:
        self._recorder.record(value)

    @property
    def count(self) -> int:
        return self._recorder.count

    def summary(self) -> dict[str, float]:
        r = self._recorder
        return {
            "count": float(r.count),
            "mean": r.mean(),
            "p50": r.p50(),
            "p95": r.p95(),
            "p99": r.p99(),
            "max": r.max(),
        }


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by ``component.name``."""

    def __init__(self) -> None:
        self._counters: dict[SeriesKey, Counter] = {}
        self._gauges: dict[SeriesKey, Gauge] = {}
        self._histograms: dict[SeriesKey, Histogram] = {}

    # --------------------------------------------------------- get-or-create

    def counter(self, name: str, **labels: str) -> Counter:
        key = _series_key(name, labels)
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter()
        return series

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _series_key(name, labels)
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge()
        return series

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = _series_key(name, labels)
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram()
        return series

    # --------------------------------------------------------- conveniences

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.histogram(name, **labels).observe(value)

    # --------------------------------------------------------- reads

    def counter_total(self, name: str) -> float:
        """Sum of one counter across every label combination."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def series_names(self) -> set[str]:
        return {
            n
            for store in (self._counters, self._gauges, self._histograms)
            for (n, _) in store
        }

    def snapshot(self) -> dict:
        """A plain-dict view: flat rendered keys per instrument kind."""
        return {
            "counters": {
                render_key(k): c.value for k, c in sorted(self._counters.items())
            },
            "gauges": {
                render_key(k): g.value for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                render_key(k): h.summary()
                for k, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every series *in place*, so components holding bound
        series objects (the hot-path pattern) stay connected across the
        per-bench snapshot/reset cycle instead of counting into orphans."""
        for counter in self._counters.values():
            counter.value = 0.0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram._recorder = LatencyRecorder()


#: The process-wide registry every instrumented subsystem defaults to.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
