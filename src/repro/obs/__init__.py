"""Unified observability: process-wide metrics + sim-time tracing.

The substrate every perf-minded PR measures itself against.  See
:mod:`repro.obs.registry` for the metric model and
:mod:`repro.obs.trace` for span semantics.
"""

from .names import REGISTERED_METRICS, REGISTERED_SPANS
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_key,
    set_registry,
)
from .trace import SimTracer, SpanEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTERED_METRICS",
    "REGISTERED_SPANS",
    "SimTracer",
    "SpanEvent",
    "get_registry",
    "render_key",
    "set_registry",
]
