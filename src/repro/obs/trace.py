"""Sim-time tracing: nestable spans measured on a :class:`SimClock`.

A :class:`SimTracer` wraps regions of work (`engine.query`, `engine.sync`,
`wal.force` ...) in spans whose start/end timestamps come from the shared
simulated clock, so a bench can ask *where the simulated microseconds
went* without wall-clock noise.  Spans nest (a sync span inside a query
span records its parent and depth) and the whole trace exports as a flat
event log ordered by completion.

Tracing is **off by default** and a disabled tracer is a no-op: it never
advances the clock — spans only *read* it — and records nothing, so
instrumented code paths charge zero extra simulated time when the bench
has not opted in.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..common.clock import SimClock


@dataclass(frozen=True)
class SpanEvent:
    """One completed span, flattened for export."""

    name: str
    start_us: float
    end_us: float
    depth: int
    parent: str | None
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "duration_us": self.duration_us,
            "depth": self.depth,
            "parent": self.parent,
            **dict(self.attrs),
        }


class SimTracer:
    """Collects nested spans against one simulated clock."""

    def __init__(self, clock: SimClock, enabled: bool = False):
        self._clock = clock
        self.enabled = enabled
        self._stack: list[str] = []
        self._events: list[SpanEvent] = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """Measure one region of simulated time; nests freely."""
        if not self.enabled:
            yield
            return
        parent = self._stack[-1] if self._stack else None
        depth = len(self._stack)
        self._stack.append(name)
        start = self._clock.now_us()
        try:
            yield
        finally:
            self._stack.pop()
            self._events.append(
                SpanEvent(
                    name=name,
                    start_us=start,
                    end_us=self._clock.now_us(),
                    depth=depth,
                    parent=parent,
                    attrs=tuple(sorted(attrs.items())),
                )
            )

    # --------------------------------------------------------------- export

    def events(self) -> tuple[SpanEvent, ...]:
        return tuple(self._events)

    def export(self) -> list[dict]:
        """The flat event log (completion order) as plain dicts."""
        return [event.to_dict() for event in self._events]

    def total_us(self, name: str) -> float:
        return sum(e.duration_us for e in self._events if e.name == name)

    def clear(self) -> None:
        self._events.clear()
