"""Query AST: expressions, aggregates, and the logical query shape.

Expressions evaluate vectorized over a dict of NumPy column arrays —
the same "SIMD-style" evaluation the survey attributes to columnar AP
engines.  The AST is deliberately small but covers the CH-benCHmark
query shapes: scans, arithmetic, equi-joins, grouping, aggregation,
ordering, limits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..common.errors import QueryError
from ..common.predicate import Predicate


class Expr:
    """A scalar expression over column arrays."""

    def evaluate(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        raise NotImplementedError

    def display(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str

    def evaluate(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        try:
            return arrays[self.name]
        except KeyError:
            raise QueryError(f"column {self.name!r} not bound") from None

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def display(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def evaluate(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        n = len(next(iter(arrays.values()))) if arrays else 1
        return np.full(n, self.value)

    def referenced_columns(self) -> set[str]:
        return set()

    def display(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Arith(Expr):
    """left <op> right for op in + - * /."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise QueryError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        lhs = self.left.evaluate(arrays)
        rhs = self.right.evaluate(arrays)
        if self.op == "+":
            return lhs + rhs
        if self.op == "-":
            return lhs - rhs
        if self.op == "*":
            return lhs * rhs
        with np.errstate(divide="ignore", invalid="ignore"):
            return lhs / rhs

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def display(self) -> str:
        return f"({self.left.display()} {self.op} {self.right.display()})"


class AggFunc(enum.Enum):
    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class Aggregate(Expr):
    """An aggregate call; evaluated by the group-aggregate operator."""

    func: AggFunc
    arg: Expr | None = None  # None only for COUNT(*)

    def __post_init__(self) -> None:
        if self.arg is None and self.func is not AggFunc.COUNT:
            raise QueryError(f"{self.func.value} requires an argument")

    def evaluate(self, arrays: Mapping[str, np.ndarray]) -> np.ndarray:
        raise QueryError("aggregates are evaluated by the aggregation operator")

    def referenced_columns(self) -> set[str]:
        return self.arg.referenced_columns() if self.arg is not None else set()

    def display(self) -> str:
        inner = self.arg.display() if self.arg is not None else "*"
        return f"{self.func.value}({inner})"

    def compute(self, values: np.ndarray | None, count: int) -> Any:
        """Reduce pre-evaluated argument values for one group."""
        if self.func is AggFunc.COUNT:
            return count
        assert values is not None
        if len(values) == 0:
            return None
        if self.func is AggFunc.SUM:
            return values.sum().item()
        if self.func is AggFunc.AVG:
            return values.mean().item()
        if self.func is AggFunc.MIN:
            return values.min().item()
        return values.max().item()


def is_aggregate(expr: Expr) -> bool:
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, Arith):
        return is_aggregate(expr.left) or is_aggregate(expr.right)
    return False


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None

    @property
    def output_name(self) -> str:
        return self.alias if self.alias is not None else self.expr.display()


@dataclass(frozen=True)
class JoinCondition:
    """Equi-join ``left_column = right_column`` (column names are unique
    across the testbed's schemas, so no table qualification is needed)."""

    left_column: str
    right_column: str


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class HavingCondition:
    """``expr <op> literal`` evaluated per group after aggregation."""

    expr: Expr
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in ("=", "!=", "<", "<=", ">", ">="):
            raise QueryError(f"unknown HAVING operator {self.op!r}")

    def test(self, computed: Any) -> bool:
        if computed is None:
            return False
        import operator as _op

        table = {
            "=": _op.eq, "!=": _op.ne, "<": _op.lt,
            "<=": _op.le, ">": _op.gt, ">=": _op.ge,
        }
        return bool(table[self.op](computed, self.value))


@dataclass
class Query:
    """A logical query over one or more tables."""

    tables: list[str]
    select: list[SelectItem]
    where: Predicate
    joins: list[JoinCondition] = field(default_factory=list)
    group_by: list[str] = field(default_factory=list)
    having: list[HavingCondition] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
    #: Number of ``?`` placeholders in WHERE; > 0 marks a prepared-
    #: statement template whose predicate must be bound before running.
    param_count: int = 0

    def has_aggregates(self) -> bool:
        return any(is_aggregate(item.expr) for item in self.select)

    def referenced_columns(self) -> set[str]:
        cols: set[str] = set(self.group_by)
        cols |= self.where.referenced_columns()
        for item in self.select:
            cols |= item.expr.referenced_columns()
        for join in self.joins:
            cols.add(join.left_column)
            cols.add(join.right_column)
        for having in self.having:
            cols |= having.expr.referenced_columns()
        for order in self.order_by:
            cols |= order.expr.referenced_columns()
        return cols


@dataclass
class QueryResult:
    """Materialized query output."""

    columns: list[str]
    rows: list[tuple]
    sim_elapsed_us: float = 0.0

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a 1x1 result (aggregate convenience)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, have {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]
