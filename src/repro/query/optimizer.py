"""Cost-based planning: hybrid row/column access paths + join ordering.

Implements the "hybrid row/column scan" query-optimization technique of
Table 2: for every table in a query the planner prices a row scan, an
index lookup (when a usable index exists), and a column scan against
the engine's cost model and statistics, then picks the cheapest — so an
SPJ query can combine "a row-based index scan and a complete
column-based scan" exactly as §2.2(4) describes.  Join order is chosen
greedily by estimated cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.cost import CostModel
from ..common.errors import PlanningError
from ..common.predicate import ALWAYS_TRUE, And, Comparison, Predicate, TruePredicate
from .access import AccessPath, Catalog, TableAccess
from .ast import Query


@dataclass
class PathChoice:
    """One candidate access path with its estimated cost."""

    path: AccessPath
    cost_us: float
    estimated_rows: int


@dataclass
class ScanPlan:
    table: str
    path: AccessPath
    columns: list[str]
    predicate: Predicate
    estimated_rows: int
    cost_us: float
    candidates: list[PathChoice] = field(default_factory=list)


@dataclass
class JoinStep:
    scan: ScanPlan
    left_column: str   # bound in the rows accumulated so far
    right_column: str  # bound in scan's table


@dataclass
class PhysicalPlan:
    query: Query
    base: ScanPlan
    joins: list[JoinStep]
    estimated_cost_us: float
    #: Equi-join conditions between table pairs already connected by an
    #: earlier join step; applied as post-join equality filters (how
    #: composite-key joins like TPC-C's (w_id, d_id, o_id) execute).
    residual_equalities: list[tuple[str, str]] = field(default_factory=list)

    def scan_for(self, table: str) -> ScanPlan:
        if self.base.table == table:
            return self.base
        for step in self.joins:
            if step.scan.table == table:
                return step.scan
        raise PlanningError(f"table {table!r} not in plan")

    def explain(self) -> str:
        lines = [
            f"scan {self.base.table} via {self.base.path.value} "
            f"(~{self.base.estimated_rows} rows, {self.base.cost_us:.0f}us)"
        ]
        for step in self.joins:
            lines.append(
                f"  hash join {step.left_column} = {step.right_column} with "
                f"{step.scan.table} via {step.scan.path.value} "
                f"(~{step.scan.estimated_rows} rows, {step.scan.cost_us:.0f}us)"
            )
        lines.append(f"estimated total: {self.estimated_cost_us:.0f}us")
        return "\n".join(lines)


def split_conjuncts(predicate: Predicate) -> list[Predicate]:
    """Flatten top-level ANDs into a conjunct list."""
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for child in predicate.children:
            out.extend(split_conjuncts(child))
        return out
    return [predicate]


def conjoin(conjuncts: list[Predicate]) -> Predicate:
    if not conjuncts:
        return ALWAYS_TRUE
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(conjuncts)


class Planner:
    """Builds physical plans against a catalog of TableAccess adapters."""

    def __init__(
        self,
        catalog: Catalog,
        cost: CostModel | None = None,
        force_path: AccessPath | None = None,
    ):
        self._catalog = catalog
        self._cost = cost or CostModel()
        #: When set, every scan uses this path (for ablation benches and
        #: for engines that only have one side, e.g. pure column scan).
        self.force_path = force_path

    # ------------------------------------------------------------- resolution

    def _adapter(self, table: str) -> TableAccess:
        try:
            return self._catalog[table]
        except KeyError:
            raise PlanningError(f"unknown table {table!r}") from None

    def _owner_of(self, column: str, tables: list[str]) -> str:
        owners = [
            t for t in tables if self._adapter(t).schema().has_column(column)
        ]
        if not owners:
            raise PlanningError(f"column {column!r} not found in {tables}")
        if len(owners) > 1:
            raise PlanningError(
                f"column {column!r} is ambiguous across {owners}"
            )
        return owners[0]

    def _predicates_by_table(self, query: Query) -> dict[str, list[Predicate]]:
        by_table: dict[str, list[Predicate]] = {t: [] for t in query.tables}
        for conjunct in split_conjuncts(query.where):
            cols = conjunct.referenced_columns()
            owners = {self._owner_of(c, query.tables) for c in cols}
            if len(owners) == 1:
                by_table[owners.pop()].append(conjunct)
            elif len(owners) == 0:
                continue  # constant-true style conjunct
            else:
                raise PlanningError(
                    "non-join predicates spanning tables are not supported: "
                    f"{conjunct!r}"
                )
        return by_table

    def scan_predicates(self, query: Query) -> dict[str, Predicate]:
        """Per-table conjunction of the single-table WHERE conjuncts.

        The exact split :meth:`plan` pushes into each ScanPlan.  The
        split is structural (value-independent), so calling this on a
        parameter *template* yields template predicates that bind 1:1
        against the ScanPlans of a plan built from any binding of the
        same statement — the plan cache's rebinding contract.
        """
        return {
            table: conjoin(conjuncts)
            for table, conjuncts in self._predicates_by_table(query).items()
        }

    # ------------------------------------------------------------- costing

    def price_paths(
        self,
        table: str,
        columns_needed: list[str],
        predicate: Predicate,
    ) -> list[PathChoice]:
        """Price every available path for this (table, predicate)."""
        adapter = self._adapter(table)
        stats = adapter.stats()
        cost = self._cost
        n = max(stats.row_count, 1)
        selectivity = stats.selectivity(predicate)
        matching = max(1, int(round(n * selectivity)))
        needed = set(columns_needed) | predicate.referenced_columns()
        n_cols = max(len(needed), 1)
        available = adapter.available_paths()
        choices: list[PathChoice] = []
        if AccessPath.ROW_SCAN in available:
            choices.append(
                PathChoice(
                    AccessPath.ROW_SCAN,
                    cost_us=n * cost.row_scan_per_row_us,
                    estimated_rows=matching,
                )
            )
        if AccessPath.INDEX_LOOKUP in available and self._has_sarg(
            adapter, predicate
        ):
            choices.append(
                PathChoice(
                    AccessPath.INDEX_LOOKUP,
                    cost_us=cost.index_lookup_us
                    + matching * (cost.index_scan_per_row_us + cost.row_point_read_us),
                    estimated_rows=matching,
                )
            )
        if AccessPath.COLUMN_SCAN in available:
            scan_us = n * n_cols * cost.column_scan_per_value_us
            # Zone-map pruning makes the column side cheaper than its
            # nominal per-value price; adapters that can bound the
            # predicate against their segment zone maps report the
            # fraction of rows in prunable segments (optional protocol).
            hint_fn = getattr(adapter, "scan_pruning_hint", None)
            if hint_fn is not None:
                pruned = min(max(float(hint_fn(predicate)), 0.0), 1.0)
                if pruned > 0.0:
                    scan_us = max(
                        scan_us * (1.0 - pruned), cost.zone_map_check_us
                    )
            # Compressed execution discount: columns the adapter can
            # hand off as dictionary codes skip the per-row materialize
            # at the scan boundary (they pay the cheaper code gather;
            # decode is deferred to result emit on far fewer rows).
            materialize_us = cost.column_materialize_per_row_us
            hint_fn = getattr(adapter, "code_space_hint", None)
            if hint_fn is not None:
                frac = min(max(float(hint_fn(columns_needed)), 0.0), 1.0)
                if frac > 0.0:
                    materialize_us = (
                        materialize_us * (1.0 - frac)
                        + frac * cost.code_gather_per_value_us
                    )
            choices.append(
                PathChoice(
                    AccessPath.COLUMN_SCAN,
                    cost_us=scan_us + matching * materialize_us,
                    estimated_rows=matching,
                )
            )
        if not choices:
            raise PlanningError(f"table {table!r} exposes no access path")
        return sorted(choices, key=lambda c: c.cost_us)

    @staticmethod
    def _has_sarg(adapter: TableAccess, predicate: Predicate) -> bool:
        """Is there an indexable (search-argument) conjunct?"""
        schema = adapter.schema()
        indexed = set(schema.primary_key)
        # Adapters may expose secondary indexes (optional protocol).
        extra = getattr(adapter, "indexed_columns", None)
        if extra is not None:
            indexed |= set(extra())
        for conjunct in split_conjuncts(predicate):
            if isinstance(conjunct, Comparison) and conjunct.op == "=":
                if conjunct.column in indexed:
                    return True
        return False

    def _plan_scan(
        self,
        table: str,
        columns_needed: list[str],
        predicate: Predicate,
    ) -> ScanPlan:
        choices = self.price_paths(table, columns_needed, predicate)
        if self.force_path is not None:
            forced = [c for c in choices if c.path is self.force_path]
            if not forced:
                raise PlanningError(
                    f"path {self.force_path.value} unavailable for {table!r}"
                )
            best = forced[0]
        else:
            best = choices[0]
        return ScanPlan(
            table=table,
            path=best.path,
            columns=columns_needed,
            predicate=predicate,
            estimated_rows=best.estimated_rows,
            cost_us=best.cost_us,
            candidates=choices,
        )

    # ------------------------------------------------------------- planning

    def plan(self, query: Query) -> PhysicalPlan:
        for table in query.tables:
            self._adapter(table)  # validate early
        by_table = self._predicates_by_table(query)
        referenced = query.referenced_columns()
        referenced.discard("*")
        # ORDER BY may reference output aliases, which no table owns.
        aliases = {item.alias for item in query.select if item.alias is not None}
        for column in referenced - aliases:
            self._owner_of(column, query.tables)  # raises on unknown/ambiguous
        # Columns each table must produce: *post-scan* referenced
        # columns it owns.  WHERE-only columns are deliberately absent —
        # adapters apply the scan predicate themselves, so a column that
        # appears only in WHERE never needs to be materialized into the
        # batch (late materialization across the scan boundary).
        post_scan: set[str] = set(query.group_by)
        for item in query.select:
            post_scan |= item.expr.referenced_columns()
        for join in query.joins:
            post_scan.add(join.left_column)
            post_scan.add(join.right_column)
        for having in query.having:
            post_scan |= having.expr.referenced_columns()
        for order in query.order_by:
            post_scan |= order.expr.referenced_columns()
        post_scan.discard("*")
        cols_by_table: dict[str, list[str]] = {}
        for table in query.tables:
            schema = self._adapter(table).schema()
            if any(item.expr.display() == "*" for item in query.select):
                cols = schema.column_names
            else:
                cols = sorted(c for c in post_scan if schema.has_column(c))
            cols_by_table[table] = cols
        scans = {
            table: self._plan_scan(
                table, cols_by_table[table], conjoin(by_table[table])
            )
            for table in query.tables
        }
        if len(query.tables) == 1:
            base = scans[query.tables[0]]
            return PhysicalPlan(query, base, [], base.cost_us)
        return self._order_joins(query, scans)

    def _order_joins(
        self, query: Query, scans: dict[str, ScanPlan]
    ) -> PhysicalPlan:
        """Greedy join ordering: start at the most selective scan, then
        repeatedly attach the cheapest join-connected table."""
        edges: list[tuple[str, str, str, str]] = []  # (t1, c1, t2, c2)
        for join in query.joins:
            t1 = self._owner_of(join.left_column, query.tables)
            t2 = self._owner_of(join.right_column, query.tables)
            if t1 == t2:
                raise PlanningError(
                    f"self-join condition {join} is not supported"
                )
            edges.append((t1, join.left_column, t2, join.right_column))
        base_table = min(query.tables, key=lambda t: scans[t].estimated_rows)
        joined = {base_table}
        steps: list[JoinStep] = []
        used_edges: set[int] = set()
        total_cost = scans[base_table].cost_us
        remaining = set(query.tables) - joined
        while remaining:
            candidates = []
            for i, (t1, c1, t2, c2) in enumerate(edges):
                if i in used_edges:
                    continue
                if t1 in joined and t2 in remaining:
                    candidates.append((scans[t2].estimated_rows, t2, c1, c2, i))
                elif t2 in joined and t1 in remaining:
                    candidates.append((scans[t1].estimated_rows, t1, c2, c1, i))
            if not candidates:
                raise PlanningError(
                    f"tables {sorted(remaining)} are not join-connected"
                )
            candidates.sort(key=lambda c: (c[0], c[1]))
            _rows, table, left_col, right_col, edge_i = candidates[0]
            used_edges.add(edge_i)
            steps.append(JoinStep(scans[table], left_col, right_col))
            total_cost += scans[table].cost_us
            total_cost += (
                scans[table].estimated_rows * self._cost.hash_build_per_row_us
            )
            joined.add(table)
            remaining.discard(table)
        # Every unused edge connects two already-joined tables: apply it
        # as a post-join equality filter.
        residual = [
            (edges[i][1], edges[i][3])
            for i in range(len(edges))
            if i not in used_edges
        ]
        return PhysicalPlan(
            query, scans[base_table], steps, total_cost, residual_equalities=residual
        )
