"""Table statistics and selectivity estimation.

The estimator deliberately makes the *uniformity and independence*
assumptions the survey's §2.4 criticizes ("such methods are problematic
for correlated and skewed data") — the learned access-path chooser in
:mod:`repro.query.learned_optimizer` exists precisely to beat it on
skewed inputs, and the open-problems bench measures that gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..common.predicate import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from ..common.types import Row, Schema


@dataclass
class ColumnStats:
    ndv: int
    min_value: Any = None
    max_value: Any = None

    @classmethod
    def from_values(cls, values: list) -> "ColumnStats":
        non_null = [v for v in values if v is not None]
        if not non_null:
            return cls(ndv=0)
        ndv = len(set(non_null))
        orderable = all(isinstance(v, (int, float)) for v in non_null)
        if orderable:
            return cls(ndv=ndv, min_value=min(non_null), max_value=max(non_null))
        return cls(ndv=ndv)


@dataclass
class TableStats:
    row_count: int
    columns: dict[str, ColumnStats]

    @classmethod
    def from_rows(cls, schema: Schema, rows: list[Row]) -> "TableStats":
        columns = {}
        for i, col in enumerate(schema.columns):
            columns[col.name] = ColumnStats.from_values([r[i] for r in rows])
        return cls(row_count=len(rows), columns=columns)

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "TableStats":
        columns = {}
        n = 0
        for name, arr in arrays.items():
            n = len(arr)
            ndv = len(np.unique(arr)) if len(arr) else 0
            if arr.dtype != object and len(arr):
                columns[name] = ColumnStats(
                    ndv=ndv, min_value=arr.min().item(), max_value=arr.max().item()
                )
            else:
                columns[name] = ColumnStats(ndv=ndv)
        return cls(row_count=n, columns=columns)

    def empty(self) -> bool:
        return self.row_count == 0

    # ------------------------------------------------------------- estimates

    def selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of rows matching (uniform + independent)."""
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate)
        if isinstance(predicate, Between):
            return self._range_selectivity(
                predicate.column, predicate.low, predicate.high
            )
        if isinstance(predicate, InList):
            stats = self.columns.get(predicate.column)
            if stats is None or stats.ndv == 0:
                return 0.5
            return min(1.0, len(predicate.values) / stats.ndv)
        if isinstance(predicate, And):
            # Independence assumption: multiply child selectivities.
            sel = 1.0
            for child in predicate.children:
                sel *= self.selectivity(child)
            return sel
        if isinstance(predicate, Or):
            sel = 0.0
            for child in predicate.children:
                child_sel = self.selectivity(child)
                sel = sel + child_sel - sel * child_sel
            return sel
        if isinstance(predicate, Not):
            return 1.0 - self.selectivity(predicate.child)
        return 0.5

    def _comparison_selectivity(self, cmp: Comparison) -> float:
        stats = self.columns.get(cmp.column)
        if stats is None or stats.ndv == 0:
            return 0.5
        if cmp.op == "=":
            return 1.0 / stats.ndv
        if cmp.op == "!=":
            return 1.0 - 1.0 / stats.ndv
        if stats.min_value is None or stats.max_value is None:
            return 1.0 / 3.0  # classic System R default for ranges
        span = stats.max_value - stats.min_value
        if span <= 0:
            return 1.0
        if cmp.op in ("<", "<="):
            frac = (cmp.value - stats.min_value) / span
        else:
            frac = (stats.max_value - cmp.value) / span
        return float(min(1.0, max(0.0, frac)))

    def _range_selectivity(self, column: str, low: Any, high: Any) -> float:
        stats = self.columns.get(column)
        if stats is None or stats.min_value is None or stats.max_value is None:
            return 1.0 / 3.0
        span = stats.max_value - stats.min_value
        if span <= 0:
            return 1.0
        lo = max(low, stats.min_value)
        hi = min(high, stats.max_value)
        if hi < lo:
            return 0.0
        return float(min(1.0, (hi - lo) / span))

    def estimate_matching_rows(self, predicate: Predicate) -> int:
        return int(round(self.row_count * self.selectivity(predicate)))
