"""Column selection for HTAP (Table 2's first query-optimization row).

Decides which columns to load from the primary (row) store into the
in-memory column store under a memory budget:

* :class:`HeatmapColumnSelector` — the Oracle-21c/Heatwave-style
  baseline from the survey: rank columns by (decayed) historical access
  frequency and greedily pack the budget.  "Expensive and inflexible":
  it only reacts after the workload has already shifted.
* :class:`LearnedColumnSelector` — the §2.4 open-problem prototype: a
  lightweight online learner that models per-column access as an
  exponentially-weighted moving estimate *plus* a first-order workload
  trend (rising columns get boosted before they dominate), so it adapts
  to shifts faster without executing the whole workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ColumnUsage:
    """Rolling access statistics for one (table, column)."""

    hits: float = 0.0          # decayed frequency
    previous_hits: float = 0.0  # frequency one window ago (for trend)
    total: int = 0


class AccessTracker:
    """Records which columns each query touched, in windows."""

    def __init__(self, decay: float = 0.5):
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self._decay = decay
        self._usage: dict[tuple[str, str], ColumnUsage] = {}
        self._window: dict[tuple[str, str], int] = {}
        self.windows_closed = 0

    def record_query(self, table: str, columns: set[str]) -> None:
        # Sorted so the usage/window dicts build in a deterministic
        # insertion order (their iteration breaks selection ties).
        for col in sorted(columns):
            key = (table, col)
            self._window[key] = self._window.get(key, 0) + 1
            usage = self._usage.setdefault(key, ColumnUsage())
            usage.total += 1

    def close_window(self) -> None:
        """Fold the current window into the decayed estimates."""
        for key, usage in self._usage.items():
            fresh = self._window.get(key, 0)
            usage.previous_hits = usage.hits
            usage.hits = self._decay * usage.hits + (1.0 - self._decay) * fresh
        self._window.clear()
        self.windows_closed += 1

    def usage(self) -> dict[tuple[str, str], ColumnUsage]:
        return self._usage


@dataclass
class SelectionDecision:
    chosen: list[tuple[str, str]]
    budget_bytes: int
    used_bytes: int
    scores: dict = field(default_factory=dict)


class HeatmapColumnSelector:
    """Frequency-ranked greedy packing (the historical-statistics baseline)."""

    def __init__(self, tracker: AccessTracker):
        self._tracker = tracker

    def score(self, usage: ColumnUsage) -> float:
        return usage.hits

    def select(
        self,
        column_sizes: dict[tuple[str, str], int],
        budget_bytes: int,
    ) -> SelectionDecision:
        scores = {
            key: self.score(usage)
            for key, usage in self._tracker.usage().items()
            if key in column_sizes
        }
        ranked = sorted(
            scores, key=lambda k: (scores[k] / max(column_sizes[k], 1), scores[k]),
            reverse=True,
        )
        chosen: list[tuple[str, str]] = []
        used = 0
        for key in ranked:
            if scores[key] <= 0:
                continue
            size = column_sizes[key]
            if used + size <= budget_bytes:
                chosen.append(key)
                used += size
        return SelectionDecision(
            chosen=chosen, budget_bytes=budget_bytes, used_bytes=used, scores=scores
        )


class LearnedColumnSelector(HeatmapColumnSelector):
    """Adds a first-order trend term so rising columns pre-load.

    score = hits + trend_weight * max(0, hits - previous_hits)

    The trend term is a deliberately tiny "learned" model (one feature,
    online updates, no training pass over the full workload) in the
    spirit of the lightweight methods §2.4 calls for.
    """

    def __init__(self, tracker: AccessTracker, trend_weight: float = 2.0):
        super().__init__(tracker)
        self.trend_weight = trend_weight

    def score(self, usage: ColumnUsage) -> float:
        trend = max(0.0, usage.hits - usage.previous_hits)
        return usage.hits + self.trend_weight * trend


def hit_rate(
    decision: SelectionDecision, queries: list[tuple[str, set[str]]]
) -> float:
    """Fraction of queries fully answerable from the selected columns
    (a miss forces row-based processing, the survey's noted downside)."""
    if not queries:
        return 1.0
    loaded = set(decision.chosen)
    hits = 0
    for table, columns in queries:
        if all((table, col) in loaded for col in columns):
            hits += 1
    return hits / len(queries)
