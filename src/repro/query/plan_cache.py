"""Parameterized plan cache for prepared statements.

The front-door session tier (ROADMAP item 2) sends the same handful of
statement shapes thousands of times with different parameters.  Real
engines parse and optimize such a statement once and re-execute the
cached physical plan per binding; this module reproduces that, keyed
like the :class:`~repro.query.scan_cache.ScanCache` on

    (statement text, parameter type signature, stats version)

* **statement text** — the SQL template with ``?`` placeholders is the
  fingerprint; two textually identical statements share one entry.
* **parameter type signature** — the tuple of bound Python types.  A
  binding of different types can flip comparison semantics (and which
  index is sargable), so it plans separately — the classic bind-peek
  cache split.
* **stats version** — the tuple of per-table :class:`StatsCache`
  epochs the plan was costed against.  Physically the epoch tuple is
  *validated at lookup* rather than hashed into the key: a hit must
  skip the parse step, and the referenced tables are only known after
  parsing.  Semantically it is the same fence — an entry is served
  only while every referenced table's statistics epoch is unchanged,
  so DDL-free writes that drift a table past its stats slack replan
  automatically (the epoch moves with the refresh).

Plans are built by **bind peeking**: the first execution's parameters
are bound into the WHERE clause and the bound query is planned (the
optimizer needs concrete values for selectivity).  The entry keeps the
*template* per-table predicates alongside the plan; a hit rebinds them
with the new parameters and grafts them onto the cached ScanPlans —
parse and optimization are skipped entirely.  Like real bind-peeked
plans, the cached access path may be suboptimal for wildly different
bindings; it is never incorrect (predicates are always rebound).

Engine write/merge paths invalidate eagerly through
:meth:`PlanCache.invalidate` (same contract as the scan cache): DDL
(``_register_adapter``) and sync/merge clear affected entries
immediately rather than waiting for the epoch fence to strand them.
Counts are exported as attributes and through the obs registry
(``plan_cache.hits`` / ``.misses`` / ``.evictions`` /
``.invalidations``, plus the ``plan_cache.entries`` gauge).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..common.predicate import (
    And,
    Between,
    Comparison,
    Param,
    Predicate,
    bind_predicate,
    collect_params,
)
from ..obs.registry import get_registry
from .optimizer import JoinStep, PhysicalPlan, ScanPlan

DEFAULT_CAPACITY = 128

#: statement text + parameter type signature.
PlanKey = tuple


def param_signature(params: Sequence[Any]) -> tuple[str, ...]:
    """The type fingerprint a binding plans under."""
    return tuple(type(p).__name__ for p in params)


def compile_binder(template: Predicate) -> Callable[[Sequence[Any]], Predicate]:
    """A closure rebinding ``template`` without walking it per call.

    The generic :func:`bind_predicate` visitor re-dispatches on node
    type for every execution; on the plan-cache hit path that walk *is*
    the per-call cost.  Here the walk happens once, at store time: each
    AND-ed conjunct compiles to either a constant (no Params) or a
    direct constructor call with the Param slot pre-resolved, and odd
    shapes (Params under OR/NOT/IN) fall back to the visitor.
    """
    conjuncts = (
        list(template.children) if isinstance(template, And) else [template]
    )
    steps: list[Callable[[Sequence[Any]], Predicate]] = []
    has_params = False
    for conjunct in conjuncts:
        if not collect_params(conjunct):
            steps.append(lambda params, c=conjunct: c)
            continue
        has_params = True
        if isinstance(conjunct, Comparison) and isinstance(
            conjunct.value, Param
        ):
            steps.append(
                lambda params, col=conjunct.column, op=conjunct.op, i=conjunct.value.index: Comparison(
                    col, op, params[i]
                )
            )
        elif isinstance(conjunct, Between):
            low, high = conjunct.low, conjunct.high
            steps.append(
                lambda params, col=conjunct.column, lo=low, hi=high: Between(
                    col,
                    params[lo.index] if type(lo) is Param else lo,
                    params[hi.index] if type(hi) is Param else hi,
                )
            )
        else:
            steps.append(lambda params, c=conjunct: bind_predicate(c, params))
    if not has_params:
        return lambda params: template
    if not isinstance(template, And):
        return steps[0]
    # Preserve the And wrapper even for one conjunct: the bound
    # predicate is part of downstream scan-cache keys, so it must be
    # structurally identical to what cold planning builds.
    return lambda params: And([step(params) for step in steps])


@dataclass
class CachedPlan:
    """One prepared statement's plan plus what rebinding needs."""

    plan: PhysicalPlan
    #: Per-table template predicate (Params in value slots), the same
    #: structural split the planner pushed into each ScanPlan.
    template_predicates: dict[str, Predicate]
    param_count: int
    #: Tables the statement references, in plan order.
    tables: tuple[str, ...]
    #: Per-table stats epochs the plan was costed against.
    stats_token: tuple[int, ...]

    def __post_init__(self) -> None:
        # Compile each table's template once; bind() then runs only the
        # per-conjunct constructors (no visitor walk on the hit path).
        self._binders = {
            table: compile_binder(template)
            for table, template in self.template_predicates.items()
        }

    def bind(self, params: Sequence[Any]) -> PhysicalPlan:
        """The cached plan with ``params`` grafted into every scan."""
        if self.param_count == 0:
            return self.plan
        plan = self.plan
        binders = self._binders
        b = plan.base
        base = ScanPlan(
            b.table,
            b.path,
            b.columns,
            binders[b.table](params),
            b.estimated_rows,
            b.cost_us,
            b.candidates,
        )
        joins = [
            JoinStep(
                ScanPlan(
                    s.table,
                    s.path,
                    s.columns,
                    binders[s.table](params),
                    s.estimated_rows,
                    s.cost_us,
                    s.candidates,
                ),
                step.left_column,
                step.right_column,
            )
            for step in plan.joins
            for s in (step.scan,)
        ]
        return PhysicalPlan(
            plan.query,
            base,
            joins,
            plan.estimated_cost_us,
            residual_equalities=plan.residual_equalities,
        )


class PlanCache:
    """LRU cache of bind-peeked physical plans, stats-epoch fenced."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        labels: Mapping[str, str] | None = None,
    ):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self._capacity = capacity
        self._entries: OrderedDict[PlanKey, CachedPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Misses caused specifically by a stats-epoch mismatch (the
        #: entry existed but its statistics moved) — the replan rate.
        self.stale_misses = 0
        labels = dict(labels or {})
        reg = get_registry()
        self._hit_counter = reg.counter("plan_cache.hits", **labels)
        self._miss_counter = reg.counter("plan_cache.misses", **labels)
        self._eviction_counter = reg.counter("plan_cache.evictions", **labels)
        self._invalidation_counter = reg.counter(
            "plan_cache.invalidations", **labels
        )
        self._entries_gauge = reg.gauge("plan_cache.entries", **labels)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------- access

    def lookup(
        self,
        statement: str,
        signature: tuple[str, ...],
        epoch_of: Callable[[str], int | None],
    ) -> CachedPlan | None:
        """The cached entry, or None; validates the stats fence.

        ``epoch_of`` maps a table name to its adapter's current
        statistics epoch (None when the adapter has no epoch protocol —
        stored tokens are always ints, so None never matches).  An
        entry whose recorded token no longer matches is dropped (its
        plan was costed against statistics that have since been
        replaced) and counts a stale miss.
        """
        key = (statement, signature)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._miss_counter.inc()
            return None
        current = tuple(epoch_of(t) for t in entry.tables)
        if current != entry.stats_token:
            del self._entries[key]
            self.misses += 1
            self.stale_misses += 1
            self._miss_counter.inc()
            self._entries_gauge.set(len(self._entries))
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._hit_counter.inc()
        return entry

    def store(
        self,
        statement: str,
        signature: tuple[str, ...],
        entry: CachedPlan,
    ) -> None:
        key = (statement, signature)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._eviction_counter.inc()
        self._entries_gauge.set(len(self._entries))

    # ------------------------------------------------------------- invalidation

    def invalidate(self, table: str | None = None) -> int:
        """Drop plans referencing ``table`` (or all); returns count.

        Correctness never depends on this being called — the stats-epoch
        fence in :meth:`lookup` already refuses entries whose statistics
        moved — but engine DDL and sync/merge paths call it so plans
        against replaced catalogs/images drop immediately.
        """
        if table is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [
                key
                for key, entry in self._entries.items()
                if table in entry.tables
            ]
            dropped = len(stale)
            for key in stale:
                del self._entries[key]
        if dropped:
            self.invalidations += dropped
            self._invalidation_counter.inc(dropped)
            self._entries_gauge.set(len(self._entries))
        return dropped

    # ------------------------------------------------------------- stats

    @property
    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale_misses": self.stale_misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
        }
