"""Slack-based statistics caching shared by engine table adapters.

Real engines refresh optimizer statistics periodically, not on every
commit.  Recomputing stats per query would bill the analytical path
for work no real system does, so adapters wrap their computation in a
:class:`StatsCache` that only refreshes once the table's change
counter has drifted past a slack threshold.

The slack is keyed off the *live* version delta, not the cached row
count alone: the drift since the cached point is an upper bound on how
many of the cached rows can still exist, so the allowed slack shrinks
as the drift grows (``delta <= fraction * (row_count - delta)``).
After a large delete/truncate this busts the slack immediately instead
of letting an oversized threshold — computed from a row count that no
longer exists — serve stale stats far past the intended drift.

Backward version movement (a counter reset after recovery) always
refreshes: a reset counter says nothing about drift, so the cached
entry cannot be trusted.

``epoch`` is the cache's externally visible version: it advances on
every refresh *and* on invalidation, and never moves while the cached
stats are served unchanged.  The parameterized plan cache keys plans
on it (a plan is valid exactly as long as the statistics it was costed
against), so every state change here must bump it — the htaplint
HTL002 store-layer rule machine-checks that invariant.
"""

from __future__ import annotations

from typing import Callable

from .statistics import TableStats


class StatsCache:
    """Caches a TableStats until the version counter drifts too far."""

    def __init__(
        self,
        compute: Callable[[], TableStats],
        min_slack: int = 2_000,
        slack_fraction: float = 0.5,
    ):
        self._compute = compute
        self._min_slack = min_slack
        self._slack_fraction = slack_fraction
        self._cached: TableStats | None = None
        self._version_at: int = -1
        self.refreshes = 0
        #: Version of the served statistics; bumps on refresh and on
        #: invalidate, so equal epochs imply identical stats objects.
        self.epoch = 0

    def _within_slack(self, version: int) -> bool:
        if version < self._version_at:
            return False  # counter went backward (reset/recovery)
        delta = version - self._version_at
        base = max(self._cached.row_count - delta, 0)
        slack = max(self._min_slack, int(base * self._slack_fraction))
        return delta <= slack

    def get(self, version: int) -> TableStats:
        """Return cached stats unless ``version`` drifted past the slack."""
        if self._cached is not None and self._within_slack(version):
            return self._cached
        self._cached = self._compute()
        self._version_at = version
        self.refreshes += 1
        self.epoch += 1
        return self._cached

    def invalidate(self) -> None:
        self._cached = None
        self._version_at = -1
        self.epoch += 1
