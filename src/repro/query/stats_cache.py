"""Slack-based statistics caching shared by engine table adapters.

Real engines refresh optimizer statistics periodically, not on every
commit.  Recomputing stats per query would bill the analytical path
for work no real system does, so adapters wrap their computation in a
:class:`StatsCache` that only refreshes once the table's change
counter has drifted past a slack threshold.
"""

from __future__ import annotations

from typing import Callable

from .statistics import TableStats


class StatsCache:
    """Caches a TableStats until the version counter drifts too far."""

    def __init__(
        self,
        compute: Callable[[], TableStats],
        min_slack: int = 2_000,
        slack_fraction: float = 0.5,
    ):
        self._compute = compute
        self._min_slack = min_slack
        self._slack_fraction = slack_fraction
        self._cached: TableStats | None = None
        self._version_at: int = -1
        self.refreshes = 0

    def get(self, version: int) -> TableStats:
        """Return cached stats unless ``version`` drifted past the slack."""
        if self._cached is not None:
            base = max(self._cached.row_count, 1)
            slack = max(self._min_slack, int(base * self._slack_fraction))
            if abs(version - self._version_at) <= slack:
                return self._cached
        self._cached = self._compute()
        self._version_at = version
        self.refreshes += 1
        return self._cached

    def invalidate(self) -> None:
        self._cached = None
        self._version_at = -1
