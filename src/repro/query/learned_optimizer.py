"""A learned access-path chooser (the §2.4 "Learned HTAP Query
Optimizer" open problem, prototyped).

The analytic cost model estimates selectivity under uniformity and
independence; on skewed or correlated data those estimates — and hence
the row-vs-column-vs-index choice — go wrong.  This module learns the
mapping from cheap query features to the *observed* best path:

* features: log table size, estimated selectivity, number of referenced
  columns, whether the predicate is an equality sarg;
* training: each executed query contributes (features, best path by
  measured simulated cost);
* inference: distance-weighted k-nearest-neighbours over normalized
  features, falling back to the analytic choice until enough samples
  accumulate.

It is intentionally tiny — the point the paper makes is that even a
lightweight learned mapping beats a misestimating analytic model, not
that one needs a deep network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..common.predicate import Comparison, Predicate
from .access import AccessPath
from .optimizer import Planner, split_conjuncts
from .statistics import TableStats


@dataclass(frozen=True)
class PathFeatures:
    log_rows: float
    est_selectivity: float
    n_columns: float
    has_eq_sarg: float

    def vector(self) -> tuple[float, ...]:
        return (
            self.log_rows / 20.0,  # normalize to ~[0, 1]
            self.est_selectivity,
            min(self.n_columns, 16.0) / 16.0,
            self.has_eq_sarg,
        )


def extract_features(
    stats: TableStats, predicate: Predicate, columns_needed: list[str]
) -> PathFeatures:
    has_eq = any(
        isinstance(c, Comparison) and c.op == "="
        for c in split_conjuncts(predicate)
    )
    needed = set(columns_needed) | predicate.referenced_columns()
    return PathFeatures(
        log_rows=math.log1p(max(stats.row_count, 0)),
        est_selectivity=stats.selectivity(predicate),
        n_columns=float(len(needed)),
        has_eq_sarg=1.0 if has_eq else 0.0,
    )


@dataclass
class TrainingSample:
    features: PathFeatures
    best_path: AccessPath
    observed_costs: dict


class LearnedAccessPathChooser:
    """k-NN over observed executions; analytic fallback when cold."""

    def __init__(self, planner: Planner, k: int = 3, min_samples: int = 5):
        self._planner = planner
        self.k = k
        self.min_samples = min_samples
        self.samples: list[TrainingSample] = []
        self.fallbacks = 0
        self.predictions = 0

    # ------------------------------------------------------------- training

    def observe(
        self,
        stats: TableStats,
        predicate: Predicate,
        columns_needed: list[str],
        measured_costs: dict,
    ) -> None:
        """Record the measured simulated cost of each candidate path."""
        if not measured_costs:
            return
        best = min(measured_costs, key=measured_costs.get)
        self.samples.append(
            TrainingSample(
                features=extract_features(stats, predicate, columns_needed),
                best_path=best,
                observed_costs=dict(measured_costs),
            )
        )

    # ------------------------------------------------------------- inference

    def choose(
        self,
        table: str,
        stats: TableStats,
        predicate: Predicate,
        columns_needed: list[str],
    ) -> AccessPath:
        available = {
            c.path for c in self._planner.price_paths(table, columns_needed, predicate)
        }
        if len(self.samples) < self.min_samples:
            self.fallbacks += 1
            return self._analytic_choice(table, columns_needed, predicate)
        self.predictions += 1
        query_vec = extract_features(stats, predicate, columns_needed).vector()
        scored = sorted(
            self.samples,
            key=lambda s: _distance(query_vec, s.features.vector()),
        )[: self.k]
        votes: dict[AccessPath, float] = {}
        for sample in scored:
            if sample.best_path not in available:
                continue
            weight = 1.0 / (
                1e-6 + _distance(query_vec, sample.features.vector())
            )
            votes[sample.best_path] = votes.get(sample.best_path, 0.0) + weight
        if not votes:
            self.fallbacks += 1
            return self._analytic_choice(table, columns_needed, predicate)
        return max(votes, key=votes.get)

    def _analytic_choice(
        self, table: str, columns_needed: list[str], predicate: Predicate
    ) -> AccessPath:
        return self._planner.price_paths(table, columns_needed, predicate)[0].path


def _distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))
