"""Reference TableAccess adapters.

:class:`DualStoreTableAccess` wires an MVCC row store and a column
store behind the planner's access-path abstraction — the minimal
"dual-store" table every HTAP architecture in the survey builds on.
Engines subclass or compose it to add their architecture's delta
patching; unit tests use it directly.
"""

from __future__ import annotations

import numpy as np

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.predicate import Comparison, Predicate, key_equality
from ..common.types import Row, Schema, rows_to_columns
from ..storage.column_store import ColumnStore
from ..storage.row_store import MVCCRowStore
from .access import AccessPath
from .optimizer import split_conjuncts
from .statistics import TableStats
from .stats_cache import StatsCache


class DualStoreTableAccess:
    """Row + column access over the same logical table."""

    def __init__(
        self,
        row_store: MVCCRowStore,
        column_store: ColumnStore | None,
        cost: CostModel | None = None,
        snapshot_ts_fn=None,
    ):
        self._rows = row_store
        self._columns = column_store
        self._cost = cost or CostModel()
        # Engines pass a callable yielding the current read timestamp;
        # default reads "latest" using a far-future snapshot.
        self._snapshot_ts_fn = snapshot_ts_fn or (lambda: 2**60)
        self._stats = StatsCache(self._compute_stats)

    # ------------------------------------------------------------- protocol

    def schema(self) -> Schema:
        return self._rows.schema

    def _compute_stats(self) -> TableStats:
        snapshot = self._rows.snapshot_rows(self._snapshot_ts_fn())
        return TableStats.from_rows(self.schema(), snapshot)

    def stats(self) -> TableStats:
        """Statistics refreshed lazily with slack (like real engines)."""
        return self._stats.get(self._rows.installs)

    def stats_epoch(self) -> int:
        """Plan-cache fence: version of the currently served statistics
        (optional protocol, see access.py)."""
        self.stats()
        return self._stats.epoch

    def available_paths(self) -> set[AccessPath]:
        paths = {AccessPath.ROW_SCAN, AccessPath.INDEX_LOOKUP}
        if self._columns is not None:
            paths.add(AccessPath.COLUMN_SCAN)
        return paths

    def indexed_columns(self) -> set[str]:
        """Secondary-index columns the planner may treat as sargable."""
        return set(self._rows._secondary)

    def cache_token(self, path=None):
        """Version token for the snapshot-scan cache.

        Pins the reader snapshot (MVCC isolation: different snapshot ⇒
        different cache key) plus every mutation counter that can change
        a scan's result on either path: row-store installs and version
        count (writes, vacuum) and the column store's write version.
        Returning None would disable caching for this table.
        """
        return (
            self._snapshot_ts_fn(),
            self._rows.installs,
            self._rows.version_count(),
            self._columns.mutations if self._columns is not None else -1,
        )

    def scan_rows(self, predicate: Predicate) -> list[Row]:
        return self._rows.scan(self._snapshot_ts_fn(), predicate)

    def scan_columns(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        if self._columns is None:
            rows = self.scan_rows(predicate)
            arrays = rows_to_columns(self.schema(), rows)
            return {name: arrays[name] for name in columns}
        result = self._columns.scan(columns, predicate, with_keys=False)
        return result.arrays

    def scan_columns_encoded(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        """Compressed-execution scan: code-space-safe dictionary columns
        come back as :class:`~repro.storage.code_batch.CodeColumn`
        (codes + dictionary) instead of decoded arrays; everything else
        is a plain array, exactly as :meth:`scan_columns` returns it."""
        if self._columns is None:
            return self.scan_columns(columns, predicate)
        result = self._columns.scan(columns, predicate, with_keys=False, encode=True)
        return result.arrays

    def scan_pruning_hint(self, predicate: Predicate) -> float:
        """Fraction of columnar rows in zone-map-prunable segments."""
        if self._columns is None:
            return 0.0
        return self._columns.pruned_row_fraction(predicate)

    def code_space_hint(self, columns: list[str]) -> float:
        """Fraction of ``columns`` an encoded scan serves as codes
        (planner discount hint, no charge)."""
        if self._columns is None:
            return 0.0
        return self._columns.encoded_column_fraction(columns)

    def index_lookup_rows(self, predicate: Predicate) -> list[Row] | None:
        schema = self.schema()
        snapshot_ts = self._snapshot_ts_fn()
        key = key_equality(predicate, schema.primary_key)
        if key is not None:
            row = self._rows.read(key, snapshot_ts)
            return [row] if row is not None and predicate.matches(row, schema) else []
        # Secondary index: any indexed equality column.
        for conjunct in split_conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op == "="
                and self._rows.has_index(conjunct.column)
            ):
                keys = self._rows.index_lookup_range(
                    conjunct.column, conjunct.value, conjunct.value
                )
                rows = []
                for k in keys:
                    row = self._rows.read(k, snapshot_ts)
                    if row is not None and predicate.matches(row, schema):
                        rows.append(row)
                return rows
        return None

    # ------------------------------------------------------------- plumbing

    @property
    def row_store(self) -> MVCCRowStore:
        return self._rows

    @property
    def column_store(self) -> ColumnStore | None:
        return self._columns

    def refresh_columns(self, snapshot_ts: Timestamp) -> None:
        """Rebuild the columnar image from the row store (test helper)."""
        if self._columns is None:
            return
        rows = self._rows.snapshot_rows(snapshot_ts)
        stale = [self.schema().key_of(r) for r in rows]
        self._columns.delete_keys(stale)
        if rows:
            self._columns.append_rows(rows, commit_ts=snapshot_ts)
