"""The vectorized query executor.

Operates on dict-of-NumPy-arrays batches: scans produce them (through
whichever access path the plan chose), equi-joins combine them, and
grouped aggregation reduces them with ``reduceat`` kernels — the
"aggregations over compressed data and SIMD instructions" style of
columnar AP execution the survey describes, expressed in NumPy.

Two execution modes share one plan shape:

* **vectorized** (the default): the join is a sort/searchsorted merge
  over factorized key codes, projection is columnar with late
  materialization (tuples are built only at the result boundary),
  DISTINCT is ``np.unique`` over packed key codes, and multi-key
  ORDER BY is ``np.lexsort`` with a top-k ``argpartition`` fast path
  when LIMIT is present;
* **scalar** (``vectorized=False``): the retained row-at-a-time
  reference implementation.  The perf microbench measures the
  vectorized kernels against it, and the differential tests prove the
  two produce identical results (including NULL and empty inputs).

Scans can additionally be served from an MVCC-aware
:class:`~repro.query.scan_cache.ScanCache` keyed on
(table, path, columns, predicate, snapshot/version token), which skips
the TP→AP re-materialization entirely when a batch for the same
snapshot is already resident.
"""

from __future__ import annotations

import operator as _operator
from typing import Any

import numpy as np

from ..common.cost import CostModel
from ..common.errors import QueryError
from ..common.types import rows_to_columns
from ..obs.registry import get_registry
from ..parallel import get_default_pool, morsel_probe, partial_group_aggregate
from ..storage.code_batch import align_build_codes, is_code_column
from .access import AccessPath, Catalog
from .ast import (
    Aggregate,
    Arith,
    ColumnRef,
    Expr,
    Literal,
    Query,
    QueryResult,
    SelectItem,
)
from .optimizer import PhysicalPlan, ScanPlan
from .scan_cache import ScanCache

Batch = dict

_HAVING_OPS = {
    "=": _operator.eq, "!=": _operator.ne, "<": _operator.lt,
    "<=": _operator.le, ">": _operator.gt, ">=": _operator.ge,
}

#: Packed group/distinct codes are compacted before they can exceed
#: this bound, so multiplying in another key never overflows int64.
_PACK_LIMIT = 2**62


class _Unvectorizable(Exception):
    """Internal: a kernel cannot run vectorized on this data (mixed
    object types, NULLs in sort keys, ...); fall back to the scalar
    reference path so semantics stay byte-identical."""


class Executor:
    """Interprets physical plans against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        cost: CostModel | None = None,
        scan_cache: ScanCache | None = None,
        vectorized: bool = True,
        compressed: bool = True,
    ):
        self._catalog = catalog
        self._cost = cost or CostModel()
        self._scan_cache = scan_cache
        self._vectorized = vectorized
        #: Compressed execution: column scans that can serve dictionary
        #: codes stay encoded past the scan boundary (joins, GROUP BY and
        #: DISTINCT run on codes; materialization is deferred to result
        #: emit).  ``compressed=False`` is the decode-first reference the
        #: differential tests and the pipeline bench compare against.
        self._compressed = compressed
        reg = get_registry()
        self._code_join_counter = reg.counter("exec.code_space_joins")
        self._code_group_counter = reg.counter("exec.code_space_groups")
        self._code_distinct_counter = reg.counter("exec.code_space_distincts")
        self._morsel_partial_counter = reg.counter("exec.morsel_partials")
        self._morsel_probe_counter = reg.counter("exec.morsel_probes")

    # ------------------------------------------------------------- entry

    def execute(self, plan: PhysicalPlan) -> QueryResult:
        start = self._cost.now_us()
        batch = self._run_scan(plan.base)
        for step in plan.joins:
            right = self._run_scan(step.scan)
            batch = self._hash_join(batch, right, step.left_column, step.right_column)
        for col_a, col_b in plan.residual_equalities:
            if col_a not in batch or col_b not in batch:
                raise QueryError(
                    f"residual join columns {col_a!r}/{col_b!r} not in scope"
                )
            self._cost.charge_rows(
                self._cost.residual_filter_per_row_us, _batch_len(batch)
            )
            side_a, side_b = batch[col_a], batch[col_b]
            if is_code_column(side_a):
                side_a = side_a.decode()
            if is_code_column(side_b):
                side_b = side_b.decode()
            mask = side_a == side_b
            batch = {name: arr[mask] for name, arr in batch.items()}
        query = plan.query
        batch = self._decode_expr_columns(query, batch)
        if query.group_by or query.has_aggregates():
            columns, rows = self._aggregate(query, batch)
            rows = self._order_and_limit(query, columns, rows)
        elif self._vectorized:
            columns, rows = self._project_vectorized(query, batch)
        else:
            columns, rows = self._project_scalar(query, batch)
            rows = self._order_and_limit(query, columns, rows)
        return QueryResult(
            columns=columns,
            rows=rows,
            sim_elapsed_us=self._cost.now_us() - start,
        )

    # ------------------------------------------------------------- scans

    def _run_scan(self, scan: ScanPlan) -> Batch:
        adapter = self._catalog[scan.table]
        schema = adapter.schema()
        # Only the plan's output columns: adapters apply the predicate
        # themselves, so WHERE-only columns are filtered in place (in
        # code space where the codec allows) and never materialized.
        needed = sorted(set(scan.columns))
        if not needed:
            needed = [schema.primary_key[0]]
        encoded = (
            self._compressed
            and scan.path is AccessPath.COLUMN_SCAN
            and hasattr(adapter, "scan_columns_encoded")
        )
        cache = self._scan_cache
        cache_key = None
        if cache is not None:
            token_fn = getattr(adapter, "cache_token", None)
            token = token_fn(scan.path) if token_fn is not None else None
            if token is not None:
                try:
                    cache_key = (
                        scan.table, scan.path, tuple(needed), scan.predicate, token
                    )
                    if encoded:
                        # Encoded entries append a marker *after* the
                        # token, so keep-filters that read key[4] still
                        # see the token.  Serial and morsel-parallel
                        # scans share the key either way — a warm serial
                        # entry serves a parallel rescan.
                        cache_key = cache_key + ("enc",)
                    hit = cache.get(cache_key)
                except TypeError:  # unhashable predicate/token: skip caching
                    cache_key = None
                else:
                    if hit is not None:
                        self._cost.charge(self._cost.cache_probe_us)
                        note = getattr(adapter, "note_cached_scan", None)
                        if note is not None:
                            note(needed, scan.predicate)
                        # Shallow copy: downstream operators build new
                        # dicts, but never hand the cached one around.
                        return dict(hit)
        batch = self._scan_adapter(adapter, schema, scan, needed, encoded)
        if cache_key is not None:
            cache.put(cache_key, batch)
            return dict(batch)
        return batch

    def _scan_adapter(
        self,
        adapter,
        schema,
        scan: ScanPlan,
        needed: list[str],
        encoded: bool = False,
    ) -> Batch:
        if scan.path is AccessPath.COLUMN_SCAN:
            if encoded:
                return adapter.scan_columns_encoded(needed, scan.predicate)
            return adapter.scan_columns(needed, scan.predicate)
        if scan.path is AccessPath.INDEX_LOOKUP:
            rows = adapter.index_lookup_rows(scan.predicate)
            if rows is None:
                rows = adapter.scan_rows(scan.predicate)
        else:
            rows = adapter.scan_rows(scan.predicate)
        self._cost.charge_rows(self._cost.column_materialize_per_row_us, len(rows))
        arrays = rows_to_columns(schema, rows)
        return {name: arrays[name] for name in needed}

    # ------------------------------------------------------------- decode guard

    def _decode_expr_columns(self, query: Query, batch: Batch) -> Batch:
        """Decode CodeColumns consumed by arithmetic expressions.

        Compressed execution keeps plain column references encoded —
        joins, GROUP BY, DISTINCT, MIN/MAX and result emit are all
        code-aware — but an ``Arith`` tree computes on values, so any
        column it references is decoded here (an operator-internal
        decode, outside the simulated cost model like the join's
        one-sided key decode).
        """
        names: set[str] = set()

        def visit(expr: Expr, top: bool) -> None:
            if isinstance(expr, ColumnRef):
                if not top:
                    names.add(expr.name)
            elif isinstance(expr, Aggregate):
                if expr.arg is not None:
                    visit(expr.arg, True)
            elif isinstance(expr, Arith):
                visit(expr.left, False)
                visit(expr.right, False)

        for item in query.select:
            visit(item.expr, True)
        for having in query.having:
            visit(having.expr, True)
        for item in query.order_by:
            visit(item.expr, True)
        if not names:
            return batch
        out = dict(batch)
        for name in names:
            col = out.get(name)
            if is_code_column(col):
                out[name] = col.decode()
        return out

    # ------------------------------------------------------------- join

    def _hash_join(
        self, left: Batch, right: Batch, left_col: str, right_col: str
    ) -> Batch:
        if left_col not in left and left_col in right:
            # The planner orders joins by table, not by side; swap if needed.
            left, right = right, left
            left_col, right_col = right_col, left_col
        if left_col not in left or right_col not in right:
            raise QueryError(
                f"join columns {left_col!r}/{right_col!r} not in scope"
            )
        build, probe = right, left
        build_col, probe_col = right_col, left_col
        if _batch_len(build) > _batch_len(probe):
            build, probe = probe, build
            build_col, probe_col = probe_col, build_col
        build_values = build[build_col]
        probe_values = probe[probe_col]
        if is_code_column(probe_values) and is_code_column(build_values):
            # Code-space join: remap the build side's codes into the
            # probe side's dictionary and join on the integer codes.
            # The remap is charged here, before (and regardless of) the
            # vectorized/scalar split — both arms pay the same
            # code-alignment price (the HTL003 parity discipline).
            probe_values, build_values, n_remapped = align_build_codes(
                probe_values, build_values
            )
            if n_remapped:
                self._cost.charge_rows(
                    self._cost.code_remap_per_value_us, n_remapped
                )
            self._code_join_counter.inc()
        else:
            # One-sided encoding: the join runs on values; the encoded
            # side is decoded in place (operator-internal decode).
            if is_code_column(probe_values):
                probe_values = probe_values.decode()
            if is_code_column(build_values):
                build_values = build_values.decode()
        self._cost.charge_rows(self._cost.hash_build_per_row_us, len(build_values))
        self._cost.charge_rows(self._cost.hash_probe_per_row_us, len(probe_values))
        if self._vectorized:
            try:
                probe_positions, build_positions = self._probe_positions(
                    probe_values, build_values
                )
            except _Unvectorizable:
                probe_positions, build_positions = _equi_join_positions_scalar(
                    probe_values, build_values
                )
        else:
            probe_positions, build_positions = _equi_join_positions_scalar(
                probe_values, build_values
            )
        out: Batch = {}
        for name, arr in probe.items():
            out[name] = arr[probe_positions]
        for name, arr in build.items():
            if name not in out:
                out[name] = arr[build_positions]
        return out

    def _probe_positions(
        self, probe_values: np.ndarray, build_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized join probe, morsel-parallel when a pool is up.

        Each probe morsel matches against the shared read-only build
        side; the probe-major concatenation of per-morsel outputs equals
        the flat probe exactly (each probe row's matches depend only on
        that row).  No extra simulated charge: the per-row probe price
        was charged flat, and morselization must not change it.
        """
        pool = get_default_pool()
        morsel_rows = getattr(pool, "morsel_rows", None) if pool else None
        n_probe = len(probe_values)
        if pool is None or not morsel_rows or n_probe <= morsel_rows:
            return _equi_join_positions(probe_values, build_values)

        def probe_part(start: int, stop: int):
            pp, bp = _equi_join_positions(probe_values[start:stop], build_values)
            return pp + start, bp

        parts = morsel_probe(n_probe, probe_part, pool)
        self._morsel_probe_counter.inc(len(parts))
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
        )

    # ------------------------------------------------------------- aggregate

    def _aggregate(self, query: Query, batch: Batch) -> tuple[list[str], list[tuple]]:
        n = _batch_len(batch)
        aggregates = _collect_aggregates(query.select)
        self._cost.charge(self._cost.agg_per_value_us * n * max(len(aggregates), 1))
        # HAVING needs every referenced aggregate computed, even ones
        # not in the select list.
        having_aggs: list[Aggregate] = []
        seen = {agg.display() for agg in aggregates}
        for having in query.having:
            for agg in _collect_aggregates([SelectItem(having.expr)]):
                if agg.display() not in seen:
                    seen.add(agg.display())
                    having_aggs.append(agg)
        if query.group_by and any(
            is_code_column(batch.get(col)) for col in query.group_by
        ):
            self._code_group_counter.inc()
        morsel = None
        if query.group_by and n:
            morsel = self._morsel_aggregate(
                query.group_by, batch, aggregates + having_aggs
            )
        if morsel is not None:
            group_reps, counts, agg_values = morsel
            n_groups = len(counts)
        else:
            if query.group_by:
                order, starts, group_reps = self._group(batch, query.group_by)
            else:
                order = np.arange(n)
                starts = (
                    np.array([0], dtype=np.int64) if n else np.array([], dtype=np.int64)
                )
                group_reps = {}
            agg_values = {}
            counts = _segment_counts(starts, n)
            for agg in aggregates:
                agg_values[agg.display()] = _reduce_aggregate(
                    agg, batch, order, starts, counts
                )
            # Global aggregate over an empty input still yields one row.
            n_groups = len(starts) if (query.group_by or n) else 0
            if not query.group_by and n == 0:
                n_groups = 1
                counts = np.array([0])
                for agg in aggregates:
                    agg_values[agg.display()] = np.array(
                        [agg.compute(np.array([]), 0)], dtype=object
                    )
            for agg in having_aggs:
                agg_values[agg.display()] = _reduce_aggregate(
                    agg, batch, order, starts, counts
                )
        columns = [item.output_name for item in query.select]
        groups = self._having_survivors(query, n_groups, agg_values, group_reps)
        rows: list[tuple] = []
        for g in groups:
            row = []
            for item in query.select:
                row.append(
                    _eval_item(item.expr, g, agg_values, group_reps, query.group_by)
                )
            rows.append(tuple(row))
        return columns, rows

    def _morsel_aggregate(
        self, group_by: list[str], batch: Batch, aggs: list[Aggregate]
    ):
        """Morsel-driven partial aggregation, or None for the flat kernel.

        Eligible only when a pool is installed, the batch spans multiple
        morsels, and every aggregate is *exactly mergeable* (COUNT,
        MIN/MAX, integer/bool SUM — see
        :data:`repro.parallel.EXACT_MERGE_KINDS`); MIN/MAX over encoded
        columns reduce on dictionary codes and decode one value per
        group.  The merged output is bit-identical to the flat kernel
        for any morsel split, and no extra cost is charged — the
        aggregation price was already charged per input row.
        """
        from .ast import AggFunc

        if not self._vectorized:
            return None
        pool = get_default_pool()
        n = _batch_len(batch)
        morsel_rows = getattr(pool, "morsel_rows", None) if pool else None
        if pool is None or not morsel_rows or n <= morsel_rows:
            return None
        specs: list[tuple[str, np.ndarray | None]] = []
        posts: list[np.ndarray | None] = []
        for agg in aggs:
            if agg.func is AggFunc.COUNT:
                specs.append(("count", None))
                posts.append(None)
                continue
            assert agg.arg is not None
            # Only the *expected* expression-evaluation failures defer
            # to the flat kernel (missing column -> QueryError; numpy
            # type/shape mismatch on encoded or object columns ->
            # TypeError/ValueError).  Anything else is a kernel bug and
            # must surface, not degrade into a silent scalar fallback.
            try:
                values = agg.arg.evaluate(batch)
            except (QueryError, TypeError, ValueError):
                return None  # the flat kernel owns the error surface
            if is_code_column(values):
                if agg.func is AggFunc.MIN or agg.func is AggFunc.MAX:
                    # Codes order like values (sorted dictionary): reduce
                    # the codes, decode one winner per group.
                    kind = "min" if agg.func is AggFunc.MIN else "max"
                    specs.append((kind, np.asarray(values.codes)))
                    posts.append(values.dictionary)
                    continue
                values = values.decode()
            arr = np.asarray(values)
            if agg.func is AggFunc.SUM and arr.dtype.kind in "biu":
                if arr.dtype == np.bool_:
                    arr = arr.astype(np.int64)
                specs.append(("sum_int", arr))
                posts.append(None)
                continue
            if (
                agg.func in (AggFunc.MIN, AggFunc.MAX)
                and arr.dtype.kind in "biufmM"
            ):
                specs.append(("min" if agg.func is AggFunc.MIN else "max", arr))
                posts.append(None)
                continue
            return None  # AVG / float SUM / object values: flat kernel
        for col in group_by:
            if col not in batch:
                return None  # flat path raises the reference QueryError
        try:
            combined = _pack_codes(
                [batch[col] for col in group_by], nan_distinct=False
            )
        except _Unvectorizable:
            return None
        state = partial_group_aggregate(combined, specs, pool)
        self._morsel_partial_counter.inc()
        group_reps = {col: batch[col][state.first_rows] for col in group_by}
        agg_values: dict[str, np.ndarray] = {}
        for agg, post, reduced in zip(aggs, posts, state.reduced):
            agg_values[agg.display()] = (
                post[reduced] if post is not None else reduced
            )
        return group_reps, state.counts, agg_values

    def _having_survivors(
        self,
        query: Query,
        n_groups: int,
        agg_values: dict[str, np.ndarray],
        group_reps: dict[str, np.ndarray],
    ) -> list[int]:
        """Indexes of groups passing every HAVING condition."""
        if not query.having or n_groups == 0:
            return list(range(n_groups))
        if self._vectorized and not any(
            arr.dtype == object for arr in agg_values.values()
        ):
            try:
                mask = np.ones(n_groups, dtype=bool)
                for having in query.having:
                    vals, valid = _eval_group_vector(
                        having.expr, n_groups, agg_values, group_reps
                    )
                    with np.errstate(invalid="ignore"):
                        cmp = np.asarray(
                            _HAVING_OPS[having.op](vals, having.value), dtype=bool
                        )
                    mask &= valid & cmp
                return [int(g) for g in np.flatnonzero(mask)]
            except _Unvectorizable:  # htaplint: ignore[HTL005] -- control-flow signal, not an error: falls through to the scalar HAVING path below
                pass
        survivors = []
        for g in range(n_groups):
            keep = True
            for having in query.having:
                computed = _eval_item(
                    having.expr, g, agg_values, group_reps, query.group_by
                )
                if not having.test(computed):
                    keep = False
                    break
            if keep:
                survivors.append(g)
        return survivors

    def _group(
        self, batch: Batch, group_by: list[str]
    ) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """Factorize group columns; returns (sort order, group starts,
        per-column representative values in group order)."""
        n = _batch_len(batch)
        for col in group_by:
            if col not in batch:
                raise QueryError(f"GROUP BY column {col!r} not in scope")
        combined = _pack_codes([batch[col] for col in group_by], nan_distinct=False)
        if n:
            # Stable integer argsort is radix-based: pass count scales
            # with dtype width, so narrow the (non-negative) codes.
            peak = int(combined.max())
            if peak < 2**15:
                combined = combined.astype(np.int16)
            elif peak < 2**31:
                combined = combined.astype(np.int32)
        order = np.argsort(combined, kind="stable")
        sorted_codes = combined[order]
        if n == 0:
            starts = np.array([], dtype=np.int64)
        else:
            change = np.empty(n, dtype=bool)
            change[0] = True
            np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=change[1:])
            starts = np.flatnonzero(change)
        reps = {col: batch[col][order[starts]] for col in group_by}
        return order, starts, reps

    # ------------------------------------------------------------- project

    def _projection_arrays(
        self, query: Query, batch: Batch
    ) -> tuple[list[str], list[np.ndarray]]:
        columns: list[str] = []
        arrays: list[np.ndarray] = []
        for item in query.select:
            if isinstance(item.expr, ColumnRef) and item.expr.name == "*":
                for name in sorted(batch):
                    columns.append(name)
                    arrays.append(batch[name])
                continue
            columns.append(item.output_name)
            value = item.expr.evaluate(batch)
            arrays.append(value if is_code_column(value) else np.asarray(value))
        return columns, arrays

    def _project_scalar(self, query: Query, batch: Batch) -> tuple[list[str], list[tuple]]:
        """Row-at-a-time reference: materialize tuples, then dedup."""
        n = _batch_len(batch)
        columns, arrays = self._projection_arrays(query, batch)
        if not any(is_code_column(arr) for arr in arrays):
            self._cost.charge_rows(self._cost.column_materialize_per_row_us, n)
            rows = [
                tuple(_to_py(arr[i]) for arr in arrays)
                for i in range(n)
            ]
            if query.distinct:
                self._cost.charge_rows(self._cost.distinct_per_row_us, n)
                rows = _distinct_rows_scalar(rows)
            return columns, rows
        # Compressed reference arm: dedup row-at-a-time on dictionary
        # codes (equal codes <=> equal values within one dictionary),
        # then decode only the survivors at the result boundary — the
        # same charge points as the vectorized late path.
        keep: list[int] | range = range(n)
        if query.distinct:
            self._cost.charge_rows(self._cost.distinct_per_row_us, n)
            seen: set = set()
            kept: list[int] = []
            for i in range(n):
                key = tuple(
                    int(arr.codes[i]) if is_code_column(arr) else _to_py(arr[i])
                    for arr in arrays
                )
                if key not in seen:
                    seen.add(key)
                    kept.append(i)
            keep = kept
            self._code_distinct_counter.inc()
        self._cost.charge_rows(
            self._cost.column_materialize_per_row_us, len(keep)
        )
        rows = [tuple(_to_py(arr[i]) for arr in arrays) for i in keep]
        return columns, rows

    def _project_vectorized(
        self, query: Query, batch: Batch
    ) -> tuple[list[str], list[tuple]]:
        """Columnar late materialization: DISTINCT / ORDER BY / LIMIT run
        over arrays; tuples are built only at the result boundary.

        With encoded projection columns the materialization charge moves
        *after* DISTINCT: dedup runs on packed dictionary codes, and only
        surviving rows pay the decode (late materialization past the scan
        boundary)."""
        n = _batch_len(batch)
        columns, arrays = self._projection_arrays(query, batch)
        late = any(is_code_column(arr) for arr in arrays)
        if not late:
            self._cost.charge_rows(self._cost.column_materialize_per_row_us, n)
        if query.distinct:
            self._cost.charge_rows(self._cost.distinct_per_row_us, n)
            try:
                keep = _distinct_first_occurrence(arrays)
            except (_Unvectorizable, TypeError):
                # Mixed/unorderable objects: dedup row-at-a-time, then
                # hand the rows to the scalar order/limit (cost for the
                # sort is charged there).
                if late:
                    self._cost.charge_rows(
                        self._cost.column_materialize_per_row_us, n
                    )
                    arrays = [
                        arr.decode() if is_code_column(arr) else arr
                        for arr in arrays
                    ]
                rows = _arrays_to_rows(arrays)
                rows = _distinct_rows_scalar(rows)
                return columns, self._order_and_limit(
                    query, columns, rows, charge=True
                )
            arrays = [arr[keep] for arr in arrays]
            if late:
                self._code_distinct_counter.inc()
        if late:
            # Result emit: only post-DISTINCT survivors pay the
            # materialization charge (mirroring the scalar reference
            # arm).  The physical gather is deferred further still —
            # ORDER BY sorts directly on dictionary codes (the sorted
            # dictionary makes code order value order), so after LIMIT
            # only the emitted rows are decoded at all.
            n_emit = len(arrays[0]) if arrays else 0
            self._cost.charge_rows(
                self._cost.column_materialize_per_row_us, n_emit
            )
        if query.order_by:
            n_sort = len(arrays[0]) if arrays else 0
            self._cost.charge_rows(self._cost.sort_per_row_us, n_sort)
            try:
                sel = _order_selection(query, columns, arrays)
            except _Unvectorizable:
                # NULL/NaN sort keys: the scalar reference semantics
                # (including its errors) are authoritative.
                arrays = [
                    arr.decode() if is_code_column(arr) else arr
                    for arr in arrays
                ]
                rows = _arrays_to_rows(arrays)
                return columns, self._order_and_limit(
                    query, columns, rows, charge=False
                )
            arrays = [arr[sel] for arr in arrays]
        elif query.limit is not None:
            arrays = [arr[: query.limit] for arr in arrays]
        if late:
            arrays = [
                arr.decode() if is_code_column(arr) else arr for arr in arrays
            ]
        return columns, _arrays_to_rows(arrays)

    # ------------------------------------------------------------- order/limit

    def _order_and_limit(
        self,
        query: Query,
        columns: list[str],
        rows: list[tuple],
        charge: bool = True,
    ) -> list[tuple]:
        if query.order_by:
            if charge:
                self._cost.charge_rows(self._cost.sort_per_row_us, len(rows))
            # Stable sorts applied last-key-first implement multi-key order.
            for item in reversed(query.order_by):
                key_fn = _order_key(item.expr, columns, query)
                rows = sorted(rows, key=key_fn, reverse=not item.ascending)
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows


# ----------------------------------------------------------------- helpers


def _batch_len(batch: Batch) -> int:
    for arr in batch.values():
        return len(arr)
    return 0


def _arrays_to_rows(arrays: list[np.ndarray]) -> list[tuple]:
    """The result boundary: one C-level ``tolist`` per column, then zip."""
    if not arrays:
        return []
    return list(zip(*[arr.tolist() for arr in arrays]))


def _is_none_mask(arr: np.ndarray) -> np.ndarray:
    return np.frompyfunc(lambda v: v is None, 1, 1)(arr).astype(bool)


def _factorize(
    arr: np.ndarray, nan_distinct: bool, ordered: bool = True
) -> tuple[np.ndarray, int]:
    """Order-preserving integer codes for one column.

    Returns ``(codes, cardinality)`` with ``0 <= code < cardinality``.
    NULL handling mirrors the scalar reference semantics: ``None`` cells
    (object columns) all share one code (None == None), while float NaN
    either gets one distinct code per element (``nan_distinct=True`` —
    NaN never equals NaN, the dict/set behaviour) or one shared code
    (``nan_distinct=False`` — ``np.unique`` grouping behaviour).

    ``ordered=False`` permits codes in first-occurrence order instead of
    value order, which lets object columns use a hash-based encoder
    (~2x faster than sorting 100k Python strings) — only GROUP BY needs
    value-ordered codes, for its sorted group output.
    """
    if is_code_column(arr):
        # Already factorized: dictionary codes are value-ordered (sorted
        # dictionary) and NULL/NaN-free, so they are exact under every
        # nan_distinct/ordered combination.  Sparse codes (values absent
        # from this batch) only waste packing range, never correctness.
        return np.asarray(arr.codes, dtype=np.int64), max(len(arr.dictionary), 1)
    arr = np.asarray(arr)
    n = len(arr)
    if arr.dtype == object:
        if not ordered:
            # Hash-based: equal codes <=> equal values (dict semantics,
            # so None == None too), first-occurrence numbering.
            table: dict[Any, int] = {}
            codes = np.empty(n, dtype=np.int64)
            get = table.get
            try:
                for i, v in enumerate(arr.tolist()):
                    c = get(v)
                    if c is None:
                        c = table[v] = len(table)
                    codes[i] = c
            except TypeError as exc:  # unhashable cell
                raise _Unvectorizable(str(exc)) from exc
            return codes, max(len(table), 1)
        none_mask = _is_none_mask(arr)
        codes = np.zeros(n, dtype=np.int64)
        card = 1
        rest = ~none_mask
        if rest.any():
            try:
                _, inv = np.unique(arr[rest], return_inverse=True)
            except TypeError as exc:
                raise _Unvectorizable(str(exc)) from exc
            codes[rest] = np.asarray(inv, dtype=np.int64) + 1
            card = int(inv.max()) + 2
        return codes, card
    if arr.dtype.kind == "f":
        nan_mask = np.isnan(arr)
        if nan_mask.any():
            codes = np.zeros(n, dtype=np.int64)
            finite = ~nan_mask
            base = 0
            if finite.any():
                _, inv = np.unique(arr[finite], return_inverse=True)
                codes[finite] = np.asarray(inv, dtype=np.int64)
                base = int(inv.max()) + 1
            if nan_distinct:
                n_nan = int(nan_mask.sum())
                codes[nan_mask] = base + np.arange(n_nan, dtype=np.int64)
                return codes, base + n_nan
            codes[nan_mask] = base
            return codes, base + 1
    uniques, inv = np.unique(arr, return_inverse=True)
    return np.asarray(inv, dtype=np.int64), max(len(uniques), 1)


def _pack_codes(
    columns: list[np.ndarray], nan_distinct: bool, ordered: bool = True
) -> np.ndarray:
    """Pack multi-column keys into one int64 code per row.

    Guards against int64 overflow with many/high-cardinality keys: the
    running pack is re-factorized (compacted to ``< n`` distinct codes)
    whenever multiplying in the next column's cardinality could exceed
    the packing range, so arbitrarily many GROUP BY / DISTINCT keys are
    safe.  Codes stay lexicographically ordered across columns.
    """
    if not columns:
        return np.zeros(0, dtype=np.int64)
    n = len(columns[0])
    combined = np.zeros(n, dtype=np.int64)
    bound = 1  # exclusive upper bound on combined values (python int: exact)
    for arr in columns:
        codes, card = _factorize(arr, nan_distinct, ordered=ordered)
        if bound * card > _PACK_LIMIT:
            _, inv = np.unique(combined, return_inverse=True)
            combined = np.asarray(inv, dtype=np.int64)
            bound = int(inv.max()) + 1 if n else 1
            if bound * card > _PACK_LIMIT:  # pragma: no cover - n would be ~2**31
                raise _Unvectorizable("key space too large to pack")
        combined = combined * card + codes
        bound *= card
    return combined


def _distinct_first_occurrence(arrays: list[np.ndarray]) -> np.ndarray:
    """Row positions to keep for DISTINCT, preserving first-occurrence
    order (the scalar set-based semantics)."""
    codes = _pack_codes(arrays, nan_distinct=True, ordered=False)
    _, first = np.unique(codes, return_index=True)
    return np.sort(first)


def _distinct_rows_scalar(rows: list[tuple]) -> list[tuple]:
    seen = set()
    unique_rows = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique_rows.append(row)
    return unique_rows


# ----------------------------------------------------------------- join kernels


def _equi_join_positions(
    probe_values: np.ndarray, build_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All equality matches as (probe positions, build positions).

    Probe-major output with build matches in ascending build position —
    the same order the scalar dict join produces.  Implemented as
    factorize + argsort + searchsorted, with no per-row Python loop.
    """
    empty = np.array([], dtype=np.int64)
    n_build = len(build_values)
    n_probe = len(probe_values)
    if n_build == 0 or n_probe == 0:
        return empty, empty
    probe_codes, build_codes = None, None
    if probe_values.dtype != object and build_values.dtype != object:
        # Raw numeric keys order and compare directly — factorization
        # is only needed for object columns and for NaN's never-matches
        # semantics (NaNs sort adjacent, so they would falsely match).
        has_nan = (
            probe_values.dtype.kind == "f" and bool(np.isnan(probe_values).any())
        ) or (build_values.dtype.kind == "f" and bool(np.isnan(build_values).any()))
        if not has_nan:
            probe_codes, build_codes = probe_values, build_values
    if probe_codes is None:
        probe_codes, build_codes = _co_factorize(probe_values, build_values)
    order = np.argsort(build_codes, kind="stable")
    sorted_codes = build_codes[order]
    build_unique = n_build == 1 or bool(
        (sorted_codes[1:] != sorted_codes[:-1]).all()
    )
    if build_unique:
        # PK-style join: at most one match per probe, so the probe-major
        # output needs no run expansion.
        if (
            sorted_codes.dtype.kind in "iub"
            and probe_codes.dtype.kind in "iub"
        ):
            low = int(sorted_codes[0])
            span = int(sorted_codes[-1]) - low + 1
            if span <= 4 * (n_build + n_probe) + 16:
                # Dense direct addressing beats binary search when the
                # key range is modest (sentinel NULL_INT keys blow the
                # span and fall through to searchsorted).
                table = np.full(span, -1, dtype=np.int64)
                table[build_codes.astype(np.int64) - low] = np.arange(
                    n_build, dtype=np.int64
                )
                slot = probe_codes.astype(np.int64) - low
                in_range = (slot >= 0) & (slot < span)
                hit = table[np.where(in_range, slot, 0)]
                match = in_range & (hit >= 0)
                return np.flatnonzero(match), hit[match]
        pos = np.minimum(
            np.searchsorted(sorted_codes, probe_codes, side="left"), n_build - 1
        )
        match = sorted_codes[pos] == probe_codes
        return np.flatnonzero(match), order[pos[match]]
    lo = np.searchsorted(sorted_codes, probe_codes, side="left")
    hi = np.searchsorted(sorted_codes, probe_codes, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return empty, empty
    probe_idx = np.repeat(np.arange(n_probe, dtype=np.int64), counts)
    run_starts = np.repeat(lo, counts)
    out_starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(out_starts, counts)
    build_idx = order[run_starts + within]
    return probe_idx, build_idx


def _co_factorize(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Shared integer codes across two key arrays: equal values (by the
    scalar join's dict semantics) get equal codes.  ``None`` matches
    ``None``; float NaN (encoded NULL) matches nothing, itself included."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype == object or b.dtype == object:
        combined = np.concatenate([a.astype(object), b.astype(object)])
        codes, _card = _factorize(combined, nan_distinct=True, ordered=False)
        return codes[: len(a)], codes[len(a):]
    combined = np.concatenate([a, b])
    if combined.dtype.kind == "f":
        codes, _card = _factorize(combined, nan_distinct=True)
        return codes[: len(a)], codes[len(a):]
    _, inv = np.unique(combined, return_inverse=True)
    inv = np.asarray(inv, dtype=np.int64)
    return inv[: len(a)], inv[len(a):]


def _equi_join_positions_scalar(
    probe_values: np.ndarray, build_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The retained dict-based reference join (row-at-a-time)."""
    table: dict[Any, list[int]] = {}
    for i, v in enumerate(build_values.tolist()):
        table.setdefault(v, []).append(i)
    probe_idx: list[int] = []
    build_idx: list[int] = []
    for i, v in enumerate(probe_values.tolist()):
        hits = table.get(v)
        if hits:
            probe_idx.extend([i] * len(hits))
            build_idx.extend(hits)
    return (
        np.array(probe_idx, dtype=np.int64),
        np.array(build_idx, dtype=np.int64),
    )


# ----------------------------------------------------------------- order kernels


def _resolve_order_array(
    expr: Expr, columns: list[str], arrays: list[np.ndarray]
) -> np.ndarray:
    display = expr.display()
    if display in columns:
        return arrays[columns.index(display)]
    if isinstance(expr, ColumnRef) and expr.name in columns:
        return arrays[columns.index(expr.name)]
    raise QueryError(f"ORDER BY expression {display!r} is not in the output")


def _order_code_array(arr: np.ndarray) -> np.ndarray:
    """A sortable (and safely negatable) key array for lexsort.

    NULLs in sort keys (None in object columns, NaN in float columns)
    are not vectorizable: the scalar reference semantics for them —
    including raising TypeError for None — are preserved by falling
    back, so we refuse them here.
    """
    if is_code_column(arr):
        # Sorted NULL-free dictionary: code order IS value order, so the
        # codes sort without decoding.  Factorize like the int branch so
        # DESC negation is overflow-safe.
        _, inv = np.unique(np.asarray(arr.codes), return_inverse=True)
        return np.asarray(inv, dtype=np.int64)
    arr = np.asarray(arr)
    if arr.dtype == object:
        if _is_none_mask(arr).any():
            raise _Unvectorizable("None in ORDER BY key")
        try:
            _, inv = np.unique(arr, return_inverse=True)
        except TypeError as exc:
            raise _Unvectorizable(str(exc)) from exc
        return np.asarray(inv, dtype=np.int64)
    if arr.dtype.kind == "f":
        if np.isnan(arr).any():
            raise _Unvectorizable("NaN in ORDER BY key")
        return arr
    if arr.dtype.kind == "b":
        return arr.astype(np.int64)
    # Integer keys: factorized codes avoid overflow when negated for DESC.
    _, inv = np.unique(arr, return_inverse=True)
    return np.asarray(inv, dtype=np.int64)


def _order_selection(
    query: Query, columns: list[str], arrays: list[np.ndarray]
) -> np.ndarray:
    """Row positions implementing ORDER BY (+LIMIT), stable like the
    scalar reference's repeated stable sorts."""
    keys = []
    for item in query.order_by:
        code = _order_code_array(_resolve_order_array(item.expr, columns, arrays))
        keys.append(code if item.ascending else -code)
    n = len(keys[0])
    limit = query.limit
    if limit is not None and limit <= 0:
        return np.array([], dtype=np.int64)
    if limit is not None and limit < n and len(keys) == 1:
        # Top-k fast path: partition, then stable-sort only the rows at
        # or above the k-th key value (ties kept in input order, so the
        # result is byte-identical to a full stable sort + slice).
        key = keys[0]
        kth = np.partition(key, limit - 1)[limit - 1]
        candidates = np.flatnonzero(key <= kth)
        order = np.argsort(key[candidates], kind="stable")
        return candidates[order][:limit]
    # np.lexsort is stable and sorts by its LAST key first.
    sel = np.lexsort(tuple(reversed(keys)))
    if limit is not None:
        sel = sel[:limit]
    return sel


# ----------------------------------------------------------------- aggregation


def _collect_aggregates(select: list[SelectItem]) -> list[Aggregate]:
    found: dict[str, Aggregate] = {}

    def visit(expr: Expr) -> None:
        if isinstance(expr, Aggregate):
            found.setdefault(expr.display(), expr)
        elif isinstance(expr, Arith):
            visit(expr.left)
            visit(expr.right)

    for item in select:
        visit(item.expr)
    return list(found.values())


def _segment_counts(starts: np.ndarray, n: int) -> np.ndarray:
    if len(starts) == 0:
        return np.array([], dtype=np.int64)
    ends = np.append(starts[1:], n)
    return ends - starts


def _reduce_aggregate(
    agg: Aggregate,
    batch: Batch,
    order: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
) -> np.ndarray:
    from .ast import AggFunc

    if len(starts) == 0:
        return np.array([])
    if agg.func is AggFunc.COUNT and agg.arg is None:
        return counts.copy()
    assert agg.arg is not None
    values = agg.arg.evaluate(batch)
    if is_code_column(values):
        if agg.func is AggFunc.MIN or agg.func is AggFunc.MAX:
            # Compressed MIN/MAX: codes order like values, so reduce the
            # codes and decode one winner per group.
            codes = np.asarray(values.codes)[order]
            if agg.func is AggFunc.MIN:
                return values.dictionary[np.minimum.reduceat(codes, starts)]
            return values.dictionary[np.maximum.reduceat(codes, starts)]
        # SUM/AVG/COUNT need the values; operator-internal decode.
        values = values.decode()
    values = np.asarray(values)[order]
    if agg.func is AggFunc.COUNT:
        return counts.copy()
    if agg.func is AggFunc.AVG:
        totals = np.add.reduceat(values.astype(np.float64), starts)
        return totals / counts
    # SUM/MIN/MAX preserve the column dtype: integer aggregates stay
    # integers (bool sums count as int64); only AVG is inherently float.
    if agg.func is AggFunc.SUM:
        if values.dtype == np.bool_:
            values = values.astype(np.int64)
        elif values.dtype == object:
            values = values.astype(np.float64)
        return np.add.reduceat(values, starts)
    if agg.func is AggFunc.MIN:
        return np.minimum.reduceat(values, starts)
    return np.maximum.reduceat(values, starts)


def _eval_item(
    expr: Expr,
    group: int,
    agg_values: dict[str, np.ndarray],
    group_reps: dict[str, np.ndarray],
    group_by: list[str],
):
    if isinstance(expr, Aggregate):
        return _to_py(agg_values[expr.display()][group])
    if isinstance(expr, ColumnRef):
        if expr.name not in group_reps:
            raise QueryError(
                f"column {expr.name!r} must appear in GROUP BY or an aggregate"
            )
        return _to_py(group_reps[expr.name][group])
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Arith):
        lhs = _eval_item(expr.left, group, agg_values, group_reps, group_by)
        rhs = _eval_item(expr.right, group, agg_values, group_reps, group_by)
        if lhs is None or rhs is None:
            return None
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        return lhs / rhs if rhs != 0 else None
    raise QueryError(f"cannot evaluate {expr!r} in an aggregate context")


def _eval_group_vector(
    expr: Expr,
    n_groups: int,
    agg_values: dict[str, np.ndarray],
    group_reps: dict[str, np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate a HAVING expression over all groups at once.

    Returns (values, valid): ``valid`` is False where the scalar
    reference would have produced None (division by zero), which makes
    the surrounding condition fail like ``HavingCondition.test(None)``.
    """
    if isinstance(expr, Aggregate):
        return agg_values[expr.display()], np.ones(n_groups, dtype=bool)
    if isinstance(expr, ColumnRef):
        if expr.name not in group_reps:
            raise QueryError(
                f"column {expr.name!r} must appear in GROUP BY or an aggregate"
            )
        reps = group_reps[expr.name]
        if is_code_column(reps):
            reps = reps.decode()
        return reps, np.ones(n_groups, dtype=bool)
    if isinstance(expr, Literal):
        return np.full(n_groups, expr.value), np.ones(n_groups, dtype=bool)
    if isinstance(expr, Arith):
        lhs, lvalid = _eval_group_vector(expr.left, n_groups, agg_values, group_reps)
        rhs, rvalid = _eval_group_vector(expr.right, n_groups, agg_values, group_reps)
        valid = lvalid & rvalid
        if lhs.dtype == object or rhs.dtype == object:
            raise _Unvectorizable("object operands in HAVING arithmetic")
        with np.errstate(divide="ignore", invalid="ignore"):
            if expr.op == "+":
                return lhs + rhs, valid
            if expr.op == "-":
                return lhs - rhs, valid
            if expr.op == "*":
                return lhs * rhs, valid
            zero = rhs == 0
            safe = np.where(zero, 1, rhs)
            return lhs / safe, valid & ~zero
    raise QueryError(f"cannot evaluate {expr!r} in an aggregate context")


def _order_key(expr: Expr, columns: list[str], query: Query):
    # ORDER BY may reference an output column (by alias/display) or any
    # column already in the projected output.
    display = expr.display()
    if display in columns:
        idx = columns.index(display)
        return lambda row: row[idx]
    if isinstance(expr, ColumnRef) and expr.name in columns:
        idx = columns.index(expr.name)
        return lambda row: row[idx]
    raise QueryError(f"ORDER BY expression {display!r} is not in the output")


def _to_py(value):
    return value.item() if hasattr(value, "item") else value
