"""The vectorized query executor.

Operates on dict-of-NumPy-arrays batches: scans produce them (through
whichever access path the plan chose), hash joins combine them, and
grouped aggregation reduces them with ``reduceat`` kernels — the
"aggregations over compressed data and SIMD instructions" style of
columnar AP execution the survey describes, expressed in NumPy.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..common.cost import CostModel
from ..common.errors import QueryError
from ..common.types import rows_to_columns
from .access import AccessPath, Catalog
from .ast import (
    Aggregate,
    Arith,
    ColumnRef,
    Expr,
    Literal,
    Query,
    QueryResult,
    SelectItem,
)
from .optimizer import PhysicalPlan, ScanPlan

Batch = dict


class Executor:
    """Interprets physical plans against a catalog."""

    def __init__(self, catalog: Catalog, cost: CostModel | None = None):
        self._catalog = catalog
        self._cost = cost or CostModel()

    # ------------------------------------------------------------- entry

    def execute(self, plan: PhysicalPlan) -> QueryResult:
        start = self._cost.now_us()
        batch = self._run_scan(plan.base)
        for step in plan.joins:
            right = self._run_scan(step.scan)
            batch = self._hash_join(batch, right, step.left_column, step.right_column)
        for col_a, col_b in plan.residual_equalities:
            if col_a not in batch or col_b not in batch:
                raise QueryError(
                    f"residual join columns {col_a!r}/{col_b!r} not in scope"
                )
            mask = batch[col_a] == batch[col_b]
            batch = {name: arr[mask] for name, arr in batch.items()}
        query = plan.query
        if query.group_by or query.has_aggregates():
            columns, rows = self._aggregate(query, batch)
        else:
            columns, rows = self._project(query, batch)
        rows = self._order_and_limit(query, columns, rows)
        return QueryResult(
            columns=columns,
            rows=rows,
            sim_elapsed_us=self._cost.now_us() - start,
        )

    # ------------------------------------------------------------- scans

    def _run_scan(self, scan: ScanPlan) -> Batch:
        adapter = self._catalog[scan.table]
        schema = adapter.schema()
        needed = sorted(set(scan.columns) | scan.predicate.referenced_columns())
        if not needed:
            needed = [schema.primary_key[0]]
        if scan.path is AccessPath.COLUMN_SCAN:
            return adapter.scan_columns(needed, scan.predicate)
        if scan.path is AccessPath.INDEX_LOOKUP:
            rows = adapter.index_lookup_rows(scan.predicate)
            if rows is None:
                rows = adapter.scan_rows(scan.predicate)
        else:
            rows = adapter.scan_rows(scan.predicate)
        self._cost.charge_rows(self._cost.column_materialize_per_row_us, len(rows))
        arrays = rows_to_columns(schema, rows)
        return {name: arrays[name] for name in needed}

    # ------------------------------------------------------------- join

    def _hash_join(
        self, left: Batch, right: Batch, left_col: str, right_col: str
    ) -> Batch:
        if left_col not in left and left_col in right:
            # The planner orders joins by table, not by side; swap if needed.
            left, right = right, left
            left_col, right_col = right_col, left_col
        if left_col not in left or right_col not in right:
            raise QueryError(
                f"join columns {left_col!r}/{right_col!r} not in scope"
            )
        build, probe = right, left
        build_col, probe_col = right_col, left_col
        if _batch_len(build) > _batch_len(probe):
            build, probe = probe, build
            build_col, probe_col = probe_col, build_col
        build_values = build[build_col]
        table: dict[Any, list[int]] = {}
        for i, v in enumerate(build_values.tolist()):
            table.setdefault(v, []).append(i)
        self._cost.charge_rows(self._cost.hash_build_per_row_us, len(build_values))
        probe_values = probe[probe_col]
        probe_idx: list[int] = []
        build_idx: list[int] = []
        for i, v in enumerate(probe_values.tolist()):
            hits = table.get(v)
            if hits:
                probe_idx.extend([i] * len(hits))
                build_idx.extend(hits)
        self._cost.charge_rows(self._cost.hash_probe_per_row_us, len(probe_values))
        probe_positions = np.array(probe_idx, dtype=np.int64)
        build_positions = np.array(build_idx, dtype=np.int64)
        out: Batch = {}
        for name, arr in probe.items():
            out[name] = arr[probe_positions]
        for name, arr in build.items():
            if name not in out:
                out[name] = arr[build_positions]
        return out

    # ------------------------------------------------------------- aggregate

    def _aggregate(self, query: Query, batch: Batch) -> tuple[list[str], list[tuple]]:
        n = _batch_len(batch)
        aggregates = _collect_aggregates(query.select)
        self._cost.charge(self._cost.agg_per_value_us * n * max(len(aggregates), 1))
        if query.group_by:
            order, starts, group_reps = self._group(batch, query.group_by)
        else:
            order = np.arange(n)
            starts = np.array([0], dtype=np.int64) if n else np.array([], dtype=np.int64)
            group_reps = {}
        agg_values: dict[str, np.ndarray] = {}
        counts = _segment_counts(starts, n)
        for agg in aggregates:
            agg_values[agg.display()] = _reduce_aggregate(agg, batch, order, starts, counts)
        # Global aggregate over an empty input still yields one row.
        n_groups = len(starts) if (query.group_by or n) else 0
        if not query.group_by and n == 0:
            n_groups = 1
            counts = np.array([0])
            for agg in aggregates:
                agg_values[agg.display()] = np.array(
                    [agg.compute(np.array([]), 0)], dtype=object
                )
        # HAVING needs every referenced aggregate computed, even ones
        # not in the select list.
        for having in query.having:
            for agg in _collect_aggregates([SelectItem(having.expr)]):
                if agg.display() not in agg_values:
                    agg_values[agg.display()] = _reduce_aggregate(
                        agg, batch, order, starts, counts
                    )
        columns = [item.output_name for item in query.select]
        rows: list[tuple] = []
        for g in range(n_groups):
            keep = True
            for having in query.having:
                computed = _eval_item(
                    having.expr, g, agg_values, group_reps, query.group_by
                )
                if not having.test(computed):
                    keep = False
                    break
            if not keep:
                continue
            row = []
            for item in query.select:
                row.append(
                    _eval_item(item.expr, g, agg_values, group_reps, query.group_by)
                )
            rows.append(tuple(row))
        return columns, rows

    def _group(
        self, batch: Batch, group_by: list[str]
    ) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """Factorize group columns; returns (sort order, group starts,
        per-column representative values in group order)."""
        n = _batch_len(batch)
        combined = np.zeros(n, dtype=np.int64)
        for col in group_by:
            if col not in batch:
                raise QueryError(f"GROUP BY column {col!r} not in scope")
            _uniques, codes = np.unique(batch[col], return_inverse=True)
            combined = combined * (len(_uniques) + 1) + codes
        order = np.argsort(combined, kind="stable")
        sorted_codes = combined[order]
        if n == 0:
            starts = np.array([], dtype=np.int64)
        else:
            change = np.empty(n, dtype=bool)
            change[0] = True
            np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=change[1:])
            starts = np.flatnonzero(change)
        reps = {col: batch[col][order][starts] for col in group_by}
        return order, starts, reps

    # ------------------------------------------------------------- project

    def _project(self, query: Query, batch: Batch) -> tuple[list[str], list[tuple]]:
        n = _batch_len(batch)
        columns: list[str] = []
        arrays: list[np.ndarray] = []
        for item in query.select:
            if isinstance(item.expr, ColumnRef) and item.expr.name == "*":
                for name in sorted(batch):
                    columns.append(name)
                    arrays.append(batch[name])
                continue
            columns.append(item.output_name)
            arrays.append(np.asarray(item.expr.evaluate(batch)))
        self._cost.charge_rows(
            self._cost.column_materialize_per_row_us, n
        )
        rows = [
            tuple(_to_py(arr[i]) for arr in arrays)
            for i in range(n)
        ]
        if query.distinct:
            seen = set()
            unique_rows = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            rows = unique_rows
        return columns, rows

    # ------------------------------------------------------------- order/limit

    def _order_and_limit(
        self, query: Query, columns: list[str], rows: list[tuple]
    ) -> list[tuple]:
        if query.order_by:
            self._cost.charge_rows(self._cost.sort_per_row_us, len(rows))
            # Stable sorts applied last-key-first implement multi-key order.
            for item in reversed(query.order_by):
                key_fn = _order_key(item.expr, columns, query)
                rows = sorted(rows, key=key_fn, reverse=not item.ascending)
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows


# ----------------------------------------------------------------- helpers


def _batch_len(batch: Batch) -> int:
    for arr in batch.values():
        return len(arr)
    return 0


def _collect_aggregates(select: list[SelectItem]) -> list[Aggregate]:
    found: dict[str, Aggregate] = {}

    def visit(expr: Expr) -> None:
        if isinstance(expr, Aggregate):
            found.setdefault(expr.display(), expr)
        elif isinstance(expr, Arith):
            visit(expr.left)
            visit(expr.right)

    for item in select:
        visit(item.expr)
    return list(found.values())


def _segment_counts(starts: np.ndarray, n: int) -> np.ndarray:
    if len(starts) == 0:
        return np.array([], dtype=np.int64)
    ends = np.append(starts[1:], n)
    return ends - starts


def _reduce_aggregate(
    agg: Aggregate,
    batch: Batch,
    order: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
) -> np.ndarray:
    from .ast import AggFunc

    if len(starts) == 0:
        return np.array([])
    if agg.func is AggFunc.COUNT and agg.arg is None:
        return counts.copy()
    assert agg.arg is not None
    values = np.asarray(agg.arg.evaluate(batch), dtype=np.float64)[order]
    if agg.func is AggFunc.SUM:
        return np.add.reduceat(values, starts)
    if agg.func is AggFunc.COUNT:
        return counts.copy()
    if agg.func is AggFunc.AVG:
        return np.add.reduceat(values, starts) / counts
    if agg.func is AggFunc.MIN:
        return np.minimum.reduceat(values, starts)
    return np.maximum.reduceat(values, starts)


def _eval_item(
    expr: Expr,
    group: int,
    agg_values: dict[str, np.ndarray],
    group_reps: dict[str, np.ndarray],
    group_by: list[str],
):
    if isinstance(expr, Aggregate):
        return _to_py(agg_values[expr.display()][group])
    if isinstance(expr, ColumnRef):
        if expr.name not in group_reps:
            raise QueryError(
                f"column {expr.name!r} must appear in GROUP BY or an aggregate"
            )
        return _to_py(group_reps[expr.name][group])
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Arith):
        lhs = _eval_item(expr.left, group, agg_values, group_reps, group_by)
        rhs = _eval_item(expr.right, group, agg_values, group_reps, group_by)
        if lhs is None or rhs is None:
            return None
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        return lhs / rhs if rhs != 0 else None
    raise QueryError(f"cannot evaluate {expr!r} in an aggregate context")


def _order_key(expr: Expr, columns: list[str], query: Query):
    # ORDER BY may reference an output column (by alias/display) or any
    # column already in the projected output.
    display = expr.display()
    if display in columns:
        idx = columns.index(display)
        return lambda row: row[idx]
    if isinstance(expr, ColumnRef) and expr.name in columns:
        idx = columns.index(expr.name)
        return lambda row: row[idx]
    raise QueryError(f"ORDER BY expression {display!r} is not in the output")


def _to_py(value):
    return value.item() if hasattr(value, "item") else value
