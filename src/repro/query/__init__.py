"""Query subsystem: SQL parser, planner, cost-based optimizer, executor."""

from .access import AccessPath, Catalog, TableAccess
from .adapters import DualStoreTableAccess
from .ast import (
    AggFunc,
    Aggregate,
    Arith,
    ColumnRef,
    Expr,
    JoinCondition,
    Literal,
    OrderItem,
    Query,
    QueryResult,
    SelectItem,
)
from .column_selection import (
    AccessTracker,
    HeatmapColumnSelector,
    LearnedColumnSelector,
    SelectionDecision,
    hit_rate,
)
from .executor import Executor
from .learned_optimizer import (
    LearnedAccessPathChooser,
    PathFeatures,
    extract_features,
)
from .optimizer import PathChoice, PhysicalPlan, Planner, ScanPlan, split_conjuncts
from .parser import parse
from .plan_cache import CachedPlan, PlanCache, param_signature
from .scan_cache import ScanCache
from .statistics import ColumnStats, TableStats

__all__ = [
    "AccessPath",
    "AccessTracker",
    "AggFunc",
    "Aggregate",
    "Arith",
    "CachedPlan",
    "Catalog",
    "ColumnRef",
    "ColumnStats",
    "DualStoreTableAccess",
    "Executor",
    "Expr",
    "HeatmapColumnSelector",
    "JoinCondition",
    "LearnedAccessPathChooser",
    "LearnedColumnSelector",
    "Literal",
    "OrderItem",
    "PathChoice",
    "PathFeatures",
    "PhysicalPlan",
    "PlanCache",
    "Planner",
    "Query",
    "QueryResult",
    "ScanCache",
    "ScanPlan",
    "SelectItem",
    "SelectionDecision",
    "TableAccess",
    "TableStats",
    "extract_features",
    "hit_rate",
    "param_signature",
    "parse",
    "split_conjuncts",
]
