"""The access-path abstraction between engines and the query layer.

Every HTAP engine exposes each of its tables as a :class:`TableAccess`:
the *same* logical data reachable through a row path (tuple-at-a-time,
cheap per lookup, expensive per full scan) and/or a column path
(vectorized, cheap per value).  The optimizer's job — the "hybrid
row/column scan" of Table 2 — is choosing between them per table per
query, with identical results either way.
"""

from __future__ import annotations

import enum
from typing import Protocol

import numpy as np

from ..common.predicate import Predicate
from ..common.types import Row, Schema
from .statistics import TableStats


class AccessPath(enum.Enum):
    ROW_SCAN = "row_scan"          # full scan of the row store
    INDEX_LOOKUP = "index_lookup"  # selective B+-tree / pk access, then verify
    COLUMN_SCAN = "column_scan"    # vectorized scan of the columnar image


class TableAccess(Protocol):
    """What the planner/executor need from one engine table."""

    def schema(self) -> Schema: ...

    def stats(self) -> TableStats: ...

    def available_paths(self) -> set[AccessPath]: ...

    def scan_rows(self, predicate: Predicate) -> list[Row]:
        """Row path: matching rows from the (freshest) row-side store."""
        ...

    def scan_columns(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        """Column path: arrays for ``columns`` of matching rows."""
        ...

    def index_lookup_rows(self, predicate: Predicate) -> list[Row] | None:
        """Index path: matching rows, or None when no usable index."""
        ...

    # --------------------------------------------------- optional protocol
    #
    # Adapters *may* also expose the following methods; the query layer
    # probes for them with getattr and degrades gracefully when absent:
    #
    # ``cache_token(path: AccessPath | None = None) -> Hashable | None``
    #     A value pinning down exactly what a scan would return (reader
    #     snapshot + every relevant mutation counter).  Enables the
    #     MVCC-aware :class:`~repro.query.scan_cache.ScanCache`; return
    #     None (or omit the method) to opt the table out of caching.
    #     ``path`` is the access path about to run: an adapter may
    #     return a *narrower* token for a path whose result depends on
    #     fewer versions (e.g. an isolated-mode column scan reads only
    #     the stale columnar image, so primary-side writes need not
    #     invalidate it), but must stay conservative when unsure.
    #
    # ``note_cached_scan(columns, predicate) -> None``
    #     Called on a scan-cache hit so the engine can keep its own
    #     bookkeeping (freshness probes, adaptive stats) in step even
    #     though no physical scan ran.
    #
    # ``stats_epoch() -> int``
    #     Version of the statistics the planner would see right now
    #     (refreshing them first if they drifted past the stats-cache
    #     slack).  The plan cache fences cached plans on it: equal
    #     epochs guarantee the plan was costed against the statistics
    #     currently being served.  Tables without it opt out of plan
    #     caching for statements that reference them.
    #
    # ``scan_pruning_hint(predicate) -> float``
    #     Planning-time estimate in [0, 1]: the fraction of the table's
    #     columnar rows living in segments whose zone maps exclude
    #     ``predicate``.  The optimizer discounts the COLUMN_SCAN price
    #     by this fraction (floored at one zone-map check), which is how
    #     segment skipping becomes visible to access-path choice.  Must
    #     be an uncharged estimate — it runs during planning.


Catalog = dict
"""table name -> TableAccess; what engines hand to the planner."""
