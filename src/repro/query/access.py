"""The access-path abstraction between engines and the query layer.

Every HTAP engine exposes each of its tables as a :class:`TableAccess`:
the *same* logical data reachable through a row path (tuple-at-a-time,
cheap per lookup, expensive per full scan) and/or a column path
(vectorized, cheap per value).  The optimizer's job — the "hybrid
row/column scan" of Table 2 — is choosing between them per table per
query, with identical results either way.
"""

from __future__ import annotations

import enum
from typing import Protocol

import numpy as np

from ..common.predicate import Predicate
from ..common.types import Row, Schema
from .statistics import TableStats


class AccessPath(enum.Enum):
    ROW_SCAN = "row_scan"          # full scan of the row store
    INDEX_LOOKUP = "index_lookup"  # selective B+-tree / pk access, then verify
    COLUMN_SCAN = "column_scan"    # vectorized scan of the columnar image


class TableAccess(Protocol):
    """What the planner/executor need from one engine table."""

    def schema(self) -> Schema: ...

    def stats(self) -> TableStats: ...

    def available_paths(self) -> set[AccessPath]: ...

    def scan_rows(self, predicate: Predicate) -> list[Row]:
        """Row path: matching rows from the (freshest) row-side store."""
        ...

    def scan_columns(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        """Column path: arrays for ``columns`` of matching rows."""
        ...

    def index_lookup_rows(self, predicate: Predicate) -> list[Row] | None:
        """Index path: matching rows, or None when no usable index."""
        ...


Catalog = dict
"""table name -> TableAccess; what engines hand to the planner."""
