"""MVCC-aware snapshot-scan cache.

Every AP query in the testbed starts by materializing dict-of-arrays
column batches out of a store (an MVCC row store, an IMCU, a columnar
replica, ...).  The survey's point about avoiding redundant TP→AP data
movement is modeled here: a batch is cached under a key that pins down
*exactly* which data it holds —

    (table, access path, needed columns, predicate, version token)

The version token comes from the engine's table adapter
(``cache_token()``) and encodes the reader snapshot plus every
mutation counter that can change what the scan would return (row-store
installs/vacuums, delta sizes, merge generations, replica apply
timestamps).  Two consequences:

* a hit is provably snapshot-correct — any commit, merge, sync, or
  vacuum changes the token, so the stale entry can never be returned
  for the new state (it just stops being reachable);
* batches are never shared across snapshot timestamps — a different
  ``snapshot_ts`` is a different key (MVCC isolation).

Token mismatches leave dead entries behind; the engine write paths
*also* call :meth:`ScanCache.invalidate` so stale batches are dropped
eagerly instead of waiting for LRU eviction.  Hit/miss/eviction/
invalidation counts are exported as plain attributes and through the
``obs`` :class:`~repro.obs.registry.MetricsRegistry`
(``scan_cache.hits`` / ``scan_cache.misses`` / ``scan_cache.evictions``
/ ``scan_cache.invalidations``, plus the ``scan_cache.entries`` and
``scan_cache.bytes`` gauges).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Mapping

import numpy as np

from ..obs.registry import get_registry

Batch = dict
CacheKey = tuple
"""(table, path, columns, predicate, token) — see module docstring."""

#: Sized for the session tier: a 1k-session prepared-statement mix
#: keeps a few hundred live (predicate, token) point-read batches; at
#: 64 the LRU thrashed (evictions ≫ hits) while batches average well
#: under a kilobyte, so a deeper cache costs ~¼ MB.
DEFAULT_CAPACITY = 512


class ScanCache:
    """LRU cache of scan batches keyed by (table, path, columns,
    predicate, snapshot/version token)."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        labels: Mapping[str, str] | None = None,
    ):
        if capacity < 1:
            raise ValueError("scan cache capacity must be >= 1")
        self._capacity = capacity
        self._entries: OrderedDict[CacheKey, Batch] = OrderedDict()
        #: Approximate per-entry footprint (array buffer bytes; object
        #: arrays count their 8-byte pointers, not payloads).
        self._entry_bytes: dict[CacheKey, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Entries dropped by test/bench ``clear()`` resets — kept out
        #: of ``invalidations`` so that obs series only counts real
        #: write-path invalidations.
        self.clears = 0
        self.bytes = 0
        labels = dict(labels or {})
        reg = get_registry()
        self._hit_counter = reg.counter("scan_cache.hits", **labels)
        self._miss_counter = reg.counter("scan_cache.misses", **labels)
        self._eviction_counter = reg.counter("scan_cache.evictions", **labels)
        self._invalidation_counter = reg.counter("scan_cache.invalidations", **labels)
        self._entries_gauge = reg.gauge("scan_cache.entries", **labels)
        self._bytes_gauge = reg.gauge("scan_cache.bytes", **labels)

    # ------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Batch | None:
        """The cached batch for ``key``, or None; counts a hit/miss.

        Hits hand out a *shallow* copy of the entry: the column arrays
        (frozen read-only at :meth:`put`) stay shared, but the mapping
        itself is private — a caller adding/replacing columns in its
        result batch cannot poison other readers of the same hit.
        """
        batch = self._entries.get(key)
        if batch is None:
            self.misses += 1
            self._miss_counter.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._hit_counter.inc()
        return dict(batch)

    def put(self, key: CacheKey, batch: Mapping[str, np.ndarray]) -> None:
        if key in self._entries:
            self.bytes -= self._entry_bytes[key]
        # Decouple the entry from the caller's mapping and freeze the
        # array columns as zero-copy read-only views: any consumer that
        # tries to write through a hit raises instead of silently
        # corrupting every later hit for this key.  (Producers hand the
        # cache ownership — scan paths build a fresh batch per miss —
        # so there is no writable original left to mutate around the
        # freeze.)
        entry = {}
        for name, value in batch.items():
            if isinstance(value, np.ndarray):
                view = value.view()
                view.flags.writeable = False
                entry[name] = view
            else:
                entry[name] = value
        # Columns may be plain ndarrays or encoded CodeColumns; both
        # expose nbytes (codes + dictionary for the latter).
        size = 0
        for arr in entry.values():
            nbytes = getattr(arr, "nbytes", None)
            size += int(nbytes) if nbytes is not None else int(np.asarray(arr).nbytes)
        self._entries[key] = entry
        self._entry_bytes[key] = size
        self.bytes += size
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.bytes -= self._entry_bytes.pop(evicted)
            self.evictions += 1
            self._eviction_counter.inc()
        self._entries_gauge.set(len(self._entries))
        self._bytes_gauge.set(self.bytes)

    # ------------------------------------------------------------- invalidation

    def invalidate(
        self,
        table: str | None = None,
        keep: Callable[[CacheKey], bool] | None = None,
    ) -> int:
        """Drop entries for ``table`` (or all); returns how many dropped.

        Correctness never depends on this being called — version tokens
        already fence stale entries off — but engines call it on their
        write/sync paths so dead batches free memory immediately.
        ``keep`` lets a write path spare entries its mutation provably
        cannot affect (e.g. scans of a stale columnar image whose token
        only moves on repopulation); keeping too much is still safe.
        """
        if table is None:
            dropped = len(self._entries)
            self._entries.clear()
            self._entry_bytes.clear()
            self.bytes = 0
        else:
            stale = [
                key
                for key in self._entries
                if key[0] == table and (keep is None or not keep(key))
            ]
            dropped = len(stale)
            for key in stale:
                del self._entries[key]
                self.bytes -= self._entry_bytes.pop(key)
        if dropped:
            self.invalidations += dropped
            self._invalidation_counter.inc(dropped)
            self._entries_gauge.set(len(self._entries))
            self._bytes_gauge.set(self.bytes)
        return dropped

    def clear(self) -> None:
        """Drop everything *without* counting an invalidation.

        Resets between tests/bench phases are bookkeeping, not
        write-path activity; routing them through :meth:`invalidate`
        inflated the ``scan_cache.invalidations`` obs series on every
        reset.  Clears are tallied separately in :attr:`clears`.
        """
        dropped = len(self._entries)
        self._entries.clear()
        self._entry_bytes.clear()
        self.bytes = 0
        if dropped:
            self.clears += dropped
            self._entries_gauge.set(0)
            self._bytes_gauge.set(0)

    # ------------------------------------------------------------- stats

    @property
    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "clears": self.clears,
            "entries": len(self._entries),
            "bytes": self.bytes,
        }
