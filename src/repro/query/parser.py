"""A compact SQL parser for the testbed's query subset.

Covers what the CH-benCHmark-style workload needs::

    SELECT expr [AS alias], ...
    FROM t1 [, t2 ...] | t1 JOIN t2 ON a = b [JOIN ...]
    [WHERE cond [AND|OR cond]...]
    [GROUP BY col, ...]
    [ORDER BY expr [ASC|DESC], ...]
    [LIMIT n]

Conditions support =, !=, <, <=, >, >=, BETWEEN..AND, IN (...), NOT and
parentheses.  A comparison between two *column references* is treated
as an equi-join condition; everything else folds into the row/column
predicate.  Aggregates: SUM, COUNT(*), COUNT, AVG, MIN, MAX over
arithmetic expressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..common.errors import SqlSyntaxError
from ..common.predicate import (
    ALWAYS_TRUE,
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Param,
    Predicate,
)
from .ast import (
    AggFunc,
    Aggregate,
    Arith,
    ColumnRef,
    Expr,
    HavingCondition,
    JoinCondition,
    Literal,
    OrderItem,
    Query,
    SelectItem,
)

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>\d+\.\d+|\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*+\-/.?])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "limit", "and", "or",
    "not", "between", "in", "as", "join", "on", "asc", "desc", "sum", "count",
    "avg", "min", "max", "having", "distinct",
}

_AGG_FUNCS = {
    "sum": AggFunc.SUM,
    "count": AggFunc.COUNT,
    "avg": AggFunc.AVG,
    "min": AggFunc.MIN,
    "max": AggFunc.MAX,
}


@dataclass(frozen=True)
class _Token:
    kind: str  # number | string | ident | keyword | op | punct | eof
    text: str
    pos: int


def tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        if sql[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(sql, pos)
        if match is None or match.start() != pos:
            raise SqlSyntaxError(f"unexpected character {sql[pos]!r}", pos)
        if match.group("number") is not None:
            tokens.append(_Token("number", match.group("number"), pos))
        elif match.group("string") is not None:
            tokens.append(_Token("string", match.group("string"), pos))
        elif match.group("ident") is not None:
            text = match.group("ident")
            kind = "keyword" if text.lower() in _KEYWORDS else "ident"
            tokens.append(_Token(kind, text, pos))
        elif match.group("op") is not None:
            tokens.append(_Token("op", match.group("op"), pos))
        else:
            tokens.append(_Token("punct", match.group("punct"), pos))
        pos = match.end()
    tokens.append(_Token("eof", "", len(sql)))
    return tokens


class _Parser:
    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = tokenize(sql)
        self._i = 0
        # ``?`` placeholders are numbered left to right; they are only
        # legal in WHERE value slots (prepared-statement surface).
        self._param_count = 0
        self._in_where = False

    # ------------------------------------------------------------- cursor

    def _peek(self) -> _Token:
        return self._tokens[self._i]

    def _next(self) -> _Token:
        token = self._tokens[self._i]
        self._i += 1
        return token

    def _accept_keyword(self, *words: str) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.text.lower() in words:
            self._i += 1
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word.upper()}, found {self._peek().text!r}",
                self._peek().pos,
            )

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token.kind == "punct" and token.text == char:
            self._i += 1
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        if not self._accept_punct(char):
            raise SqlSyntaxError(
                f"expected {char!r}, found {self._peek().text!r}", self._peek().pos
            )

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "ident":
            raise SqlSyntaxError(
                f"expected identifier, found {token.text!r}", token.pos
            )
        self._i += 1
        return token.text

    # ------------------------------------------------------------- grammar

    def parse_query(self) -> Query:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        select = self._select_list()
        self._expect_keyword("from")
        tables, join_conditions = self._table_list()
        where: Predicate = ALWAYS_TRUE
        if self._accept_keyword("where"):
            self._in_where = True
            where, extra_joins = self._condition()
            self._in_where = False
            join_conditions.extend(extra_joins)
        group_by: list[str] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._expect_ident())
            while self._accept_punct(","):
                group_by.append(self._expect_ident())
        having: list[HavingCondition] = []
        if self._accept_keyword("having"):
            having.append(self._having_condition())
            while self._accept_keyword("and"):
                having.append(self._having_condition())
        order_by: list[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("limit"):
            token = self._next()
            if token.kind != "number":
                raise SqlSyntaxError("LIMIT needs a number", token.pos)
            limit = int(token.text)
        if self._peek().kind != "eof":
            raise SqlSyntaxError(
                f"unexpected trailing input {self._peek().text!r}", self._peek().pos
            )
        return Query(
            tables=tables,
            select=select,
            where=where,
            joins=join_conditions,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            param_count=self._param_count,
        )

    def _select_list(self) -> list[SelectItem]:
        items: list[SelectItem] = []
        while True:
            if self._accept_punct("*"):
                items.append(SelectItem(expr=ColumnRef("*")))
            else:
                expr = self._expr()
                alias = None
                if self._accept_keyword("as"):
                    alias = self._expect_ident()
                items.append(SelectItem(expr=expr, alias=alias))
            if not self._accept_punct(","):
                return items

    def _table_list(self) -> tuple[list[str], list[JoinCondition]]:
        tables = [self._expect_ident()]
        joins: list[JoinCondition] = []
        while True:
            if self._accept_punct(","):
                tables.append(self._expect_ident())
            elif self._accept_keyword("join"):
                tables.append(self._expect_ident())
                self._expect_keyword("on")
                left = self._expect_ident()
                op = self._next()
                if op.text != "=":
                    raise SqlSyntaxError("JOIN ON supports only equality", op.pos)
                right = self._expect_ident()
                joins.append(JoinCondition(left, right))
            else:
                return tables, joins

    def _having_condition(self) -> HavingCondition:
        expr = self._expr()
        op_token = self._next()
        if op_token.kind != "op":
            raise SqlSyntaxError(
                f"expected comparison in HAVING, found {op_token.text!r}",
                op_token.pos,
            )
        op = "!=" if op_token.text == "<>" else op_token.text
        return HavingCondition(expr=expr, op=op, value=self._value())

    def _order_item(self) -> OrderItem:
        expr = self._expr()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(expr=expr, ascending=ascending)

    # --------------------------------------------------------- conditions

    def _condition(self) -> tuple[Predicate, list[JoinCondition]]:
        return self._or_condition()

    def _or_condition(self) -> tuple[Predicate, list[JoinCondition]]:
        pred, joins = self._and_condition()
        parts = [pred]
        while self._accept_keyword("or"):
            rhs, rhs_joins = self._and_condition()
            if rhs_joins or joins:
                raise SqlSyntaxError("join conditions cannot appear under OR")
            parts.append(rhs)
        if len(parts) == 1:
            return pred, joins
        return Or(parts), joins

    def _and_condition(self) -> tuple[Predicate, list[JoinCondition]]:
        preds: list[Predicate] = []
        joins: list[JoinCondition] = []
        pred, j = self._not_condition()
        if pred is not None:
            preds.append(pred)
        joins.extend(j)
        while self._accept_keyword("and"):
            pred, j = self._not_condition()
            if pred is not None:
                preds.append(pred)
            joins.extend(j)
        if not preds:
            return ALWAYS_TRUE, joins
        if len(preds) == 1:
            return preds[0], joins
        return And(preds), joins

    def _not_condition(self) -> tuple[Predicate | None, list[JoinCondition]]:
        if self._accept_keyword("not"):
            pred, joins = self._not_condition()
            if joins or pred is None:
                raise SqlSyntaxError("NOT cannot wrap a join condition")
            return Not(pred), []
        if self._accept_punct("("):
            pred, joins = self._condition()
            self._expect_punct(")")
            return pred, joins
        return self._comparison()

    def _comparison(self) -> tuple[Predicate | None, list[JoinCondition]]:
        column = self._expect_ident()
        if self._accept_keyword("between"):
            low = self._value()
            self._expect_keyword("and")
            high = self._value()
            return Between(column, low, high), []
        if self._accept_keyword("in"):
            self._expect_punct("(")
            values = [self._value()]
            while self._accept_punct(","):
                values.append(self._value())
            self._expect_punct(")")
            return InList(column, values), []
        op_token = self._next()
        if op_token.kind != "op":
            raise SqlSyntaxError(
                f"expected comparison operator, found {op_token.text!r}", op_token.pos
            )
        op = "!=" if op_token.text == "<>" else op_token.text
        rhs = self._peek()
        if rhs.kind == "ident":
            # column <op> column: an equi-join condition.
            if op != "=":
                raise SqlSyntaxError(
                    "only equality joins are supported", rhs.pos
                )
            right = self._expect_ident()
            return None, [JoinCondition(column, right)]
        value = self._value()
        return Comparison(column, op, value), []

    def _value(self):
        token = self._next()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "punct" and token.text == "?":
            if not self._in_where:
                raise SqlSyntaxError(
                    "parameters (?) are only supported in WHERE", token.pos
                )
            param = Param(self._param_count)
            self._param_count += 1
            return param
        if token.kind == "punct" and token.text == "-":
            inner = self._value()
            if isinstance(inner, Param):
                raise SqlSyntaxError(
                    "cannot negate a parameter; bind the sign instead", token.pos
                )
            return -inner
        raise SqlSyntaxError(f"expected a literal, found {token.text!r}", token.pos)

    # --------------------------------------------------------- expressions

    def _expr(self) -> Expr:
        left = self._term()
        while True:
            token = self._peek()
            if token.kind == "punct" and token.text in ("+", "-"):
                self._i += 1
                left = Arith(token.text, left, self._term())
            else:
                return left

    def _term(self) -> Expr:
        left = self._factor()
        while True:
            token = self._peek()
            if token.kind == "punct" and token.text in ("*", "/"):
                self._i += 1
                left = Arith(token.text, left, self._factor())
            else:
                return left

    def _factor(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._i += 1
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            self._i += 1
            return Literal(token.text[1:-1].replace("''", "'"))
        if token.kind == "punct" and token.text == "(":
            self._i += 1
            expr = self._expr()
            self._expect_punct(")")
            return expr
        if token.kind == "punct" and token.text == "-":
            self._i += 1
            return Arith("-", Literal(0), self._factor())
        if token.kind == "keyword" and token.text.lower() in _AGG_FUNCS:
            func = _AGG_FUNCS[token.text.lower()]
            self._i += 1
            self._expect_punct("(")
            if func is AggFunc.COUNT and self._accept_punct("*"):
                self._expect_punct(")")
                return Aggregate(func=func, arg=None)
            arg = self._expr()
            self._expect_punct(")")
            return Aggregate(func=func, arg=arg)
        if token.kind == "ident":
            self._i += 1
            return ColumnRef(token.text)
        raise SqlSyntaxError(f"unexpected token {token.text!r}", token.pos)


def parse(sql: str) -> Query:
    """Parse ``sql`` into a logical :class:`~repro.query.ast.Query`."""
    return _Parser(sql).parse_query()
