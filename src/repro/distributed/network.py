"""A deterministic simulated network.

Message passing for the distributed substrate (architecture (b)):
every send is enqueued with a delivery time = now + one-way latency,
and the cluster advances simulated time step by step, delivering due
messages to registered node handlers.  Partitions drop messages in
either direction.  Everything is seeded and single-threaded, so Raft
elections and 2PC outcomes are reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..common.cost import CostModel
from ..obs import Histogram, get_registry

Handler = Callable[[str, Any], None]
"""(source node id, message) -> None."""


@dataclass(order=True)
class _Envelope:
    deliver_at_us: float
    seq: int
    src: str = field(compare=False)
    dst: str = field(compare=False)
    message: Any = field(compare=False)
    sent_at_us: float = field(compare=False, default=0.0)


class SimNetwork:
    """Priority-queue message bus over the shared simulated clock."""

    def __init__(self, cost: CostModel | None = None):
        self._cost = cost or CostModel()
        self._handlers: dict[str, Handler] = {}
        self._queue: list[_Envelope] = []
        self._seq = itertools.count()
        self._cut: set[frozenset[str]] = set()
        self._down: set[str] = set()
        self._tickers: list[Callable[[], None]] = []
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        registry = get_registry()
        self._m_sent = registry.counter("network.sent")
        self._m_delivered = registry.counter("network.delivered")
        self._m_dropped = registry.counter("network.dropped")
        self._link_hists: dict[tuple[str, str], Histogram] = {}

    def add_ticker(self, ticker: Callable[[], None]) -> None:
        """Register a callback run after every delivery hop in
        :meth:`advance` — how Raft groups drive their timeouts in step
        with the whole simulated world, not just their own activity."""
        self._tickers.append(ticker)

    def remove_ticker(self, ticker: Callable[[], None]) -> None:
        """Forget a ticker (a retired Raft group stops driving time).
        Idempotent: retiring twice is a no-op."""
        if ticker in self._tickers:
            self._tickers.remove(ticker)

    def _run_tickers(self) -> None:
        for ticker in self._tickers:
            ticker()

    # ------------------------------------------------------------- topology

    def register(self, node_id: str, handler: Handler) -> None:
        if node_id in self._handlers:
            raise ValueError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        """Remove a node entirely (a merged-away shard's replicas).
        In-flight messages to it are dropped at delivery time."""
        self._handlers.pop(node_id, None)
        self._down.discard(node_id)

    def node_ids(self) -> list[str]:
        return list(self._handlers)

    def partition(self, a: str, b: str) -> None:
        """Cut the link between ``a`` and ``b`` (both directions)."""
        self._cut.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._cut.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        """Restore every cut link.  Crashed nodes stay down — bringing
        them back is a different fault-injection action
        (:meth:`restart` / :meth:`restart_all`)."""
        self._cut.clear()

    def crash(self, node_id: str) -> None:
        """Silence a node: nothing is delivered to or from it."""
        self._down.add(node_id)

    def restart(self, node_id: str) -> None:
        self._down.discard(node_id)

    def restart_all(self) -> None:
        """Bring every crashed node back up (links are untouched)."""
        self._down.clear()

    def _link_ok(self, src: str, dst: str) -> bool:
        if src in self._down or dst in self._down:
            return False
        return frozenset((src, dst)) not in self._cut

    # ------------------------------------------------------------- transport

    def send(self, src: str, dst: str, message: Any) -> None:
        """Queue a message; latency/drops are decided at delivery time."""
        self.sent += 1
        self._m_sent.inc()
        now = self._cost.now_us()
        deliver_at = now + self._cost.network_oneway_us
        heapq.heappush(
            self._queue,
            _Envelope(deliver_at, next(self._seq), src, dst, message, sent_at_us=now),
        )

    def broadcast(self, src: str, dsts: list[str], message: Any) -> None:
        for dst in dsts:
            self.send(src, dst, message)

    # ------------------------------------------------------------- simulation

    def pending(self) -> int:
        return len(self._queue)

    def next_delivery_us(self) -> float | None:
        return self._queue[0].deliver_at_us if self._queue else None

    def deliver_due(self) -> int:
        """Deliver every message whose time has come; returns the count."""
        count = 0
        now = self._cost.now_us()
        while self._queue and self._queue[0].deliver_at_us <= now:
            env = heapq.heappop(self._queue)
            if not self._link_ok(env.src, env.dst):
                self.dropped += 1
                self._m_dropped.inc()
                continue
            handler = self._handlers.get(env.dst)
            if handler is None:
                self.dropped += 1
                self._m_dropped.inc()
                continue
            handler(env.src, env.message)
            self.delivered += 1
            self._m_delivered.inc()
            self._link_latency(env.src, env.dst).observe(
                self._cost.now_us() - env.sent_at_us
            )
            count += 1
        return count

    def _link_latency(self, src: str, dst: str) -> Histogram:
        hist = self._link_hists.get((src, dst))
        if hist is None:
            hist = get_registry().histogram(
                "network.latency_us", link=f"{src}->{dst}"
            )
            self._link_hists[(src, dst)] = hist
        return hist

    def advance(self, delta_us: float) -> int:
        """Advance simulated time by ``delta_us``, delivering en route.

        Time moves in hops to each delivery instant so that handlers
        observing ``now_us()`` see causally consistent clocks.
        """
        target = self._cost.now_us() + delta_us
        delivered = 0
        while True:
            nxt = self.next_delivery_us()
            if nxt is None or nxt > target:
                break
            self._cost.clock.advance(max(0.0, nxt - self._cost.now_us()))
            delivered += self.deliver_due()
            self._run_tickers()
        remaining = target - self._cost.now_us()
        if remaining > 0:
            self._cost.clock.advance(remaining)
        self._run_tickers()
        return delivered

    def run_until_quiet(self, max_us: float = 10_000_000.0) -> None:
        """Advance until no messages remain (bounded by ``max_us``)."""
        spent = 0.0
        while self._queue and spent < max_us:
            nxt = self.next_delivery_us()
            assert nxt is not None
            hop = max(0.0, nxt - self._cost.now_us())
            self.advance(hop or 1.0)
            spent += hop or 1.0
