"""A simulated distributed HTAP cluster (architecture (b)'s substrate).

Physical layout: ``n_storage_nodes`` row-store nodes host the voting
replicas of every region's Raft group (placement round-robin), and one
or more analytics nodes host non-voting *learner* replicas that convert
the replicated log into columnar form (per-table delta logs + column
store) — precisely TiDB's design as the survey describes it:

    "asynchronously replicates Raft logs from the leader node to
    follower nodes storing the data in the row-based replicas. The
    logs are also sent to learner nodes that store the data in
    columnar format."

Transactions touching one region commit through that region's Raft
group alone; cross-region transactions run two-phase commit whose
participants are Raft-replicated regions ("2PC+Raft+logging").

Simulated time measures *latency*; per-physical-node busy time in a
:class:`BusyLedger` measures *throughput* (makespan = the bottleneck
node's busy time), which is how scale-out shows up in the benches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from ..common.clock import LogicalClock, Timestamp
from ..common.cost import CostModel
from ..common.errors import (
    KeyNotFoundError,
    TransactionAborted,
    TwoPhaseCommitError,
)
from ..common.predicate import ALWAYS_TRUE, Predicate
from ..common.types import Key, Row, Schema
from ..obs import get_registry
from ..storage.column_store import ColumnScanResult, ColumnStore
from ..storage.delta_batch import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_UPDATE,
    DeltaBatch,
)
from ..storage.delta_log import LogDeltaManager
from ..storage.delta_store import DeltaEntry, DeltaKind, collapse_entries
from .network import SimNetwork
from .partitioner import HashPartitioner
from .raft import RaftGroup
from .two_phase_commit import TwoPhaseCoordinator, TxnOutcome, Vote


class WriteKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


def _runs_by_table(writes):
    """Group one commit's writes by table, preserving per-table order.
    Single-table transactions (the common case) pass through without
    building intermediate groups."""
    if not writes:
        return ()
    first = writes[0].table
    if all(w.table == first for w in writes):
        return ((first, writes),)
    groups: dict[str, list] = {}
    for w in writes:
        groups.setdefault(w.table, []).append(w)
    return groups.items()


@dataclass(frozen=True)
class WriteOp:
    kind: WriteKind
    table: str
    key: Key
    row: Row | None = None


class BusyLedger:
    """Per-physical-node busy time; makespan models parallel execution."""

    def __init__(self) -> None:
        self._busy: dict[str, float] = {}

    def charge(self, node: str, micros: float) -> None:
        self._busy[node] = self._busy.get(node, 0.0) + micros

    def busy(self, node: str) -> float:
        return self._busy.get(node, 0.0)

    def makespan_us(self, nodes: list[str] | None = None) -> float:
        """Bottleneck busy time; restrict to ``nodes`` when given (e.g.
        only the nodes serving OLTP, to measure interference there)."""
        if nodes is None:
            return max(self._busy.values(), default=0.0)
        return max((self._busy.get(n, 0.0) for n in nodes), default=0.0)

    def total_us(self) -> float:
        return sum(self._busy.values())

    def nodes(self) -> list[str]:
        return sorted(self._busy)

    def reset(self) -> None:
        self._busy.clear()

    def snapshot(self) -> dict[str, float]:
        return dict(self._busy)


class RegionStateMachine:
    """Deterministic row-store state machine replicated by one Raft group."""

    def __init__(self, region_id: int, schemas: dict[str, Schema]):
        self.region_id = region_id
        self.schemas = schemas
        self.rows: dict[str, dict[Key, Row]] = {t: {} for t in schemas}
        self.prepared: dict[int, tuple[list[WriteOp], Timestamp]] = {}
        self.vote_log: dict[int, bool] = {}
        self.last_commit_ts: Timestamp = 0
        self.applied_commands = 0

    def apply(self, _index: int, command: tuple) -> None:
        self.applied_commands += 1
        op = command[0]
        if op == "prepare":
            _op, txn_id, writes, commit_ts = command
            ok = self._validate(writes)
            self.vote_log[txn_id] = ok
            if ok:
                self.prepared[txn_id] = (writes, commit_ts)
        elif op == "commit":
            _op, txn_id = command
            staged = self.prepared.pop(txn_id, None)
            if staged is None:
                return  # already applied or never prepared here
            writes, commit_ts = staged
            self._install(writes, commit_ts)
        elif op == "abort":
            _op, txn_id = command
            self.prepared.pop(txn_id, None)
            self.vote_log.pop(txn_id, None)
        elif op == "bulk":
            # Bulk load: pre-validated fresh rows installed in one command.
            _op, table_name, rows, commit_ts = command
            table = self.rows[table_name]
            key_of = self.schemas[table_name].key_of
            for row in rows:
                table[key_of(row)] = row
            self.last_commit_ts = max(self.last_commit_ts, commit_ts)
        else:
            raise TwoPhaseCommitError(f"unknown region command {op!r}")

    def _validate(self, writes: list[WriteOp]) -> bool:
        for w in writes:
            table = self.rows[w.table]
            if w.kind is WriteKind.INSERT and w.key in table:
                return False
            if w.kind in (WriteKind.UPDATE, WriteKind.DELETE) and w.key not in table:
                return False
        return True

    def _install(self, writes: list[WriteOp], commit_ts: Timestamp) -> None:
        for w in writes:
            table = self.rows[w.table]
            if w.kind is WriteKind.DELETE:
                table.pop(w.key, None)
            else:
                table[w.key] = w.row
        self.last_commit_ts = max(self.last_commit_ts, commit_ts)


class ColumnarReplica:
    """The analytics side fed by learner applies: per-table delta logs
    that the log-based delta merge folds into per-table column stores."""

    def __init__(
        self,
        schemas: dict[str, Schema],
        cost: CostModel,
        seal_threshold: int = 64,
        vectorized: bool = True,
    ):
        self._cost = cost
        self.vectorized = vectorized
        self.delta_logs = {
            name: LogDeltaManager(schema, cost=cost, seal_threshold=seal_threshold)
            for name, schema in schemas.items()
        }
        self.column_stores = {
            name: ColumnStore(schema, cost=cost) for name, schema in schemas.items()
        }
        self.applied_ts: Timestamp = 0
        # Keyed by (region, txn_id): each region's learner stream carries
        # only that region's slice of a 2PC transaction, and streams from
        # different regions interleave arbitrarily.
        self._pending: dict[tuple[int, int], tuple[list[WriteOp], Timestamp]] = {}
        registry = get_registry()
        self._m_merge_events = registry.counter("sync.log_merge.events")
        self._m_merge_rows = registry.counter("sync.log_merge.rows")
        self._h_apply_batch = registry.histogram("raft.apply_batch_commands")
        self._h_merge_batch = registry.histogram(
            "sync.batch_rows", technique="replica_merge"
        )
        self._h_merge_latency = registry.histogram(
            "sync.merge_latency_us", technique="replica_merge"
        )

    def learner_apply(self, region: int, _index: int, command: tuple) -> None:
        op = command[0]
        if op == "prepare":
            _op, txn_id, writes, commit_ts = command
            self._pending[(region, txn_id)] = (writes, commit_ts)
        elif op == "commit":
            _op, txn_id = command
            staged = self._pending.pop((region, txn_id), None)
            if staged is None:
                return
            writes, commit_ts = staged
            for w in writes:
                log = self.delta_logs[w.table]
                if w.kind is WriteKind.INSERT:
                    log.record_insert(w.row, commit_ts)
                elif w.kind is WriteKind.UPDATE:
                    log.record_update(w.row, commit_ts)
                else:
                    log.record_delete(w.key, commit_ts)
            self.applied_ts = max(self.applied_ts, commit_ts)
        elif op == "abort":
            _op, txn_id = command
            self._pending.pop((region, txn_id), None)
        elif op == "bulk":
            _op, table, rows, commit_ts = command
            log = self.delta_logs[table]
            for row in rows:
                log.record_insert(row, commit_ts)
            self.applied_ts = max(self.applied_ts, commit_ts)

    def learner_apply_batch(
        self, region: int, _start_index: int, commands: list[tuple]
    ) -> None:
        """Batched log replay: one pass over a committed run of commands,
        accumulating per-table column slabs (kind codes, keys, rows,
        commit timestamps) that land with one columnar bulk append each
        (TiDB's batched learner replay) — no per-write DeltaEntry
        objects on this path."""
        per_table: dict[str, tuple[list, list, list, list]] = {}
        max_ts = self.applied_ts
        pending = self._pending
        insert_kind = WriteKind.INSERT
        delete_kind = WriteKind.DELETE
        for command in commands:
            op = command[0]
            if op == "prepare":
                _op, txn_id, writes, commit_ts = command
                pending[(region, txn_id)] = (writes, commit_ts)
            elif op == "commit":
                staged = pending.pop((region, command[1]), None)
                if staged is None:
                    continue
                writes, commit_ts = staged
                for table, run in _runs_by_table(writes):
                    cols = per_table.get(table)
                    if cols is None:
                        cols = per_table[table] = ([], [], [], [])
                    kinds, keys, rows, ts = cols
                    # Identity checks beat enum-hash dict lookups here.
                    kinds.extend(
                        [
                            KIND_INSERT
                            if w.kind is insert_kind
                            else (
                                KIND_DELETE
                                if w.kind is delete_kind
                                else KIND_UPDATE
                            )
                            for w in run
                        ]
                    )
                    keys.extend([w.key for w in run])
                    rows.extend(
                        [None if w.kind is delete_kind else w.row for w in run]
                    )
                    ts.extend([commit_ts] * len(run))
                if commit_ts > max_ts:
                    max_ts = commit_ts
            elif op == "abort":
                pending.pop((region, command[1]), None)
            elif op == "bulk":
                _op, table, bulk_rows, commit_ts = command
                cols = per_table.get(table)
                if cols is None:
                    cols = per_table[table] = ([], [], [], [])
                kinds, keys, rows, ts = cols
                key_of = self.delta_logs[table].schema.key_of
                kinds.extend([KIND_INSERT] * len(bulk_rows))
                keys.extend([key_of(row) for row in bulk_rows])
                rows.extend(bulk_rows)
                ts.extend([commit_ts] * len(bulk_rows))
                if commit_ts > max_ts:
                    max_ts = commit_ts
        for table, (kinds, keys, rows, ts) in per_table.items():
            self.delta_logs[table].append_batch_columns(kinds, keys, rows, ts)
        self.applied_ts = max_ts
        self._h_apply_batch.observe(len(commands))

    # ------------------------------------------------------------- queries

    def scan(
        self,
        table: str,
        columns: list[str] | None,
        predicate: Predicate = ALWAYS_TRUE,
        read_delta: bool = True,
        encode: bool = False,
    ) -> ColumnScanResult:
        """Log-based delta + column scan (Table 2's second AP technique).

        ``encode=True`` keeps dictionary columns as CodeColumns across
        the delta overlay (fresh log rows fold into the code space with
        a decoded fallback)."""
        store = self.column_stores[table]
        result = store.scan(columns, predicate, encode=encode)
        if not read_delta:
            return result
        live, tombstones = self.delta_logs[table].effective_rows()
        if not live and not tombstones:
            return result
        schema = store.schema
        from ..common.types import rows_to_columns
        from ..storage.code_batch import overlay_arrays

        drop = tombstones | set(live)
        fresh_rows = [
            row for row in live.values() if predicate.matches(row, schema)
        ]
        fresh_columns = rows_to_columns(schema, fresh_rows) if fresh_rows else None
        result.arrays = overlay_arrays(
            result.arrays, result.keys, drop, fresh_rows, fresh_columns
        )
        if drop:
            result.keys = [k for k in result.keys if k not in drop]
        if fresh_rows:
            result.keys.extend(schema.key_of(r) for r in fresh_rows)
        return result

    def merge_deltas(self) -> int:
        """Log-based delta merge: seal + fold every delta file into the
        column stores.  Returns rows merged."""
        start = self._cost.now_us()
        merged = 0
        batch_entries = 0
        for table, log in self.delta_logs.items():
            log.seal()
            files = log.drain_files()
            if not files:
                continue
            self._m_merge_events.inc()
            store = self.column_stores[table]
            if self.vectorized:
                # Concatenate the files' column slabs without ever
                # materializing DeltaEntry objects.
                kinds: list[int] = []
                keys: list = []
                rows: list = []
                ts: list = []
                for f in files:
                    self._cost.charge(self._cost.page_read_us * f.page_count())
                    f_kinds, f_keys, f_rows, f_ts = f.columns()
                    kinds.extend(f_kinds)
                    keys.extend(f_keys)
                    rows.extend(f_rows)
                    ts.extend(f_ts)
                batch_entries += len(keys)
                merged += self._fold_vectorized(store, kinds, keys, rows, ts)
                if ts:
                    store.advance_sync_ts(max(ts))
            else:
                entries: list[DeltaEntry] = []
                for f in files:
                    self._cost.charge(self._cost.page_read_us * f.page_count())
                    entries.extend(f.entries)
                batch_entries += len(entries)
                merged += self._fold_scalar(store, entries)
                if entries:
                    store.advance_sync_ts(max(e.commit_ts for e in entries))
        elapsed = self._cost.now_us() - start
        self._h_merge_batch.observe(batch_entries)
        self._h_merge_latency.observe(elapsed)
        return merged

    def _fold_scalar(self, store: ColumnStore, entries: list[DeltaEntry]) -> int:
        live, tombstones = collapse_entries(entries)
        if tombstones:
            store.delete_keys(tombstones)
        if not live:
            return 0
        rows = list(live.values())
        max_ts = max(e.commit_ts for e in entries)
        self._cost.charge_rows(self._cost.merge_per_row_us, len(rows))
        store.append_rows(rows, commit_ts=max_ts)
        self._m_merge_rows.inc(len(rows))
        return len(rows)

    def _fold_vectorized(
        self,
        store: ColumnStore,
        kinds: list[int],
        keys: list,
        rows: list,
        ts: list,
    ) -> int:
        from ..common.types import rows_to_columns

        collapsed = DeltaBatch.from_columns(kinds, keys, rows, ts).collapse()
        if collapsed.tombstones:
            store.delete_batch(collapsed.tombstones)
        if not collapsed.live_keys:
            return 0
        self._cost.charge_rows(self._cost.merge_per_row_us, len(collapsed.live_keys))
        arrays = rows_to_columns(store.schema, collapsed.live_rows)
        store.append_batch(arrays, collapsed.live_keys, commit_ts=max(ts))
        self._m_merge_rows.inc(len(collapsed.live_keys))
        return len(collapsed.live_keys)

    def unmerged_entries(self) -> int:
        return sum(log.pending_entries() for log in self.delta_logs.values())


class DistributedCluster:
    """Regions x Raft x 2PC with columnar learner replicas."""

    def __init__(
        self,
        n_storage_nodes: int = 3,
        replication: int = 3,
        n_regions: int | None = None,
        n_analytic_nodes: int = 1,
        cost: CostModel | None = None,
        clock: LogicalClock | None = None,
        seed: int = 0,
        vectorized: bool = True,
    ):
        if replication > n_storage_nodes:
            replication = n_storage_nodes
        self.cost = cost or CostModel()
        self.clock = clock or LogicalClock()
        self.network = SimNetwork(self.cost)
        self.ledger = BusyLedger()
        self.n_storage_nodes = n_storage_nodes
        self.n_analytic_nodes = max(1, n_analytic_nodes)
        self.replication = replication
        self.n_regions = n_regions if n_regions is not None else n_storage_nodes
        self._seed = seed
        self.vectorized = vectorized
        self.schemas: dict[str, Schema] = {}
        self.partitioner = HashPartitioner(self.n_regions)
        self.coordinator = TwoPhaseCoordinator(cost=self.cost)
        self.columnar = ColumnarReplica({}, self.cost, vectorized=vectorized)
        self._groups: list[RaftGroup] = []
        self._region_sms: list[dict[str, RegionStateMachine]] = []
        self._region_leader_node: list[list[str]] = []  # physical placement
        self._built = False
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------- build

    def create_table(self, schema: Schema) -> None:
        if self._built:
            raise TwoPhaseCommitError("create every table before first commit")
        self.schemas[schema.table_name] = schema

    def _build(self) -> None:
        if self._built:
            return
        self._built = True
        self.columnar = ColumnarReplica(
            self.schemas, self.cost, vectorized=self.vectorized
        )
        for region in range(self.n_regions):
            voters = []
            placement = []
            for r in range(self.replication):
                phys = (region + r) % self.n_storage_nodes
                voters.append(f"r{region}.n{phys}")
                placement.append(f"n{phys}")
            learner_id = f"r{region}.learner"
            sms = {v: RegionStateMachine(region, self.schemas) for v in voters}
            apply_fns = {v: sms[v].apply for v in voters}
            apply_batch_fns = {}
            if self.vectorized:
                # Learners replay committed runs in batches; voters keep
                # the per-entry apply (their 2PC votes are read between
                # individual proposals).
                def _learner_apply_batch(start, commands, _region=region):
                    self.columnar.learner_apply_batch(_region, start, commands)

                apply_batch_fns[learner_id] = _learner_apply_batch
            else:

                def _learner_apply(index, command, _region=region):
                    self.columnar.learner_apply(_region, index, command)

                apply_fns[learner_id] = _learner_apply
            group = RaftGroup(
                group_id=f"region{region}",
                voter_ids=voters,
                learner_ids=[learner_id],
                network=self.network,
                cost=self.cost,
                apply_fns=apply_fns,
                seed=self._seed + region,
                # Home-node preference spreads leaders round-robin over
                # the physical nodes (PD-style leader balancing).
                preferred_leader=voters[0],
                apply_batch_fns=apply_batch_fns,
            )
            self._groups.append(group)
            self._region_sms.append(sms)
            self._region_leader_node.append(placement)
        for group in self._groups:
            group.elect_leader()

    def _phys_node_of_leader(self, region: int) -> str:
        leader = self._groups[region].elect_leader()
        # leader id is "r<region>.n<phys>"
        return leader.node_id.split(".", 1)[1]

    # ------------------------------------------------------------- writes

    def region_of(self, table: str, key: Key) -> int:
        return self.partitioner.region_of((table, key))

    def execute_transaction(self, writes: list[WriteOp]) -> Timestamp:
        """Commit ``writes`` atomically; raises TransactionAborted on
        validation failure at any region."""
        self._build()
        if not writes:
            raise TwoPhaseCommitError("empty transaction")
        by_region: dict[int, list[WriteOp]] = {}
        for w in writes:
            if w.table not in self.schemas:
                raise KeyNotFoundError(f"no table {w.table!r}")
            by_region.setdefault(self.region_of(w.table, w.key), []).append(w)
        commit_ts = self.clock.tick()
        participants = {
            f"region{r}": _RaftRegionParticipant(self, r) for r in by_region
        }
        payloads = {
            f"region{r}": (ws, commit_ts) for r, ws in by_region.items()
        }
        # Busy accounting: the leader node of each region does the work.
        for r, ws in by_region.items():
            phys = self._phys_node_of_leader(r)
            per_write = self.cost.row_point_write_us + self.cost.wal_append_us
            self.ledger.charge(phys, len(ws) * per_write + self.cost.wal_fsync_us)
            # Follower replication work (parallel, on other nodes).
            for replica_node in self._region_leader_node[r][1:]:
                self.ledger.charge(replica_node, len(ws) * self.cost.wal_append_us)
        result = self.coordinator.execute(payloads, participants)
        if result.outcome is TxnOutcome.ABORTED:
            self.aborts += 1
            raise TransactionAborted(result.txn_id, "region validation failed")
        self.commits += 1
        return commit_ts

    def bulk_load(self, table: str, rows: list[Row]) -> Timestamp:
        """Load pre-validated fresh rows through Raft in one command per
        region instead of one 2PC transaction per row batch."""
        self._build()
        if table not in self.schemas:
            raise KeyNotFoundError(f"no table {table!r}")
        if not rows:
            return self.clock.now()
        schema = self.schemas[table]
        by_region: dict[int, list[Row]] = {}
        for row in rows:
            row = schema.validate_row(row)
            by_region.setdefault(self.region_of(table, schema.key_of(row)), []).append(
                row
            )
        commit_ts = self.clock.tick()
        for region, region_rows in by_region.items():
            phys = self._phys_node_of_leader(region)
            per_write = self.cost.row_point_write_us + self.cost.wal_append_us
            self.ledger.charge(
                phys, len(region_rows) * per_write + self.cost.wal_fsync_us
            )
            for replica_node in self._region_leader_node[region][1:]:
                self.ledger.charge(
                    replica_node, len(region_rows) * self.cost.wal_append_us
                )
            self._groups[region].propose_and_wait(
                ("bulk", table, tuple(region_rows), commit_ts)
            )
        self.commits += 1
        return commit_ts

    # ------------------------------------------------------------- reads

    def read(self, table: str, key: Key) -> Row | None:
        """Point read served by the owning region's leader replica."""
        self._build()
        region = self.region_of(table, key)
        self.cost.charge(self.cost.network_rtt_us)
        leader = self._groups[region].elect_leader()
        sm = self._region_sms[region][leader.node_id]
        self.cost.charge(self.cost.row_point_read_us)
        self.ledger.charge(
            self._phys_node_of_leader(region), self.cost.row_point_read_us
        )
        return sm.rows[table].get(key)

    def row_scan(self, table: str, predicate: Predicate = ALWAYS_TRUE) -> list[Row]:
        """Scatter-gather scan over every region's leader (row path)."""
        self._build()
        schema = self.schemas[table]
        out: list[Row] = []
        for region in range(self.n_regions):
            self.cost.charge(self.cost.network_rtt_us)
            leader = self._groups[region].elect_leader()
            sm = self._region_sms[region][leader.node_id]
            rows = sm.rows[table]
            self.cost.charge_rows(self.cost.row_scan_per_row_us, max(len(rows), 1))
            self.ledger.charge(
                self._phys_node_of_leader(region),
                self.cost.row_scan_per_row_us * max(len(rows), 1),
            )
            out.extend(r for r in rows.values() if predicate.matches(r, schema))
        return out

    def analytic_scan(
        self,
        table: str,
        columns: list[str] | None = None,
        predicate: Predicate = ALWAYS_TRUE,
        read_delta: bool = True,
        encode: bool = False,
    ) -> ColumnScanResult:
        """Columnar scan on the analytics tier (learner-fed)."""
        self._build()
        return self.columnar.scan(table, columns, predicate, read_delta, encode)

    # ------------------------------------------------------------- sync & time

    def advance(self, delta_us: float) -> None:
        """Let replication/heartbeats make progress (world-wide tick)."""
        self._build()
        self.network.advance(delta_us)

    def drain_replication(self, max_us: float = 50_000.0) -> None:
        """Advance until learners have applied everything committed."""
        self._build()
        spent = 0.0
        while spent < max_us:
            lagging = any(
                g.elect_leader().commit_index
                > g.nodes[f"r{i}.learner"].last_applied
                for i, g in enumerate(self._groups)
            )
            if not lagging and self.network.pending() == 0:
                return
            self.advance(500.0)
            spent += 500.0

    def sync(self) -> int:
        """Ship + merge learner delta logs into the column stores."""
        self._build()
        self.drain_replication()
        return self.columnar.merge_deltas()

    def freshness_lag_ts(self) -> int:
        """Commit-timestamp distance between OLTP truth and the AP view.

        Measured at the most-stale table: a table with unsealed (not yet
        shipped) delta entries is only fresh up to its last sealed or
        merged timestamp.
        """
        newest = self.clock.now()
        lags = []
        for table, log in self.columnar.delta_logs.items():
            store_ts = self.columnar.column_stores[table].max_commit_ts()
            visible = max(log.max_sealed_ts(), store_ts)
            if log.unsealed_entries() > 0:
                lags.append(max(0, newest - visible))
        return max(lags, default=0)

    # ------------------------------------------------------------- helpers

    def insert(self, table: str, row: Row) -> Timestamp:
        schema = self.schemas[table]
        row = schema.validate_row(row)
        return self.execute_transaction(
            [WriteOp(WriteKind.INSERT, table, schema.key_of(row), row)]
        )

    def update(self, table: str, row: Row) -> Timestamp:
        schema = self.schemas[table]
        row = schema.validate_row(row)
        return self.execute_transaction(
            [WriteOp(WriteKind.UPDATE, table, schema.key_of(row), row)]
        )

    def delete(self, table: str, key: Key) -> Timestamp:
        return self.execute_transaction([WriteOp(WriteKind.DELETE, table, key, None)])


class _RaftRegionParticipant:
    """Adapts one Raft-replicated region to the 2PC Participant protocol."""

    def __init__(self, cluster: DistributedCluster, region: int):
        self._cluster = cluster
        self._region = region
        self._group = cluster._groups[region]

    def _leader_sm(self) -> RegionStateMachine:
        leader = self._group.elect_leader()
        return self._cluster._region_sms[self._region][leader.node_id]

    def prepare(self, txn_id: int, payload: Any) -> Vote:
        writes, commit_ts = payload
        self._group.propose_and_wait(("prepare", txn_id, writes, commit_ts))
        ok = self._leader_sm().vote_log.get(txn_id, False)
        return Vote.YES if ok else Vote.NO

    def commit(self, txn_id: int) -> None:
        self._group.propose_and_wait(("commit", txn_id))

    def abort(self, txn_id: int) -> None:
        self._group.propose_and_wait(("abort", txn_id))
