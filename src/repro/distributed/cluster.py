"""A simulated distributed HTAP cluster (architecture (b)'s substrate).

Physical layout: ``n_storage_nodes`` row-store nodes host the voting
replicas of every shard's Raft group (placement round-robin), and one
or more analytics nodes host non-voting *learner* replicas that convert
the replicated log into columnar form (per-table delta logs + column
store) — precisely TiDB's design as the survey describes it:

    "asynchronously replicates Raft logs from the leader node to
    follower nodes storing the data in the row-based replicas. The
    logs are also sent to learner nodes that store the data in
    columnar format."

The key space is elastic: a :class:`~repro.distributed.metadata.ShardMap`
(owned by the cluster's :class:`MetadataService`) tiles the 64-bit hash
ring with contiguous shard intervals, each served by its own Raft
group.  Clients route through stateless
:class:`~repro.distributed.router.Router` caches; shards enforce the
epoch contract by rejecting requests for ring points they no longer own
(:class:`StaleEpochError`), which is what makes online resharding
(:mod:`~repro.distributed.resharding`) safe under live traffic.

Transactions touching one shard commit through that shard's Raft group
alone — the 1PC fast path: validate at the leader, then a single
"commit1p" propose installs the writes, no coordinator, one fsync
instead of two.  Cross-shard transactions default to the piggybacked
one-round protocol (:class:`PiggybackCoordinator`): each participant
durably logs PREPARED + the write intent in one propose, the
coordinator's decision record is the commit point, and the commit
round settles lazily on the next operation that touches each shard.
The classic two-round 2PC ("2PC+Raft+logging") stays available behind
``commit_protocol="baseline"`` for differential testing.  A
:class:`~repro.distributed.metadata.PlacementPolicy` co-locates rows
sharing a placement-key prefix (a district's customers and history, an
order and its lines) on one shard, which is what turns the dominant
TPC-C mix into single-shard transactions in the first place.

Simulated time measures *latency*; per-physical-node busy time in a
:class:`BusyLedger` measures *throughput* (makespan = the bottleneck
node's busy time), which is how scale-out shows up in the benches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..common.clock import LogicalClock, Timestamp
from ..common.cost import CostModel
from ..common.errors import (
    KeyNotFoundError,
    StaleEpochError,
    TransactionAborted,
    TwoPhaseCommitError,
)
from ..common.predicate import ALWAYS_TRUE, Predicate
from ..common.types import Key, Row, Schema
from ..obs import get_registry
from ..storage.column_store import ColumnScanResult
from .metadata import MetadataService, PlacementPolicy, ShardMap, hash_point
from .network import SimNetwork
from .raft import RaftGroup
from .replica import ColumnarReplica, _runs_by_table
from .router import Router
from .two_phase_commit import (
    PiggybackCoordinator,
    TwoPhaseCoordinator,
    TxnOutcome,
    Vote,
)

__all__ = [
    "BusyLedger",
    "ColumnarReplica",
    "DistributedCluster",
    "RegionStateMachine",
    "WriteKind",
    "WriteOp",
    "_runs_by_table",
]


class WriteKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class WriteOp:
    kind: WriteKind
    table: str
    key: Key
    row: Row | None = None


class BusyLedger:
    """Per-physical-node busy time; makespan models parallel execution."""

    def __init__(self) -> None:
        self._busy: dict[str, float] = {}

    def charge(self, node: str, micros: float) -> None:
        self._busy[node] = self._busy.get(node, 0.0) + micros

    def busy(self, node: str) -> float:
        return self._busy.get(node, 0.0)

    def makespan_us(self, nodes: list[str] | None = None) -> float:
        """Bottleneck busy time; restrict to ``nodes`` when given (e.g.
        only the nodes serving OLTP, to measure interference there)."""
        if nodes is None:
            return max(self._busy.values(), default=0.0)
        return max((self._busy.get(n, 0.0) for n in nodes), default=0.0)

    def total_us(self) -> float:
        return sum(self._busy.values())

    def nodes(self) -> list[str]:
        return sorted(self._busy)

    def reset(self) -> None:
        self._busy.clear()

    def snapshot(self) -> dict[str, float]:
        return dict(self._busy)


class RegionStateMachine:
    """Deterministic row-store state machine replicated by one Raft group.

    Beyond the 2PC commands ("prepare"/"commit"/"abort") and "bulk"
    loads, it understands the optimized commit paths — "commit1p" (the
    single-shard 1PC fast path: leader-validated writes installed in
    one command), "intent" (piggybacked prepare: PREPARED + the write
    intent durably logged together) and "resolve" (the lazy commit
    round settling a queued intent) — and the resharding protocol:
    "install" (staged snapshot from a migration source), "tail"
    (dual-logged writes that committed on the source after the snapshot
    barrier), "rehome" (the flip-time authoritative image, also
    consumed by learners), and "truncate" (drop a ring interval that
    migrated away)."""

    def __init__(
        self,
        region_id: int,
        schemas: dict[str, Schema],
        point_fn: Callable[[str, Any], int] = hash_point,
    ):
        self.region_id = region_id
        self.schemas = schemas
        self._point_fn = point_fn
        self.rows: dict[str, dict[Key, Row]] = {t: {} for t in schemas}
        self.prepared: dict[int, tuple[list[WriteOp], Timestamp]] = {}
        #: Piggybacked prepares: durably staged writes awaiting their
        #: lazy "resolve" (kept apart from 2PC's ``prepared`` so each
        #: protocol's recovery story stays independently auditable).
        self.intents: dict[int, tuple[list[WriteOp], Timestamp]] = {}
        self.vote_log: dict[int, bool] = {}
        self.last_commit_ts: Timestamp = 0
        self.applied_commands = 0

    def apply(self, _index: int, command: tuple) -> None:
        self.applied_commands += 1
        op = command[0]
        if op == "prepare":
            _op, txn_id, writes, commit_ts = command
            ok = self._validate(writes)
            self.vote_log[txn_id] = ok
            if ok:
                self.prepared[txn_id] = (writes, commit_ts)
        elif op == "commit":
            _op, txn_id = command
            staged = self.prepared.pop(txn_id, None)
            if staged is None:
                return  # already applied or never prepared here
            writes, commit_ts = staged
            self._install(writes, commit_ts)
        elif op == "abort":
            _op, txn_id = command
            self.prepared.pop(txn_id, None)
            self.vote_log.pop(txn_id, None)
        elif op == "commit1p":
            # Single-shard 1PC fast path: the leader validated before
            # proposing, so the one command installs unconditionally.
            _op, txn_id, writes, commit_ts = command
            self._install(writes, commit_ts)
        elif op == "intent":
            # Piggybacked prepare: PREPARED + the write intent, durably
            # logged in one command; the decision arrives via "resolve".
            _op, txn_id, writes, commit_ts = command
            ok = self._validate(writes)
            self.vote_log[txn_id] = ok
            if ok:
                self.intents[txn_id] = (writes, commit_ts)
        elif op == "resolve":
            # The lazy commit round: idempotent — a re-proposed resolve
            # finds the intent already popped and does nothing.
            _op, txn_id, committed = command
            staged = self.intents.pop(txn_id, None)
            self.vote_log.pop(txn_id, None)
            if committed and staged is not None:
                writes, commit_ts = staged
                self._install(writes, commit_ts)
        elif op in ("bulk", "install", "rehome"):
            # Whole-row upserts: a pre-validated bulk load, a staged
            # migration snapshot, or the flip-time authoritative image.
            _op, table_name, rows, commit_ts = command
            table = self.rows[table_name]
            key_of = self.schemas[table_name].key_of
            for row in rows:
                table[key_of(row)] = row
            self.last_commit_ts = max(self.last_commit_ts, commit_ts)
        elif op == "tail":
            # Dual-logged writes replayed onto a migration target: each
            # entry carries its own source commit timestamp.
            _op, entries = command
            for kind, table_name, key, row, commit_ts in entries:
                table = self.rows[table_name]
                if kind == "delete":
                    table.pop(key, None)
                else:
                    table[key] = row
                self.last_commit_ts = max(self.last_commit_ts, commit_ts)
        elif op == "truncate":
            # The interval [lo, hi) migrated away: drop its rows.
            _op, lo, hi = command
            for table_name, table in self.rows.items():
                gone = [
                    key for key in table if lo <= self._point_fn(table_name, key) < hi
                ]
                for key in gone:
                    del table[key]
        else:
            raise TwoPhaseCommitError(f"unknown region command {op!r}")

    def _validate(self, writes: list[WriteOp]) -> bool:
        for w in writes:
            table = self.rows[w.table]
            if w.kind is WriteKind.INSERT and w.key in table:
                return False
            if w.kind in (WriteKind.UPDATE, WriteKind.DELETE) and w.key not in table:
                return False
        return True

    def _install(self, writes: list[WriteOp], commit_ts: Timestamp) -> None:
        for w in writes:
            table = self.rows[w.table]
            if w.kind is WriteKind.DELETE:
                table.pop(w.key, None)
            else:
                table[w.key] = w.row
        self.last_commit_ts = max(self.last_commit_ts, commit_ts)


class DistributedCluster:
    """Shards x Raft x 2PC with columnar learner replicas and elastic
    shard maps (metadata service + stateless router tier)."""

    def __init__(
        self,
        n_storage_nodes: int = 3,
        replication: int = 3,
        n_regions: int | None = None,
        n_analytic_nodes: int = 1,
        cost: CostModel | None = None,
        clock: LogicalClock | None = None,
        seed: int = 0,
        vectorized: bool = True,
        point_fn: Callable[[str, Any], int] = hash_point,
        placement: PlacementPolicy | None = None,
        commit_protocol: str = "fast",
    ):
        if replication > n_storage_nodes:
            replication = n_storage_nodes
        if commit_protocol not in ("fast", "baseline"):
            raise TwoPhaseCommitError(
                f"unknown commit protocol {commit_protocol!r}"
            )
        self.cost = cost or CostModel()
        self.clock = clock or LogicalClock()
        self.network = SimNetwork(self.cost)
        self.ledger = BusyLedger()
        self.n_storage_nodes = n_storage_nodes
        self.n_analytic_nodes = max(1, n_analytic_nodes)
        self.replication = replication
        self._initial_shards = n_regions if n_regions is not None else n_storage_nodes
        self._seed = seed
        self.vectorized = vectorized
        self._point_fn = point_fn
        self.placement = placement or PlacementPolicy()
        self.commit_protocol = commit_protocol
        self.schemas: dict[str, Schema] = {}
        self.metadata = MetadataService(ShardMap.uniform(self._initial_shards))
        self.router = Router(self.metadata, cost=self.cost, point_fn=self.point_of)
        self.coordinator = TwoPhaseCoordinator(cost=self.cost)
        self.piggyback = PiggybackCoordinator(cost=self.cost)
        self.columnar = ColumnarReplica({}, self.cost, vectorized=vectorized)
        # Grow-only, shard-id-indexed (ids are allocated monotonically;
        # merged-away shards keep their slot so indices never shift).
        self._groups: list[RaftGroup] = []
        self._region_sms: list[dict[str, RegionStateMachine]] = []
        self._region_leader_node: list[list[str]] = []  # physical placement
        self._migration_taps: list = []  # resharding dual-log buffers
        #: Lazy commit rounds: shard id -> [(txn_id, committed, n_writes)].
        self._pending_resolves: dict[int, list[tuple[int, bool, int]]] = {}
        self._built = False
        self.commits = 0
        self.aborts = 0
        self.commits_single_shard = 0
        self.commits_piggybacked = 0
        self.commits_two_phase = 0
        reg = get_registry()
        self._m_commit_1p = reg.counter("commit.single_shard")
        self._m_commit_pb = reg.counter("commit.piggybacked")
        self._m_commit_2pc = reg.counter("commit.two_phase")
        self._h_commit_fanout = reg.histogram("commit.participant_fanout")

    # ------------------------------------------------------------- build

    @property
    def n_regions(self) -> int:
        """Live shard count (grows/shrinks with online resharding)."""
        return self.metadata.current().n_shards

    def point_of(self, table: str, key: Any) -> int:
        """Ring position of one row: the placement policy's co-location
        prefix when the table declares one, the plain per-row point
        function otherwise."""
        if self.placement.rule(table) is not None:
            return self.placement.point_of(table, key)
        return self._point_fn(table, key)

    def create_table(self, schema: Schema) -> None:
        if self._built:
            raise TwoPhaseCommitError("create every table before first commit")
        self.schemas[schema.table_name] = schema

    def declare_placement(self, table: str, group: str, prefix_len: int) -> None:
        """Declare a placement-key prefix for ``table``.  DDL-time only:
        rows are placed by ``point_of`` from the first commit on, so the
        point function must never change once any row exists."""
        if self._built:
            raise TwoPhaseCommitError("declare placement before first commit")
        self.placement.declare(table, group, prefix_len)

    def install_boundaries(self, points: Iterable[int]) -> None:
        """Re-cut the boot shard map at load quantiles of ``points``
        (an expected-load sample of placement-point positions; repeat a
        point to weight it).  DDL-time only, same contract as
        :meth:`declare_placement`: boundaries are a boot decision and
        must be fixed before the first commit places a row."""
        if self._built:
            raise TwoPhaseCommitError(
                "install boundaries before first commit"
            )
        self.metadata.rebound(
            ShardMap.balanced(points, self._initial_shards)
        )

    def _build(self) -> None:
        if self._built:
            return
        self._built = True
        self.columnar = ColumnarReplica(
            self.schemas, self.cost, vectorized=self.vectorized
        )
        for sid in self.metadata.current().shard_ids():
            self._make_shard(sid)
        for group in self._groups:
            group.elect_leader()

    def _make_shard(self, sid: int) -> None:
        """Create the Raft group + state machines for shard ``sid``.

        Used both at boot and when resharding spawns a new shard; the
        shard-id-indexed lists stay aligned because ids are allocated
        monotonically by the metadata service."""
        if sid != len(self._groups):
            raise TwoPhaseCommitError(
                f"shard ids must be allocated in order (got {sid}, "
                f"expected {len(self._groups)})"
            )
        voters = []
        placement = []
        for r in range(self.replication):
            phys = (sid + r) % self.n_storage_nodes
            voters.append(f"r{sid}.n{phys}")
            placement.append(f"n{phys}")
        learner_id = f"r{sid}.learner"
        sms = {
            v: RegionStateMachine(sid, self.schemas, point_fn=self.point_of)
            for v in voters
        }
        apply_fns = {v: sms[v].apply for v in voters}
        apply_batch_fns = {}
        if self.vectorized:
            # Learners replay committed runs in batches; voters keep
            # the per-entry apply (their 2PC votes are read between
            # individual proposals).
            def _learner_apply_batch(start, commands, _sid=sid):
                self.columnar.learner_apply_batch(_sid, start, commands)

            apply_batch_fns[learner_id] = _learner_apply_batch
        else:

            def _learner_apply(index, command, _sid=sid):
                self.columnar.learner_apply(_sid, index, command)

            apply_fns[learner_id] = _learner_apply
        group = RaftGroup(
            group_id=f"region{sid}",
            voter_ids=voters,
            learner_ids=[learner_id],
            network=self.network,
            cost=self.cost,
            apply_fns=apply_fns,
            seed=self._seed + sid,
            # Home-node preference spreads leaders round-robin over
            # the physical nodes (PD-style leader balancing).
            preferred_leader=voters[0],
            apply_batch_fns=apply_batch_fns,
        )
        self._groups.append(group)
        self._region_sms.append(sms)
        self._region_leader_node.append(placement)

    def _phys_node_of_leader(self, region: int) -> str:
        leader = self._groups[region].elect_leader()
        # leader id is "r<region>.n<phys>"
        return leader.node_id.split(".", 1)[1]

    def _leader_sm(self, region: int) -> RegionStateMachine:
        leader = self._groups[region].elect_leader()
        return self._region_sms[region][leader.node_id]

    def _live_sids(self) -> list[int]:
        return self.metadata.current().shard_ids()

    # ------------------------------------------------------------- epoch guard

    def _check_ownership(self, sid: int, points: list[int]) -> None:
        """The server side of the epoch contract: a shard (which sees
        the live map for free — it is co-located with metadata in this
        simulation) rejects any request for a ring point it no longer
        owns, instead of silently serving stale topology."""
        current = self.metadata.current()
        shard = current.get(sid)
        for point in points:
            if shard is None or not shard.owns(point):
                raise StaleEpochError(sid, current.epoch)

    def _charge_group_write(self, sid: int, n_writes: int) -> None:
        """Busy accounting: the leader does the row work + fsync, the
        followers append to their WALs in parallel."""
        phys = self._phys_node_of_leader(sid)
        per_write = self.cost.row_point_write_us + self.cost.wal_append_us
        self.ledger.charge(phys, n_writes * per_write + self.cost.wal_fsync_us)
        for replica_node in self._region_leader_node[sid][1:]:
            self.ledger.charge(replica_node, n_writes * self.cost.wal_append_us)

    def _charge_commit_round(
        self, sid: int, n_commands: int = 1, n_rows: int = 0
    ) -> None:
        """Busy accounting for a metadata-only propose: the 2PC second
        round, or a batch of lazy intent resolutions.  WAL appends for
        each command plus one fsync at the leader, appends at the
        followers; resolved intents add their row installs."""
        phys = self._phys_node_of_leader(sid)
        self.ledger.charge(
            phys,
            n_commands * self.cost.wal_append_us
            + self.cost.wal_fsync_us
            + n_rows * self.cost.row_point_write_us,
        )
        for replica_node in self._region_leader_node[sid][1:]:
            self.ledger.charge(replica_node, n_commands * self.cost.wal_append_us)

    # --------------------------------------------------------- lazy resolves

    def _queue_resolve(
        self, sid: int, txn_id: int, committed: bool, n_writes: int
    ) -> None:
        """The piggybacked protocol's asynchronous commit round: record
        that ``txn_id``'s intent on shard ``sid`` resolved (from the
        coordinator's decision record); the next operation touching the
        shard settles the queue before it reads or validates."""
        self._pending_resolves.setdefault(sid, []).append(
            (txn_id, committed, n_writes)
        )

    def _settle_shard(self, sid: int) -> None:
        """Flush shard ``sid``'s queued intent resolutions in one
        batched propose, so its row state reflects every decided
        transaction before serving a read or validating a write."""
        pending = self._pending_resolves.pop(sid, None)
        if not pending:
            return
        n_rows = sum(n for _txn, committed, n in pending if committed)
        self._charge_commit_round(sid, n_commands=len(pending), n_rows=n_rows)
        self.cost.charge(self.cost.network_rtt_us)
        self._groups[sid].propose_batch_and_wait(
            [("resolve", txn, committed) for txn, committed, _n in pending]
        )

    def settle_all(self) -> None:
        """Flush every shard's queued resolutions (replication drains
        and resharding barriers call this so learners, snapshots, and
        flips always see settled truth)."""
        for sid in sorted(self._pending_resolves):
            self._settle_shard(sid)

    def _tap_commit(
        self, writes: list[WriteOp], points: list[int], commit_ts: Timestamp
    ) -> None:
        """Dual-log committed writes that fall inside an in-flight
        migration's moving interval (the resharding tail)."""
        for tap in self._migration_taps:
            for w, point in zip(writes, points):
                if tap.lo <= point < tap.hi:
                    tap.record(w.kind.value, w.table, w.key, w.row, commit_ts)

    # ------------------------------------------------------------- writes

    def region_of(self, table: str, key: Key) -> int:
        """Owning shard id per the *authoritative* map (test/debug aid;
        clients route through a :class:`Router` cache instead)."""
        return self.metadata.current().shard_for_point(
            self.point_of(table, key)
        ).shard_id

    def execute_transaction(
        self, writes: list[WriteOp], router: Router | None = None
    ) -> Timestamp:
        """Commit ``writes`` atomically; raises TransactionAborted on
        validation failure at any shard.  Routed through ``router``
        (the cluster's co-located router by default) with the full
        stale-epoch retry protocol."""
        self._build()
        if not writes:
            raise TwoPhaseCommitError("empty transaction")
        for w in writes:
            if w.table not in self.schemas:
                raise KeyNotFoundError(f"no table {w.table!r}")
        router = router or self.router
        points = [self.point_of(w.table, w.key) for w in writes]
        return router.retrying(lambda: self._commit_routed(writes, points, router))

    def _commit_routed(
        self, writes: list[WriteOp], points: list[int], router: Router
    ) -> Timestamp:
        by_shard: dict[int, tuple[list[WriteOp], list[int]]] = {}
        for w, point in zip(writes, points):
            sid = router.shard_for_point(point).shard_id
            slot = by_shard.get(sid)
            if slot is None:
                slot = by_shard[sid] = ([], [])
            slot[0].append(w)
            slot[1].append(point)
        # Every participant validates ownership before anything is
        # proposed, so a stale route aborts with no partial effects.
        for sid, (_ws, ps) in by_shard.items():
            self._check_ownership(sid, ps)
        # Dangling intents on the involved shards must resolve before
        # this transaction validates against their row state.
        for sid in sorted(by_shard):
            self._settle_shard(sid)
        commit_ts = self.clock.tick()
        if self.commit_protocol == "fast" and len(by_shard) == 1:
            ((sid, (ws, _ps)),) = by_shard.items()
            self._commit_single_shard(sid, ws, commit_ts)
            self.commits_single_shard += 1
            self._m_commit_1p.inc()
        elif self.commit_protocol == "fast":
            self._commit_piggybacked(by_shard, commit_ts)
            self.commits_piggybacked += 1
            self._m_commit_pb.inc()
        else:
            self._commit_two_phase(by_shard, commit_ts)
            self.commits_two_phase += 1
            self._m_commit_2pc.inc()
        self.commits += 1
        self._h_commit_fanout.observe(float(len(by_shard)))
        if self._migration_taps:
            self._tap_commit(writes, points, commit_ts)
        return commit_ts

    def _commit_single_shard(
        self, sid: int, writes: list[WriteOp], commit_ts: Timestamp
    ) -> None:
        """The 1PC fast path: a transaction wholly owned by one shard
        skips the coordinator — validate at the leader, then a single
        "commit1p" propose installs the writes.  One Raft round and one
        fsync instead of two."""
        txn_id = self.piggyback.allocate_txn_id()
        self.cost.charge(self.cost.network_rtt_us)
        if not self._leader_sm(sid)._validate(writes):
            self.aborts += 1
            raise TransactionAborted(txn_id, "shard validation failed")
        self._charge_group_write(sid, len(writes))
        self._groups[sid].propose_and_wait(
            ("commit1p", txn_id, writes, commit_ts)
        )

    def _commit_piggybacked(
        self,
        by_shard: dict[int, tuple[list[WriteOp], list[int]]],
        commit_ts: Timestamp,
    ) -> None:
        """Residual multi-shard transactions: the one-round piggybacked
        protocol.  Each shard durably logs PREPARED + intent in one
        propose; the commit round is queued and settles lazily."""
        participants = {
            f"region{sid}": _RaftRegionParticipant(self, sid) for sid in by_shard
        }
        payloads = {
            f"region{sid}": (ws, commit_ts) for sid, (ws, _ps) in by_shard.items()
        }
        result = self.piggyback.execute(payloads, participants)
        if result.outcome is TxnOutcome.ABORTED:
            self.aborts += 1
            raise TransactionAborted(result.txn_id, "shard validation failed")

    def _commit_two_phase(
        self,
        by_shard: dict[int, tuple[list[WriteOp], list[int]]],
        commit_ts: Timestamp,
    ) -> None:
        """The baseline two-round protocol, kept behind
        ``commit_protocol="baseline"`` for cost-parity differential
        testing against the optimized paths."""
        participants = {
            f"region{sid}": _RaftRegionParticipant(self, sid) for sid in by_shard
        }
        payloads = {
            f"region{sid}": (ws, commit_ts) for sid, (ws, _ps) in by_shard.items()
        }
        result = self.coordinator.execute(payloads, participants)
        if result.outcome is TxnOutcome.ABORTED:
            self.aborts += 1
            raise TransactionAborted(result.txn_id, "shard validation failed")

    def bulk_load(
        self, table: str, rows: list[Row], router: Router | None = None
    ) -> Timestamp:
        """Load pre-validated fresh rows through Raft in one command per
        shard instead of one 2PC transaction per row batch."""
        self._build()
        if table not in self.schemas:
            raise KeyNotFoundError(f"no table {table!r}")
        if not rows:
            return self.clock.now()
        schema = self.schemas[table]
        router = router or self.router
        validated = [schema.validate_row(row) for row in rows]
        points = [self.point_of(table, schema.key_of(row)) for row in validated]
        return router.retrying(
            lambda: self._bulk_routed(table, validated, points, router)
        )

    def _bulk_routed(
        self, table: str, rows: list[Row], points: list[int], router: Router
    ) -> Timestamp:
        by_shard: dict[int, tuple[list[Row], list[int]]] = {}
        for row, point in zip(rows, points):
            sid = router.shard_for_point(point).shard_id
            slot = by_shard.get(sid)
            if slot is None:
                slot = by_shard[sid] = ([], [])
            slot[0].append(row)
            slot[1].append(point)
        for sid, (_rs, ps) in by_shard.items():
            self._check_ownership(sid, ps)
        for sid in sorted(by_shard):
            self._settle_shard(sid)
        commit_ts = self.clock.tick()
        schema = self.schemas[table]
        for sid, (shard_rows, _ps) in by_shard.items():
            self._charge_group_write(sid, len(shard_rows))
            self._groups[sid].propose_and_wait(
                ("bulk", table, tuple(shard_rows), commit_ts)
            )
        self.commits += 1
        if self._migration_taps:
            for tap in self._migration_taps:
                for row, point in zip(rows, points):
                    if tap.lo <= point < tap.hi:
                        tap.record(
                            "insert", table, schema.key_of(row), row, commit_ts
                        )
        return commit_ts

    # ------------------------------------------------------------- reads

    def read(
        self, table: str, key: Key, router: Router | None = None
    ) -> Row | None:
        """Point read served by the owning shard's leader replica."""
        self._build()
        router = router or self.router
        point = self.point_of(table, key)

        def attempt() -> Row | None:
            sid = router.shard_for_point(point).shard_id
            self._check_ownership(sid, [point])
            # A dangling intent could hide a decided write: settle first.
            self._settle_shard(sid)
            self.cost.charge(self.cost.network_rtt_us)
            sm = self._leader_sm(sid)
            self.cost.charge(self.cost.row_point_read_us)
            self.ledger.charge(
                self._phys_node_of_leader(sid), self.cost.row_point_read_us
            )
            return sm.rows[table].get(key)

        return router.retrying(attempt)

    def row_scan(
        self,
        table: str,
        predicate: Predicate = ALWAYS_TRUE,
        router: Router | None = None,
    ) -> list[Row]:
        """Scatter-gather scan over every live shard's leader (row path).
        Each shard re-validates ownership and settles its queued intent
        resolutions before serving, so the scan reads decided truth."""
        self._build()
        schema = self.schemas[table]
        router = router or self.router

        def attempt() -> list[Row]:
            current = self.metadata.current()
            out: list[Row] = []
            for sid in current.shard_ids():
                self._check_ownership(sid, [current.get(sid).lo])
                self._settle_shard(sid)
                self.cost.charge(self.cost.network_rtt_us)
                sm = self._leader_sm(sid)
                rows = sm.rows[table]
                self.cost.charge_rows(
                    self.cost.row_scan_per_row_us, max(len(rows), 1)
                )
                self.ledger.charge(
                    self._phys_node_of_leader(sid),
                    self.cost.row_scan_per_row_us * max(len(rows), 1),
                )
                out.extend(
                    r for r in rows.values() if predicate.matches(r, schema)
                )
            return out

        return router.retrying(attempt)

    def analytic_scan(
        self,
        table: str,
        columns: list[str] | None = None,
        predicate: Predicate = ALWAYS_TRUE,
        read_delta: bool = True,
        encode: bool = False,
    ) -> ColumnScanResult:
        """Columnar scan on the analytics tier (learner-fed)."""
        self._build()
        return self.columnar.scan(table, columns, predicate, read_delta, encode)

    # ------------------------------------------------------------- sync & time

    def advance(self, delta_us: float) -> None:
        """Let replication/heartbeats make progress (world-wide tick)."""
        self._build()
        self.network.advance(delta_us)

    def drain_replication(self, max_us: float = 50_000.0) -> None:
        """Advance until learners have applied everything committed.
        Queued intent resolutions flush first, so "everything committed"
        includes every decided piggybacked transaction."""
        self._build()
        self.settle_all()
        spent = 0.0
        while spent < max_us:
            lagging = any(
                self._groups[sid].elect_leader().commit_index
                > self._groups[sid].nodes[f"r{sid}.learner"].last_applied
                for sid in self._live_sids()
            )
            if not lagging and self.network.pending() == 0:
                return
            self.advance(500.0)
            spent += 500.0

    def sync(self) -> int:
        """Ship + merge learner delta logs into the column stores."""
        self._build()
        self.drain_replication()
        return self.columnar.merge_deltas()

    def freshness_lag_ts(self) -> int:
        """Commit-timestamp distance between OLTP truth and the AP view.

        Measured at the most-stale table: a table with unsealed (not yet
        shipped) delta entries is only fresh up to its last sealed or
        merged timestamp.
        """
        newest = self.clock.now()
        lags = []
        for table, log in self.columnar.delta_logs.items():
            store_ts = self.columnar.column_stores[table].max_commit_ts()
            visible = max(log.max_sealed_ts(), store_ts)
            if log.unsealed_entries() > 0:
                lags.append(max(0, newest - visible))
        return max(lags, default=0)

    # ------------------------------------------------------------- helpers

    def make_router(self, name: str) -> Router:
        """A fresh stateless router with its own shard-map cache (each
        front-door / bench client gets one, like a TiDB-server node)."""
        return Router(
            self.metadata, cost=self.cost, name=name, point_fn=self.point_of
        )

    def insert(self, table: str, row: Row) -> Timestamp:
        schema = self.schemas[table]
        row = schema.validate_row(row)
        return self.execute_transaction(
            [WriteOp(WriteKind.INSERT, table, schema.key_of(row), row)]
        )

    def update(self, table: str, row: Row) -> Timestamp:
        schema = self.schemas[table]
        row = schema.validate_row(row)
        return self.execute_transaction(
            [WriteOp(WriteKind.UPDATE, table, schema.key_of(row), row)]
        )

    def delete(self, table: str, key: Key) -> Timestamp:
        return self.execute_transaction([WriteOp(WriteKind.DELETE, table, key, None)])


class _RaftRegionParticipant:
    """Adapts one Raft-replicated shard to both commit protocols: the
    baseline two-round 2PC (prepare/commit/abort) and the one-round
    piggybacked variant (intent/enqueue_resolution).  Busy-ledger
    charging lives here, per propose, so the round count of each
    protocol is exactly what the makespan measures."""

    def __init__(self, cluster: DistributedCluster, region: int):
        self._cluster = cluster
        self._region = region
        self._group = cluster._groups[region]
        self._n_writes = 0

    def _leader_sm(self) -> RegionStateMachine:
        leader = self._group.elect_leader()
        return self._cluster._region_sms[self._region][leader.node_id]

    def prepare(self, txn_id: int, payload: Any) -> Vote:
        writes, commit_ts = payload
        self._cluster._charge_group_write(self._region, len(writes))
        self._group.propose_and_wait(("prepare", txn_id, writes, commit_ts))
        ok = self._leader_sm().vote_log.get(txn_id, False)
        return Vote.YES if ok else Vote.NO

    def commit(self, txn_id: int) -> None:
        self._cluster._charge_commit_round(self._region)
        self._group.propose_and_wait(("commit", txn_id))

    def abort(self, txn_id: int) -> None:
        self._cluster._charge_commit_round(self._region)
        self._group.propose_and_wait(("abort", txn_id))

    def intent(self, txn_id: int, payload: Any) -> Vote:
        writes, commit_ts = payload
        self._n_writes = len(writes)
        self._cluster._charge_group_write(self._region, len(writes))
        self._group.propose_and_wait(("intent", txn_id, writes, commit_ts))
        ok = self._leader_sm().vote_log.get(txn_id, False)
        return Vote.YES if ok else Vote.NO

    def enqueue_resolution(self, txn_id: int, committed: bool) -> None:
        self._cluster._queue_resolve(
            self._region, txn_id, committed, self._n_writes
        )
