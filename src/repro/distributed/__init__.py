"""Distributed substrate: simulated network, Raft, 2PC, regions, cluster."""

from .cluster import (
    BusyLedger,
    ColumnarReplica,
    DistributedCluster,
    RegionStateMachine,
    WriteKind,
    WriteOp,
)
from .network import SimNetwork
from .partitioner import HashPartitioner, Partitioner, RangePartitioner
from .raft import (
    AppendEntries,
    AppendEntriesReply,
    LogEntry,
    RaftGroup,
    RaftNode,
    RequestVote,
    RequestVoteReply,
    Role,
)
from .two_phase_commit import (
    TwoPhaseCoordinator,
    TwoPhaseResult,
    TxnOutcome,
    Vote,
)

__all__ = [
    "AppendEntries",
    "AppendEntriesReply",
    "BusyLedger",
    "ColumnarReplica",
    "DistributedCluster",
    "HashPartitioner",
    "LogEntry",
    "Partitioner",
    "RaftGroup",
    "RaftNode",
    "RangePartitioner",
    "RegionStateMachine",
    "RequestVote",
    "RequestVoteReply",
    "Role",
    "SimNetwork",
    "TwoPhaseCoordinator",
    "TwoPhaseResult",
    "TxnOutcome",
    "Vote",
    "WriteKind",
    "WriteOp",
]
