"""Distributed substrate: simulated network, Raft, 2PC, shards, cluster."""

from .cluster import (
    BusyLedger,
    DistributedCluster,
    RegionStateMachine,
    WriteKind,
    WriteOp,
)
from .metadata import (
    RING_SIZE,
    MetadataService,
    PlacementKey,
    PlacementPolicy,
    Shard,
    ShardMap,
    ShardMapDelta,
    hash_point,
)
from .network import SimNetwork
from .partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    placement_point,
)
from .raft import (
    AppendEntries,
    AppendEntriesReply,
    LogEntry,
    RaftGroup,
    RaftNode,
    RequestVote,
    RequestVoteReply,
    Role,
)
from .replica import ColumnarReplica
from .resharding import (
    MigrationTap,
    ReshardOperation,
    ReshardPhase,
    ShardMerge,
    ShardMigrate,
    ShardSplit,
)
from .router import Router
from .two_phase_commit import (
    PiggybackCoordinator,
    TwoPhaseCoordinator,
    TwoPhaseResult,
    TxnOutcome,
    Vote,
)

__all__ = [
    "AppendEntries",
    "AppendEntriesReply",
    "BusyLedger",
    "ColumnarReplica",
    "DistributedCluster",
    "HashPartitioner",
    "LogEntry",
    "MetadataService",
    "MigrationTap",
    "Partitioner",
    "PiggybackCoordinator",
    "PlacementKey",
    "PlacementPolicy",
    "RING_SIZE",
    "RaftGroup",
    "RaftNode",
    "RangePartitioner",
    "RegionStateMachine",
    "RequestVote",
    "RequestVoteReply",
    "ReshardOperation",
    "ReshardPhase",
    "Role",
    "Router",
    "Shard",
    "ShardMap",
    "ShardMapDelta",
    "ShardMerge",
    "ShardMigrate",
    "ShardSplit",
    "SimNetwork",
    "TwoPhaseCoordinator",
    "TwoPhaseResult",
    "TxnOutcome",
    "Vote",
    "WriteKind",
    "WriteOp",
    "hash_point",
    "placement_point",
]
