"""Distributed substrate: simulated network, Raft, 2PC, shards, cluster."""

from .cluster import (
    BusyLedger,
    DistributedCluster,
    RegionStateMachine,
    WriteKind,
    WriteOp,
)
from .metadata import (
    RING_SIZE,
    MetadataService,
    Shard,
    ShardMap,
    ShardMapDelta,
    hash_point,
)
from .network import SimNetwork
from .partitioner import HashPartitioner, Partitioner, RangePartitioner
from .raft import (
    AppendEntries,
    AppendEntriesReply,
    LogEntry,
    RaftGroup,
    RaftNode,
    RequestVote,
    RequestVoteReply,
    Role,
)
from .replica import ColumnarReplica
from .resharding import (
    MigrationTap,
    ReshardOperation,
    ReshardPhase,
    ShardMerge,
    ShardMigrate,
    ShardSplit,
)
from .router import Router
from .two_phase_commit import (
    TwoPhaseCoordinator,
    TwoPhaseResult,
    TxnOutcome,
    Vote,
)

__all__ = [
    "AppendEntries",
    "AppendEntriesReply",
    "BusyLedger",
    "ColumnarReplica",
    "DistributedCluster",
    "HashPartitioner",
    "LogEntry",
    "MetadataService",
    "MigrationTap",
    "Partitioner",
    "RING_SIZE",
    "RaftGroup",
    "RaftNode",
    "RangePartitioner",
    "RegionStateMachine",
    "RequestVote",
    "RequestVoteReply",
    "ReshardOperation",
    "ReshardPhase",
    "Role",
    "Router",
    "Shard",
    "ShardMap",
    "ShardMapDelta",
    "ShardMerge",
    "ShardMigrate",
    "ShardSplit",
    "SimNetwork",
    "TwoPhaseCoordinator",
    "TwoPhaseResult",
    "TxnOutcome",
    "Vote",
    "WriteKind",
    "WriteOp",
    "hash_point",
]
