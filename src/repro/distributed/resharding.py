"""Online shard split / merge / migrate — resharding under live traffic.

Every operation is the same five-phase machine, driven one phase per
:meth:`ReshardOperation.step` call so client traffic interleaves between
phases (the benches and chaos tests run writes and CH-benCHmark reads
between steps):

1. ``CREATE_TARGET`` — allocate a shard id and spin up its Raft group
   (voters + learner) on the existing physical nodes.
2. ``SNAPSHOT`` — install a dual-log *tap* for the moving ring interval
   and read the source leader's rows at that barrier.  Installing the
   tap and reading the snapshot happen in one step (the simulation is
   single-threaded), so the barrier is exact: every committed write
   after it lands in the tap.
3. ``INSTALL`` — ship the snapshot to the target group as staged
   ``"install"`` commands (whole-row upserts, voters only).
4. ``CATCH_UP`` — drain the tap into ``"tail"`` commands on the target.
   Writes keep flowing to the source the whole time: the map has not
   changed, so routers route as before and the tap dual-logs anything
   in the moving interval.
5. ``FLIP`` — atomic cutover: drain the final tail, propose the
   authoritative ``"rehome"`` image on the target (the learner rebuilds
   the moved interval's columnar state through the same
   ``learner_apply_batch`` bulk path as a bulk load), bump the map
   epoch, and truncate (split) or retire (merge/migrate) the sources.
   From the next client operation on, stale router caches are rejected
   by the shards (:class:`StaleEpochError`) and converge via refresh.

Zero-loss argument: before the flip the map owns every point at the
source, and the tap captures each committed write past the barrier; at
the flip the target holds snapshot ∪ tail — exactly the source's
committed state — and the epoch bump happens in the same step, so no
write can land on a shard that is about to stop owning it.  Duplicates
cannot arise either: "install"/"tail"/"rehome" are whole-row upserts
keyed by primary key, and the learner consumes only the idempotent
"rehome" image.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..common.clock import Timestamp
from ..common.errors import StorageError
from ..common.types import Key, Row
from ..obs import get_registry
from .cluster import DistributedCluster
from .metadata import Shard


class ReshardPhase(enum.Enum):
    CREATE_TARGET = "create_target"
    SNAPSHOT = "snapshot"
    INSTALL = "install"
    CATCH_UP = "catch_up"
    FLIP = "flip"
    DONE = "done"


@dataclass
class MigrationTap:
    """Dual-log buffer for committed writes in a moving ring interval."""

    lo: int
    hi: int
    entries: list[tuple[str, str, Key, Row | None, Timestamp]] = field(
        default_factory=list
    )

    def record(
        self, kind: str, table: str, key: Key, row: Row | None, commit_ts: Timestamp
    ) -> None:
        self.entries.append((kind, table, key, row, commit_ts))


class ReshardOperation:
    """Base phase machine; subclasses define sources and the map delta."""

    metric = "reshard.migrations"

    def __init__(self, cluster: DistributedCluster):
        cluster._build()
        self.cluster = cluster
        self.phase = ReshardPhase.CREATE_TARGET
        self.target_sid: int | None = None
        self.rows_moved = 0
        self.tail_writes = 0
        self._tap: MigrationTap | None = None
        self._snapshot_rows: dict[str, list[Row]] = {}
        self._start_us = cluster.cost.now_us()
        reg = get_registry()
        self._m_done = reg.counter(self.metric)
        self._m_rows_moved = reg.counter("reshard.rows_moved")
        self._m_tail_writes = reg.counter("reshard.tail_writes")
        self._h_duration = reg.histogram("reshard.duration_us")

    # ----------------------------------------------------- subclass hooks

    def _moving_range(self) -> tuple[int, int]:
        raise NotImplementedError

    def _source_sids(self) -> list[int]:
        raise NotImplementedError

    def _map_delta(self) -> tuple[list[int], list[Shard]]:
        raise NotImplementedError

    def _finish_sources(self) -> None:
        raise NotImplementedError

    # ----------------------------------------------------- the machine

    @property
    def done(self) -> bool:
        return self.phase is ReshardPhase.DONE

    def step(self) -> ReshardPhase:
        """Run one phase; client traffic interleaves between calls."""
        if self.phase is ReshardPhase.CREATE_TARGET:
            self._create_target()
            self.phase = ReshardPhase.SNAPSHOT
        elif self.phase is ReshardPhase.SNAPSHOT:
            self._snapshot_at_barrier()
            self.phase = ReshardPhase.INSTALL
        elif self.phase is ReshardPhase.INSTALL:
            self._install_snapshot()
            self.phase = ReshardPhase.CATCH_UP
        elif self.phase is ReshardPhase.CATCH_UP:
            self._drain_tail()
            self.phase = ReshardPhase.FLIP
        elif self.phase is ReshardPhase.FLIP:
            self._flip()
            self.phase = ReshardPhase.DONE
        return self.phase

    def run(self) -> None:
        """Drive to completion with no interleaved traffic."""
        while not self.done:
            self.step()

    def _create_target(self) -> None:
        cluster = self.cluster
        self.target_sid = cluster.metadata.allocate_shard_id()
        cluster._make_shard(self.target_sid)
        cluster._groups[self.target_sid].elect_leader()

    def _snapshot_at_barrier(self) -> None:
        cluster = self.cluster
        lo, hi = self._moving_range()
        # Dangling piggybacked intents on the sources must resolve
        # before the barrier: a snapshot must be committed truth, and
        # an intent decided *after* the tap installs dual-logs normally.
        for sid in self._source_sids():
            cluster._settle_shard(sid)
        # Tap first, read second, same step: the barrier is exact.
        self._tap = MigrationTap(lo, hi)
        cluster._migration_taps.append(self._tap)
        for sid in self._source_sids():
            sm = cluster._leader_sm(sid)
            for table, rows in sm.rows.items():
                moved = [
                    row
                    for key, row in rows.items()
                    if lo <= cluster.point_of(table, key) < hi
                ]
                if moved:
                    self._snapshot_rows.setdefault(table, []).extend(moved)

    def _install_snapshot(self) -> None:
        cluster = self.cluster
        ts = cluster.clock.tick()
        group = cluster._groups[self.target_sid]
        for table, rows in self._snapshot_rows.items():
            cluster._charge_group_write(self.target_sid, len(rows))
            group.propose_and_wait(("install", table, tuple(rows), ts))
            self.rows_moved += len(rows)
        self._snapshot_rows.clear()
        self._m_rows_moved.inc(self.rows_moved)

    def _drain_tail(self) -> None:
        cluster = self.cluster
        entries = tuple(self._tap.entries)
        if not entries:
            return
        self._tap.entries.clear()
        cluster._charge_group_write(self.target_sid, len(entries))
        cluster._groups[self.target_sid].propose_and_wait(("tail", entries))
        self.tail_writes += len(entries)
        self._m_tail_writes.inc(len(entries))

    def _flip(self) -> None:
        cluster = self.cluster
        # Final tail drain + epoch bump happen in this one step, with no
        # client operation in between: the cutover is atomic.
        self._drain_tail()
        # Source learner streams must be fully applied before a source
        # can retire (merge/migrate), and the rehome image must be the
        # settled truth.
        cluster.drain_replication()
        ts = cluster.clock.tick()
        target_group = cluster._groups[self.target_sid]
        target_sm = cluster._leader_sm(self.target_sid)
        for table, rows in target_sm.rows.items():
            if rows:
                target_group.propose_and_wait(
                    ("rehome", table, tuple(rows.values()), ts)
                )
        removed, added = self._map_delta()
        cluster.metadata.propose(removed, added)
        cluster._migration_taps.remove(self._tap)
        self._finish_sources()
        self._m_done.inc()
        self._h_duration.observe(cluster.cost.now_us() - self._start_us)


class ShardSplit(ReshardOperation):
    """Split one shard: the upper interval [at, hi) moves to a new
    group; the source keeps [lo, at) under its existing id."""

    metric = "reshard.splits"

    def __init__(
        self, cluster: DistributedCluster, source_sid: int, at: int | None = None
    ):
        super().__init__(cluster)
        source = cluster.metadata.current().get(source_sid)
        if source is None:
            raise StorageError(f"shard {source_sid} is not in the live map")
        self.source = source
        self.at = source.midpoint() if at is None else at
        if not source.lo < self.at < source.hi:
            raise StorageError(
                f"split point {self.at} outside shard {source_sid}'s "
                f"interval [{source.lo}, {source.hi})"
            )

    def _moving_range(self) -> tuple[int, int]:
        return (self.at, self.source.hi)

    def _source_sids(self) -> list[int]:
        return [self.source.shard_id]

    def _map_delta(self) -> tuple[list[int], list[Shard]]:
        return (
            [self.source.shard_id],
            [
                Shard(self.source.shard_id, self.source.lo, self.at),
                Shard(self.target_sid, self.at, self.source.hi),
            ],
        )

    def _finish_sources(self) -> None:
        # The source lives on with a narrower interval: drop the rows
        # that moved.  Post-flip, so no client op can interleave.
        self.cluster._groups[self.source.shard_id].propose_and_wait(
            ("truncate", self.at, self.source.hi)
        )


class ShardMerge(ReshardOperation):
    """Merge two ring-adjacent shards into one new group; both sources
    retire (their Raft groups shut down) after the flip."""

    metric = "reshard.merges"

    def __init__(self, cluster: DistributedCluster, left_sid: int, right_sid: int):
        super().__init__(cluster)
        current = cluster.metadata.current()
        left, right = current.get(left_sid), current.get(right_sid)
        if left is None or right is None:
            raise StorageError(
                f"shards {left_sid}/{right_sid} are not both in the live map"
            )
        if left.hi != right.lo:
            raise StorageError(
                f"shards {left_sid} and {right_sid} are not ring-adjacent"
            )
        self.left, self.right = left, right

    def _moving_range(self) -> tuple[int, int]:
        return (self.left.lo, self.right.hi)

    def _source_sids(self) -> list[int]:
        return [self.left.shard_id, self.right.shard_id]

    def _map_delta(self) -> tuple[list[int], list[Shard]]:
        return (
            [self.left.shard_id, self.right.shard_id],
            [Shard(self.target_sid, self.left.lo, self.right.hi)],
        )

    def _finish_sources(self) -> None:
        for sid in self._source_sids():
            self.cluster._groups[sid].shutdown()


class ShardMigrate(ReshardOperation):
    """Move one shard's whole interval to a freshly placed Raft group
    (rebalancing onto different physical nodes); the source retires."""

    metric = "reshard.migrations"

    def __init__(self, cluster: DistributedCluster, source_sid: int):
        super().__init__(cluster)
        source = cluster.metadata.current().get(source_sid)
        if source is None:
            raise StorageError(f"shard {source_sid} is not in the live map")
        self.source = source

    def _moving_range(self) -> tuple[int, int]:
        return (self.source.lo, self.source.hi)

    def _source_sids(self) -> list[int]:
        return [self.source.shard_id]

    def _map_delta(self) -> tuple[list[int], list[Shard]]:
        return (
            [self.source.shard_id],
            [Shard(self.target_sid, self.source.lo, self.source.hi)],
        )

    def _finish_sources(self) -> None:
        self.cluster._groups[self.source.shard_id].shutdown()
