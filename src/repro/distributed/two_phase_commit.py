"""Two-phase commit over abstract participants.

The cross-region commit protocol of the "2PC + Raft + logging" TP
technique (Table 2).  The coordinator is deliberately protocol-pure:
participants are any objects implementing prepare/commit/abort, so unit
tests can drive it with in-memory fakes while the cluster plugs in
Raft-replicated regions.  Each phase costs one network round trip per
participant (charged on the shared cost model), which is exactly where
the technique's "Low Efficiency" comes from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Protocol

from ..common.cost import CostModel
from ..common.errors import TwoPhaseCommitError
from ..obs import get_registry


class Vote(enum.Enum):
    YES = "yes"
    NO = "no"


class Participant(Protocol):
    """A resource manager in the 2PC protocol."""

    def prepare(self, txn_id: int, payload: Any) -> Vote: ...

    def commit(self, txn_id: int) -> None: ...

    def abort(self, txn_id: int) -> None: ...


class TxnOutcome(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TwoPhaseResult:
    txn_id: int
    outcome: TxnOutcome
    votes: dict[str, Vote] = field(default_factory=dict)
    rtts: int = 0


class TwoPhaseCoordinator:
    """Synchronous presumed-abort coordinator."""

    def __init__(self, cost: CostModel | None = None):
        self._cost = cost or CostModel()
        self._next_txn_id = 1
        self.committed = 0
        self.aborted = 0
        registry = get_registry()
        self._m_prepares = registry.counter("twopc.prepares")
        self._m_commits = registry.counter("twopc.commits")
        self._m_aborts = registry.counter("twopc.aborts")
        self._m_participants = registry.histogram("twopc.participants")

    def execute(
        self,
        payloads: dict[str, Any],
        participants: dict[str, Participant],
    ) -> TwoPhaseResult:
        """Run 2PC for one transaction whose work is ``payloads`` per
        participant name.  Single-participant transactions skip the
        prepare round (the standard one-phase optimization)."""
        if not payloads:
            raise TwoPhaseCommitError("transaction touches no participant")
        unknown = set(payloads) - set(participants)
        if unknown:
            raise TwoPhaseCommitError(f"unknown participants: {sorted(unknown)}")
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        involved = {name: participants[name] for name in payloads}
        self._m_participants.observe(float(len(involved)))

        if len(involved) == 1:
            (name, participant), = involved.items()
            self._cost.charge(self._cost.network_rtt_us)
            self._m_prepares.inc()
            vote = participant.prepare(txn_id, payloads[name])
            if vote is Vote.YES:
                participant.commit(txn_id)
                self.committed += 1
                self._m_commits.inc()
                return TwoPhaseResult(txn_id, TxnOutcome.COMMITTED, {name: vote}, rtts=1)
            participant.abort(txn_id)
            self.aborted += 1
            self._m_aborts.inc()
            return TwoPhaseResult(txn_id, TxnOutcome.ABORTED, {name: vote}, rtts=1)

        votes: dict[str, Vote] = {}
        # Phase 1: prepare. One RTT per participant (sequential in sim time;
        # per-node busy accounting is what lets scalability show through).
        for name, participant in involved.items():
            self._cost.charge(self._cost.network_rtt_us)
            self._m_prepares.inc()
            votes[name] = participant.prepare(txn_id, payloads[name])
        decision = (
            TxnOutcome.COMMITTED
            if all(v is Vote.YES for v in votes.values())
            else TxnOutcome.ABORTED
        )
        # Phase 2: commit/abort everywhere that voted (presumed abort:
        # NO-voters already rolled back, but we message them anyway to
        # release their prepared state promptly).
        for participant in involved.values():
            self._cost.charge(self._cost.network_rtt_us)
            if decision is TxnOutcome.COMMITTED:
                participant.commit(txn_id)
            else:
                participant.abort(txn_id)
        if decision is TxnOutcome.COMMITTED:
            self.committed += 1
            self._m_commits.inc()
        else:
            self.aborted += 1
            self._m_aborts.inc()
        return TwoPhaseResult(txn_id, decision, votes, rtts=2 * len(involved))
