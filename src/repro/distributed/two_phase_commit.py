"""Two-phase commit over abstract participants.

The cross-region commit protocol of the "2PC + Raft + logging" TP
technique (Table 2).  The coordinator is deliberately protocol-pure:
participants are any objects implementing prepare/commit/abort, so unit
tests can drive it with in-memory fakes while the cluster plugs in
Raft-replicated regions.  Each phase costs one network round trip per
participant (charged on the shared cost model), which is exactly where
the technique's "Low Efficiency" comes from.

:class:`TwoPhaseCoordinator` is the baseline protocol: two synchronous
rounds (prepare, then commit/abort), each a Raft propose + fsync at
every participant.  :class:`PiggybackCoordinator` is the optimized
one-round variant (Spanner/CockroachDB parallel-commit style): each
participant durably logs PREPARED *plus* the write intent in a single
command and acks with its vote; the coordinator then resolves the
outcome in its durable decision record, and the commit round becomes
asynchronous — resolutions are queued and piggybacked onto later
traffic to each shard.  That halves the synchronous Raft rounds per
participant, which is precisely the fan-out tax the scale-out bench
measures.  The baseline stays behind the cluster's ``commit_protocol``
flag for differential testing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Protocol

from ..common.cost import CostModel
from ..common.errors import TwoPhaseCommitError
from ..obs import get_registry


class Vote(enum.Enum):
    YES = "yes"
    NO = "no"


class Participant(Protocol):
    """A resource manager in the 2PC protocol."""

    def prepare(self, txn_id: int, payload: Any) -> Vote: ...

    def commit(self, txn_id: int) -> None: ...

    def abort(self, txn_id: int) -> None: ...


class PiggybackParticipant(Protocol):
    """A resource manager in the one-round piggybacked protocol."""

    def intent(self, txn_id: int, payload: Any) -> Vote: ...

    def enqueue_resolution(self, txn_id: int, committed: bool) -> None: ...


class TxnOutcome(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TwoPhaseResult:
    txn_id: int
    outcome: TxnOutcome
    votes: dict[str, Vote] = field(default_factory=dict)
    rtts: int = 0


class TwoPhaseCoordinator:
    """Synchronous presumed-abort coordinator."""

    def __init__(self, cost: CostModel | None = None):
        self._cost = cost or CostModel()
        self._next_txn_id = 1
        self.committed = 0
        self.aborted = 0
        registry = get_registry()
        self._m_prepares = registry.counter("twopc.prepares")
        self._m_commits = registry.counter("twopc.commits")
        self._m_aborts = registry.counter("twopc.aborts")
        self._m_participants = registry.histogram("twopc.participants")

    def execute(
        self,
        payloads: dict[str, Any],
        participants: dict[str, Participant],
    ) -> TwoPhaseResult:
        """Run 2PC for one transaction whose work is ``payloads`` per
        participant name.  Single-participant transactions skip the
        prepare round (the standard one-phase optimization)."""
        if not payloads:
            raise TwoPhaseCommitError("transaction touches no participant")
        unknown = set(payloads) - set(participants)
        if unknown:
            raise TwoPhaseCommitError(f"unknown participants: {sorted(unknown)}")
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        involved = {name: participants[name] for name in payloads}
        self._m_participants.observe(float(len(involved)))

        if len(involved) == 1:
            (name, participant), = involved.items()
            self._cost.charge(self._cost.network_rtt_us)
            self._m_prepares.inc()
            vote = participant.prepare(txn_id, payloads[name])
            if vote is Vote.YES:
                participant.commit(txn_id)
                self.committed += 1
                self._m_commits.inc()
                return TwoPhaseResult(txn_id, TxnOutcome.COMMITTED, {name: vote}, rtts=1)
            participant.abort(txn_id)
            self.aborted += 1
            self._m_aborts.inc()
            return TwoPhaseResult(txn_id, TxnOutcome.ABORTED, {name: vote}, rtts=1)

        votes: dict[str, Vote] = {}
        # Phase 1: prepare. One RTT per participant (sequential in sim time;
        # per-node busy accounting is what lets scalability show through).
        for name, participant in involved.items():
            self._cost.charge(self._cost.network_rtt_us)
            self._m_prepares.inc()
            votes[name] = participant.prepare(txn_id, payloads[name])
        decision = (
            TxnOutcome.COMMITTED
            if all(v is Vote.YES for v in votes.values())
            else TxnOutcome.ABORTED
        )
        # Phase 2: commit/abort everywhere that voted (presumed abort:
        # NO-voters already rolled back, but we message them anyway to
        # release their prepared state promptly).
        for participant in involved.values():
            self._cost.charge(self._cost.network_rtt_us)
            if decision is TxnOutcome.COMMITTED:
                participant.commit(txn_id)
            else:
                participant.abort(txn_id)
        if decision is TxnOutcome.COMMITTED:
            self.committed += 1
            self._m_commits.inc()
        else:
            self.aborted += 1
            self._m_aborts.inc()
        return TwoPhaseResult(txn_id, decision, votes, rtts=2 * len(involved))


class PiggybackCoordinator:
    """One-round piggybacked prepare+commit over durable write intents.

    Protocol per transaction:

    1. One synchronous round: each participant durably logs
       ``PREPARED`` + the write intent in a *single* command (one Raft
       propose, one fsync) and acks with its vote.
    2. The coordinator resolves the outcome into its durable decision
       record (:attr:`decisions`) — this is the commit point; the
       client is acked here.
    3. The commit/abort round is asynchronous: each participant only
       *queues* the resolution (:meth:`PiggybackParticipant.
       enqueue_resolution`); whoever later reads from or validates
       against a shard holding a dangling intent settles the queue
       first, consulting the decision record through the queued
       outcome.

    Compared to :class:`TwoPhaseCoordinator` that is one synchronous
    Raft round per participant instead of two, with identical committed
    state and abort behavior (the differential tests prove it).
    """

    def __init__(self, cost: CostModel | None = None):
        self._cost = cost or CostModel()
        self._next_txn_id = 1
        self.committed = 0
        self.aborted = 0
        #: The durable decision record: txn id -> committed?
        self.decisions: dict[int, bool] = {}

    def allocate_txn_id(self) -> int:
        """Ids are shared with the cluster's single-shard 1PC fast path
        so intent/vote bookkeeping never collides across protocols."""
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return txn_id

    def decision(self, txn_id: int) -> bool | None:
        """Outcome lookup for readers of a dangling intent (``None``
        means the transaction never reached a decision here)."""
        return self.decisions.get(txn_id)

    def execute(
        self,
        payloads: dict[str, Any],
        participants: dict[str, PiggybackParticipant],
    ) -> TwoPhaseResult:
        if not payloads:
            raise TwoPhaseCommitError("transaction touches no participant")
        unknown = set(payloads) - set(participants)
        if unknown:
            raise TwoPhaseCommitError(f"unknown participants: {sorted(unknown)}")
        txn_id = self.allocate_txn_id()
        involved = {name: participants[name] for name in payloads}
        votes: dict[str, Vote] = {}
        # The single synchronous round: PREPARED + intent, one RTT each.
        for name, participant in involved.items():
            self._cost.charge(self._cost.network_rtt_us)
            votes[name] = participant.intent(txn_id, payloads[name])
        committed = all(v is Vote.YES for v in votes.values())
        # Durably log the decision before acking the client: from here
        # the outcome survives any participant-side failover and the
        # commit round can be lazy.
        self._cost.charge(self._cost.wal_append_us + self._cost.wal_fsync_us)
        self.decisions[txn_id] = committed
        for participant in involved.values():
            participant.enqueue_resolution(txn_id, committed)
        if committed:
            self.committed += 1
        else:
            self.aborted += 1
        outcome = TxnOutcome.COMMITTED if committed else TxnOutcome.ABORTED
        return TwoPhaseResult(txn_id, outcome, votes, rtts=len(involved))
