"""Key-space partitioning into regions.

Architecture (b) shards each table into regions, each served by its own
Raft group.  Hash partitioning spreads TPC-C style key traffic evenly;
range partitioning is available for ordered scans and region splits.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Sequence

from ..common.errors import StorageError


class Partitioner:
    def region_of(self, key: Any) -> int:
        raise NotImplementedError

    @property
    def n_regions(self) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Stable hash partitioning (independent of Python's salted hash)."""

    def __init__(self, n_regions: int):
        if n_regions < 1:
            raise StorageError("need at least one region")
        self._n = n_regions

    @property
    def n_regions(self) -> int:
        return self._n

    def region_of(self, key: Any) -> int:
        return _stable_hash(key) % self._n


class RangePartitioner(Partitioner):
    """Boundaries b_0 < b_1 < ... split keys into len(boundaries)+1 regions."""

    def __init__(self, boundaries: Sequence[Any]):
        ordered = list(boundaries)
        if any(ordered[i] >= ordered[i + 1] for i in range(len(ordered) - 1)):
            raise StorageError("range boundaries must be strictly increasing")
        self._boundaries = ordered

    @property
    def n_regions(self) -> int:
        return len(self._boundaries) + 1

    def region_of(self, key: Any) -> int:
        # First-column comparison for composite keys.  bisect_right finds
        # the first boundary > probe in O(log n); region i holds keys in
        # [b_{i-1}, b_i), matching the old linear scan exactly.
        probe = key[0] if isinstance(key, tuple) else key
        return bisect_right(self._boundaries, probe)


def placement_point(group: str, prefix: tuple) -> int:
    """Ring position of a placement-group prefix.

    Placement-driven co-location: every row whose table declares a
    placement key hashes only ``(group, key-prefix)`` instead of the
    full ``(table, key)``, so rows sharing the prefix — a district's
    customers and their history appends, an order and its lines — land
    on the *same* ring point and therefore the same shard, under any
    shard map.  The namespace tag keeps placement points from ever
    colliding semantically with plain ``hash_point`` values for
    unrelated tables.
    """
    return _stable_hash(("placement", group, prefix))


def _stable_hash(key: Any) -> int:
    """Deterministic across processes (no PYTHONHASHSEED dependence)."""
    if isinstance(key, tuple):
        acc = 1469598103934665603
        for part in key:
            acc = (acc ^ _stable_hash(part)) * 1099511628211 % (2**64)
        return acc
    if isinstance(key, str):
        acc = 1469598103934665603
        for ch in key.encode("utf-8"):
            acc = (acc ^ ch) * 1099511628211 % (2**64)
        return acc
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key * 2654435761 % (2**64)
    if isinstance(key, float):
        return _stable_hash(repr(key))
    return _stable_hash(repr(key))
