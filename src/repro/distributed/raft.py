"""Raft consensus with learner replicas.

The heart of architecture (b): each partition (region) of the row store
is a Raft group.  The leader appends client commands to its log and
replicates them to voting followers (row replicas) *and* to non-voting
learners — the columnar replicas TiDB uses for OLAP.  Commit requires a
quorum of voters only, so learner lag never slows transactions, which
is exactly why the architecture gets High isolation and Low freshness
in Table 1.

The implementation covers leader election with randomized timeouts,
log replication with consistency checks and conflict rollback, commit
on majority match, and apply callbacks per node.  It is tick-driven
over the deterministic :class:`~repro.distributed.network.SimNetwork`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from ..common.cost import CostModel
from ..common.errors import ConsensusError, NotLeaderError
from ..common.rng import make_rng
from ..obs import get_registry
from .network import SimNetwork

ApplyFn = Callable[[int, Any], None]
"""(log index, command) invoked exactly once per node as entries commit."""

BatchApplyFn = Callable[[int, list], None]
"""(start index, commands) — one call per committed run of entries.

The batched counterpart of :data:`ApplyFn`: when a node has one (TiDB's
learner-side batched log replay), newly committed entries are handed
over as a single contiguous slice ``commands[i]`` holding log index
``start_index + i``, instead of one callback per entry."""


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"
    LEARNER = "learner"


@dataclass(frozen=True)
class LogEntry:
    term: int
    command: Any


# ----------------------------------------------------------------- messages


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate_id: str
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class RequestVoteReply:
    term: int
    granted: bool


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader_id: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple
    leader_commit: int


@dataclass(frozen=True)
class AppendEntriesReply:
    term: int
    success: bool
    match_index: int


_ELECTION_TIMEOUT_RANGE_US = (1_500.0, 3_000.0)
#: Preferred leaders time out much sooner, so they win first elections —
#: the testbed's stand-in for PD-style leader balancing across nodes.
_PREFERRED_TIMEOUT_RANGE_US = (300.0, 500.0)
_HEARTBEAT_INTERVAL_US = 400.0


class RaftNode:
    """One Raft participant (voter or learner)."""

    def __init__(
        self,
        node_id: str,
        voters: list[str],
        learners: list[str],
        network: SimNetwork,
        cost: CostModel,
        apply_fn: ApplyFn | None = None,
        seed: int = 0,
        preferred: bool = False,
        apply_batch_fn: BatchApplyFn | None = None,
    ):
        self.node_id = node_id
        self.voters = list(voters)
        self.learners = list(learners)
        self.preferred = preferred
        self._network = network
        self._cost = cost
        self._apply_fn = apply_fn
        self._apply_batch_fn = apply_batch_fn
        # zlib.crc32 is stable across processes (unlike str hash, which
        # is salted and would make elections nondeterministic).
        import zlib

        self._rng = make_rng(seed ^ (zlib.crc32(node_id.encode()) & 0xFFFF))

        self.role = Role.LEARNER if node_id in learners else Role.FOLLOWER
        self.current_term = 0
        self.voted_for: str | None = None
        # log[0] is a sentinel so Raft's 1-based indexing reads naturally.
        self.log: list[LogEntry] = [LogEntry(term=0, command=None)]
        self.commit_index = 0
        self.last_applied = 0
        self.leader_id: str | None = None

        self._votes_received: set[str] = set()
        self._next_index: dict[str, int] = {}
        self._match_index: dict[str, int] = {}
        self._election_deadline_us = self._new_election_deadline()
        self._heartbeat_due_us = 0.0
        self._last_tick_us = cost.now_us()

        registry = get_registry()
        self._m_elections = registry.counter("raft.elections")
        self._m_heartbeats = registry.counter("raft.heartbeats")
        self._m_replication_lag = registry.histogram("raft.replication_lag")

        network.register(node_id, self._on_message)

    # ------------------------------------------------------------- helpers

    def _new_election_deadline(self) -> float:
        lo, hi = (
            _PREFERRED_TIMEOUT_RANGE_US if self.preferred else _ELECTION_TIMEOUT_RANGE_US
        )
        return self._cost.now_us() + self._rng.uniform(lo, hi)

    def last_log_index(self) -> int:
        return len(self.log) - 1

    def last_log_term(self) -> int:
        return self.log[-1].term

    def _other_voters(self) -> list[str]:
        return [v for v in self.voters if v != self.node_id]

    def _replication_targets(self) -> list[str]:
        return self._other_voters() + [l for l in self.learners if l != self.node_id]

    def quorum(self) -> int:
        return len(self.voters) // 2 + 1

    def is_leader(self) -> bool:
        return self.role is Role.LEADER

    # ------------------------------------------------------------- tick

    #: A single simulated-time hop larger than this means the *whole
    #: world* was suspended (a long local computation advanced the cost
    #: clock), not that the leader went silent — re-arm timers instead
    #: of starting elections, like clock-jump guards in real systems.
    _SUSPEND_GUARD_US = 1_000.0

    def tick(self) -> None:
        """Drive timeouts; the group calls this after advancing time."""
        now = self._cost.now_us()
        jump = now - self._last_tick_us
        self._last_tick_us = now
        if self.role is Role.LEARNER:
            return
        if jump > self._SUSPEND_GUARD_US:
            self._election_deadline_us = self._new_election_deadline()
            if self.role is Role.LEADER:
                self._heartbeat_due_us = now  # catch followers up now
            return
        if self.role is Role.LEADER:
            if now >= self._heartbeat_due_us:
                self._send_heartbeats()
        elif now >= self._election_deadline_us:
            self._start_election()

    def _start_election(self) -> None:
        self._m_elections.inc()
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self._votes_received = {self.node_id}
        self.leader_id = None
        self._election_deadline_us = self._new_election_deadline()
        message = RequestVote(
            term=self.current_term,
            candidate_id=self.node_id,
            last_log_index=self.last_log_index(),
            last_log_term=self.last_log_term(),
        )
        if len(self.voters) == 1:
            self._become_leader()
            return
        self._network.broadcast(self.node_id, self._other_voters(), message)

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.leader_id = self.node_id
        nxt = self.last_log_index() + 1
        self._next_index = {peer: nxt for peer in self._replication_targets()}
        self._match_index = {peer: 0 for peer in self._replication_targets()}
        self._send_heartbeats()

    # ------------------------------------------------------------- client API

    def client_propose(self, command: Any) -> int:
        """Append a command (leader only); returns its log index."""
        if self.role is not Role.LEADER:
            raise NotLeaderError(self.node_id, self.leader_id)
        self.log.append(LogEntry(term=self.current_term, command=command))
        index = self.last_log_index()
        self._cost.charge(self._cost.wal_append_us)  # leader's local log write
        self._send_heartbeats()  # eager replication
        if len(self.voters) == 1:
            self._advance_commit()
        return index

    def client_propose_batch(self, commands: list[Any]) -> int:
        """Append a run of commands in one log write + one replication
        round; returns the index of the last one (leader only)."""
        if self.role is not Role.LEADER:
            raise NotLeaderError(self.node_id, self.leader_id)
        if not commands:
            return self.last_log_index()
        term = self.current_term
        self.log.extend(LogEntry(term=term, command=c) for c in commands)
        self._cost.charge_rows(self._cost.wal_append_us, len(commands))
        self._send_heartbeats()
        if len(self.voters) == 1:
            self._advance_commit()
        return self.last_log_index()

    # ------------------------------------------------------------- replication

    def _send_heartbeats(self) -> None:
        self._m_heartbeats.inc()
        self._heartbeat_due_us = self._cost.now_us() + _HEARTBEAT_INTERVAL_US
        for peer in self._replication_targets():
            self._send_append(peer)

    def _send_append(self, peer: str) -> None:
        next_idx = self._next_index.get(peer, self.last_log_index() + 1)
        prev_idx = next_idx - 1
        if prev_idx >= len(self.log):
            prev_idx = self.last_log_index()
            next_idx = prev_idx + 1
        entries = tuple(self.log[next_idx:])
        message = AppendEntries(
            term=self.current_term,
            leader_id=self.node_id,
            prev_log_index=prev_idx,
            prev_log_term=self.log[prev_idx].term,
            entries=entries,
            leader_commit=self.commit_index,
        )
        self._network.send(self.node_id, peer, message)

    # ------------------------------------------------------------- handlers

    def _on_message(self, src: str, message: Any) -> None:
        if isinstance(message, RequestVote):
            self._on_request_vote(src, message)
        elif isinstance(message, RequestVoteReply):
            self._on_vote_reply(src, message)
        elif isinstance(message, AppendEntries):
            self._on_append_entries(src, message)
        elif isinstance(message, AppendEntriesReply):
            self._on_append_reply(src, message)
        else:
            raise ConsensusError(f"unknown raft message {message!r}")

    def _maybe_step_down(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
            if self.role is not Role.LEARNER:
                self.role = Role.FOLLOWER

    def _on_request_vote(self, src: str, msg: RequestVote) -> None:
        self._maybe_step_down(msg.term)
        grant = False
        if msg.term >= self.current_term and self.role is not Role.LEARNER:
            up_to_date = (msg.last_log_term, msg.last_log_index) >= (
                self.last_log_term(),
                self.last_log_index(),
            )
            if up_to_date and self.voted_for in (None, msg.candidate_id):
                grant = True
                self.voted_for = msg.candidate_id
                self._election_deadline_us = self._new_election_deadline()
        self._network.send(
            self.node_id, src, RequestVoteReply(term=self.current_term, granted=grant)
        )

    def _on_vote_reply(self, src: str, msg: RequestVoteReply) -> None:
        self._maybe_step_down(msg.term)
        if self.role is not Role.CANDIDATE or msg.term < self.current_term:
            return
        if msg.granted:
            self._votes_received.add(src)
            if len(self._votes_received) >= self.quorum():
                self._become_leader()

    def _on_append_entries(self, src: str, msg: AppendEntries) -> None:
        self._maybe_step_down(msg.term)
        if msg.term < self.current_term:
            self._network.send(
                self.node_id,
                src,
                AppendEntriesReply(self.current_term, False, 0),
            )
            return
        # A valid leader exists: reset election pressure.
        self.leader_id = msg.leader_id
        if self.role is Role.CANDIDATE:
            self.role = Role.FOLLOWER
        self._election_deadline_us = self._new_election_deadline()
        # Log consistency check.
        if msg.prev_log_index >= len(self.log) or (
            self.log[msg.prev_log_index].term != msg.prev_log_term
        ):
            self._network.send(
                self.node_id,
                src,
                AppendEntriesReply(self.current_term, False, 0),
            )
            return
        # Append, truncating conflicts.
        index = msg.prev_log_index
        for entry in msg.entries:
            index += 1
            if index < len(self.log):
                if self.log[index].term != entry.term:
                    del self.log[index:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.last_log_index())
            self._apply_committed()
        self._network.send(
            self.node_id,
            src,
            AppendEntriesReply(self.current_term, True, index),
        )

    def _on_append_reply(self, src: str, msg: AppendEntriesReply) -> None:
        self._maybe_step_down(msg.term)
        if self.role is not Role.LEADER:
            return
        if msg.success:
            self._match_index[src] = max(self._match_index.get(src, 0), msg.match_index)
            self._next_index[src] = self._match_index[src] + 1
            self._advance_commit()
        else:
            # Back off and retry immediately.
            self._next_index[src] = max(1, self._next_index.get(src, 1) - 1)
            self._send_append(src)

    def _advance_commit(self) -> None:
        """Commit the highest index replicated on a quorum of voters."""
        for index in range(self.last_log_index(), self.commit_index, -1):
            if self.log[index].term != self.current_term:
                continue  # §5.4.2: only commit entries from the current term
            votes = 1  # self
            for voter in self._other_voters():
                if self._match_index.get(voter, 0) >= index:
                    votes += 1
            if votes >= self.quorum():
                self.commit_index = index
                self._apply_committed()
                # Learner (columnar replica) lag in log entries at the
                # moment of commit — the Table 1 freshness story in data.
                learners = [l for l in self.learners if l != self.node_id]
                if learners:
                    behind = min(
                        self._match_index.get(l, 0) for l in learners
                    )
                    self._m_replication_lag.observe(
                        float(self.commit_index - behind)
                    )
                break

    def _apply_committed(self) -> None:
        if self._apply_batch_fn is not None and self.last_applied < self.commit_index:
            # Batched replay: hand the whole newly-committed run to the
            # state machine in one call (TiDB-style learner batching).
            start = self.last_applied + 1
            commands = [
                self.log[i].command for i in range(start, self.commit_index + 1)
            ]
            self.last_applied = self.commit_index
            self._apply_batch_fn(start, commands)
            return
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log[self.last_applied]
            if self._apply_fn is not None and entry.command is not None:
                self._apply_fn(self.last_applied, entry.command)


class RaftGroup:
    """A convenience wrapper: builds the nodes and drives the simulation."""

    def __init__(
        self,
        group_id: str,
        voter_ids: list[str],
        learner_ids: list[str],
        network: SimNetwork,
        cost: CostModel,
        apply_fns: dict[str, ApplyFn] | None = None,
        seed: int = 0,
        preferred_leader: str | None = None,
        apply_batch_fns: dict[str, BatchApplyFn] | None = None,
    ):
        self.group_id = group_id
        self.network = network
        self._cost = cost
        apply_fns = apply_fns or {}
        apply_batch_fns = apply_batch_fns or {}
        self.nodes: dict[str, RaftNode] = {}
        for node_id in list(voter_ids) + list(learner_ids):
            self.nodes[node_id] = RaftNode(
                node_id,
                voters=voter_ids,
                learners=learner_ids,
                network=network,
                cost=cost,
                apply_fn=apply_fns.get(node_id),
                seed=seed,
                preferred=(node_id == preferred_leader),
                apply_batch_fn=apply_batch_fns.get(node_id),
            )
        network.add_ticker(self._tick_all)

    def _tick_all(self) -> None:
        for node in self.nodes.values():
            node.tick()

    def shutdown(self) -> None:
        """Retire the group: deregister every replica from the network
        and stop driving timeouts.  Used when resharding merges a shard
        away — the group's log is dead weight once the map epoch flips."""
        for node_id in self.nodes:
            self.network.unregister(node_id)
        self.network.remove_ticker(self._tick_all)

    def advance(self, delta_us: float) -> None:
        """Advance the shared world clock (ticks every registered group)."""
        self.network.advance(delta_us)

    def run_for(self, total_us: float, step_us: float = 100.0) -> None:
        spent = 0.0
        while spent < total_us:
            self.advance(step_us)
            spent += step_us

    def leader(self) -> RaftNode | None:
        leaders = [n for n in self.nodes.values() if n.is_leader()]
        if not leaders:
            return None
        # With partitions a stale leader can linger; prefer highest term.
        return max(leaders, key=lambda n: n.current_term)

    def elect_leader(self, max_us: float = 50_000.0) -> RaftNode:
        spent = 0.0
        while spent < max_us:
            leader = self.leader()
            if leader is not None:
                return leader
            self.advance(100.0)
            spent += 100.0
        raise ConsensusError(f"group {self.group_id}: no leader after {max_us}us")

    def propose_and_wait(self, command: Any, max_us: float = 400_000.0) -> int:
        """Propose on the leader and advance time until it commits.

        If the leader is deposed mid-flight the command is re-proposed
        on the new leader (at-least-once delivery; the testbed's state
        machine commands are all idempotent per txn id).
        """
        spent = 0.0
        while spent < max_us:
            leader = self.elect_leader()
            index = leader.client_propose(command)
            term = leader.current_term
            while spent < max_us:
                if leader.commit_index >= index and leader.current_term == term:
                    return index
                if (
                    not leader.is_leader()
                    or leader.current_term != term
                    or self.leader() is not leader
                ):
                    # Deposed — or a crashed leader that still believes
                    # in itself while the group elected a successor at a
                    # higher term: re-elect and re-propose either way.
                    break
                self.advance(100.0)
                spent += 100.0
        raise ConsensusError(
            f"group {self.group_id}: command uncommitted after {max_us}us"
        )

    def propose_batch_and_wait(
        self, commands: list[Any], max_us: float = 400_000.0
    ) -> int:
        """Batched :meth:`propose_and_wait`: one log append + one
        replication round for the whole run of commands."""
        if not commands:
            leader = self.elect_leader()
            return leader.last_log_index()
        spent = 0.0
        while spent < max_us:
            leader = self.elect_leader()
            index = leader.client_propose_batch(commands)
            term = leader.current_term
            while spent < max_us:
                if leader.commit_index >= index and leader.current_term == term:
                    return index
                if (
                    not leader.is_leader()
                    or leader.current_term != term
                    or self.leader() is not leader
                ):
                    break  # deposed or superseded: re-elect and re-propose
                self.advance(100.0)
                spent += 100.0
        raise ConsensusError(
            f"group {self.group_id}: batch uncommitted after {max_us}us"
        )
