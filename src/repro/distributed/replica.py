"""The columnar learner replica: delta logs fed by Raft learner applies.

Extracted from ``cluster.py`` (which had grown to mix replica-merge,
placement, and 2PC orchestration): this module owns the analytics side
of architecture (b) — per-table delta logs that each shard's learner
stream appends into, and the log-based delta merge that folds them into
per-table column stores.

Resharding commands in the learner stream:

* ``"rehome"`` — proposed on the *target* group at the split/merge/
  migrate flip, carrying the moved interval's current committed rows;
  replayed through the same bulk path as ``"bulk"`` loads
  (``learner_apply_batch`` column slabs), it rebuilds the re-homed
  learner's columnar state idempotently (the values equal the truth at
  the flip instant, so replay can never resurrect stale data no matter
  how merges interleave).
* ``"install"`` / ``"tail"`` / ``"truncate"`` — voter-side migration
  machinery (staged snapshot, dual-logged writes, source cleanup).  The
  learner ignores them: the source shard's learner stream already
  carried every one of those writes, and the column replica is keyed by
  primary key, not by shard.
"""

from __future__ import annotations

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.predicate import ALWAYS_TRUE, Predicate
from ..common.types import Schema
from ..obs import get_registry
from ..storage.column_store import ColumnScanResult, ColumnStore
from ..storage.delta_batch import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_UPDATE,
    DeltaBatch,
)
from ..storage.delta_log import LogDeltaManager
from ..storage.delta_store import DeltaEntry, collapse_entries

#: Learner-stream commands the columnar replica deliberately skips
#: (voter-side resharding machinery; see the module docstring).
_LEARNER_IGNORED_OPS = frozenset({"install", "tail", "truncate"})


def _runs_by_table(writes):
    """Group one commit's writes by table, preserving per-table order.
    Single-table transactions (the common case) pass through without
    building intermediate groups."""
    if not writes:
        return ()
    first = writes[0].table
    if all(w.table == first for w in writes):
        return ((first, writes),)
    groups: dict[str, list] = {}
    for w in writes:
        groups.setdefault(w.table, []).append(w)
    return groups.items()


class ColumnarReplica:
    """The analytics side fed by learner applies: per-table delta logs
    that the log-based delta merge folds into per-table column stores."""

    def __init__(
        self,
        schemas: dict[str, Schema],
        cost: CostModel,
        seal_threshold: int = 64,
        vectorized: bool = True,
    ):
        self._cost = cost
        self.vectorized = vectorized
        self.delta_logs = {
            name: LogDeltaManager(schema, cost=cost, seal_threshold=seal_threshold)
            for name, schema in schemas.items()
        }
        self.column_stores = {
            name: ColumnStore(schema, cost=cost) for name, schema in schemas.items()
        }
        self.applied_ts: Timestamp = 0
        # Keyed by (shard, txn_id): each shard's learner stream carries
        # only that shard's slice of a 2PC transaction, and streams from
        # different shards interleave arbitrarily.
        self._pending: dict[tuple[int, int], tuple[list, Timestamp]] = {}
        registry = get_registry()
        self._m_merge_events = registry.counter("sync.log_merge.events")
        self._m_merge_rows = registry.counter("sync.log_merge.rows")
        self._h_apply_batch = registry.histogram("raft.apply_batch_commands")
        self._h_merge_batch = registry.histogram(
            "sync.batch_rows", technique="replica_merge"
        )
        self._h_merge_latency = registry.histogram(
            "sync.merge_latency_us", technique="replica_merge"
        )

    def learner_apply(self, region: int, _index: int, command: tuple) -> None:
        from .cluster import WriteKind

        op = command[0]
        if op in ("prepare", "intent"):
            _op, txn_id, writes, commit_ts = command
            self._pending[(region, txn_id)] = (writes, commit_ts)
        elif op == "commit1p":
            # Single-shard 1PC: the one command is already the decision.
            _op, txn_id, writes, commit_ts = command
            for w in writes:
                log = self.delta_logs[w.table]
                if w.kind is WriteKind.INSERT:
                    log.record_insert(w.row, commit_ts)
                elif w.kind is WriteKind.UPDATE:
                    log.record_update(w.row, commit_ts)
                else:
                    log.record_delete(w.key, commit_ts)
            self.applied_ts = max(self.applied_ts, commit_ts)
        elif op in ("commit", "resolve"):
            if op == "resolve" and not command[2]:
                # A resolved abort: drop the staged intent.
                self._pending.pop((region, command[1]), None)
                return
            staged = self._pending.pop((region, command[1]), None)
            if staged is None:
                return
            writes, commit_ts = staged
            for w in writes:
                log = self.delta_logs[w.table]
                if w.kind is WriteKind.INSERT:
                    log.record_insert(w.row, commit_ts)
                elif w.kind is WriteKind.UPDATE:
                    log.record_update(w.row, commit_ts)
                else:
                    log.record_delete(w.key, commit_ts)
            self.applied_ts = max(self.applied_ts, commit_ts)
        elif op == "abort":
            _op, txn_id = command
            self._pending.pop((region, txn_id), None)
        elif op in ("bulk", "rehome"):
            _op, table, rows, commit_ts = command
            log = self.delta_logs[table]
            for row in rows:
                if op == "rehome":
                    log.record_update(row, commit_ts)
                else:
                    log.record_insert(row, commit_ts)
            self.applied_ts = max(self.applied_ts, commit_ts)
        elif op in _LEARNER_IGNORED_OPS:
            return

    def learner_apply_batch(
        self, region: int, _start_index: int, commands: list[tuple]
    ) -> None:
        """Batched log replay: one pass over a committed run of commands,
        accumulating per-table column slabs (kind codes, keys, rows,
        commit timestamps) that land with one columnar bulk append each
        (TiDB's batched learner replay) — no per-write DeltaEntry
        objects on this path."""
        from .cluster import WriteKind

        per_table: dict[str, tuple[list, list, list, list]] = {}
        max_ts = self.applied_ts
        pending = self._pending
        insert_kind = WriteKind.INSERT
        delete_kind = WriteKind.DELETE
        for command in commands:
            op = command[0]
            if op in ("prepare", "intent"):
                _op, txn_id, writes, commit_ts = command
                pending[(region, txn_id)] = (writes, commit_ts)
            elif op in ("commit", "resolve", "commit1p"):
                if op == "commit1p":
                    _op, _txn_id, writes, commit_ts = command
                elif op == "resolve" and not command[2]:
                    # A resolved abort: drop the staged intent.
                    pending.pop((region, command[1]), None)
                    continue
                else:
                    staged = pending.pop((region, command[1]), None)
                    if staged is None:
                        continue
                    writes, commit_ts = staged
                for table, run in _runs_by_table(writes):
                    cols = per_table.get(table)
                    if cols is None:
                        cols = per_table[table] = ([], [], [], [])
                    kinds, keys, rows, ts = cols
                    # Identity checks beat enum-hash dict lookups here.
                    kinds.extend(
                        [
                            KIND_INSERT
                            if w.kind is insert_kind
                            else (
                                KIND_DELETE
                                if w.kind is delete_kind
                                else KIND_UPDATE
                            )
                            for w in run
                        ]
                    )
                    keys.extend([w.key for w in run])
                    rows.extend(
                        [None if w.kind is delete_kind else w.row for w in run]
                    )
                    ts.extend([commit_ts] * len(run))
                if commit_ts > max_ts:
                    max_ts = commit_ts
            elif op == "abort":
                pending.pop((region, command[1]), None)
            elif op in ("bulk", "rehome"):
                # "rehome" rides the same bulk slab path: the re-homed
                # learner's columnar slice rebuilds as one batched
                # upsert append, exactly like a bulk load.
                _op, table, bulk_rows, commit_ts = command
                cols = per_table.get(table)
                if cols is None:
                    cols = per_table[table] = ([], [], [], [])
                kinds, keys, rows, ts = cols
                key_of = self.delta_logs[table].schema.key_of
                kind = KIND_INSERT if op == "bulk" else KIND_UPDATE
                kinds.extend([kind] * len(bulk_rows))
                keys.extend([key_of(row) for row in bulk_rows])
                rows.extend(bulk_rows)
                ts.extend([commit_ts] * len(bulk_rows))
                if commit_ts > max_ts:
                    max_ts = commit_ts
            elif op in _LEARNER_IGNORED_OPS:
                continue
        for table, (kinds, keys, rows, ts) in per_table.items():
            self.delta_logs[table].append_batch_columns(kinds, keys, rows, ts)
        self.applied_ts = max_ts
        self._h_apply_batch.observe(len(commands))

    # ------------------------------------------------------------- queries

    def scan(
        self,
        table: str,
        columns: list[str] | None,
        predicate: Predicate = ALWAYS_TRUE,
        read_delta: bool = True,
        encode: bool = False,
    ) -> ColumnScanResult:
        """Log-based delta + column scan (Table 2's second AP technique).

        ``encode=True`` keeps dictionary columns as CodeColumns across
        the delta overlay (fresh log rows fold into the code space with
        a decoded fallback)."""
        store = self.column_stores[table]
        result = store.scan(columns, predicate, encode=encode)
        if not read_delta:
            return result
        live, tombstones = self.delta_logs[table].effective_rows()
        if not live and not tombstones:
            return result
        schema = store.schema
        from ..common.types import rows_to_columns
        from ..storage.code_batch import overlay_arrays

        drop = tombstones | set(live)
        fresh_rows = [
            row for row in live.values() if predicate.matches(row, schema)
        ]
        fresh_columns = rows_to_columns(schema, fresh_rows) if fresh_rows else None
        result.arrays = overlay_arrays(
            result.arrays, result.keys, drop, fresh_rows, fresh_columns
        )
        if drop:
            result.keys = [k for k in result.keys if k not in drop]
        if fresh_rows:
            result.keys.extend(schema.key_of(r) for r in fresh_rows)
        return result

    def merge_deltas(self) -> int:
        """Log-based delta merge: seal + fold every delta file into the
        column stores.  Returns rows merged."""
        start = self._cost.now_us()
        merged = 0
        batch_entries = 0
        for table, log in self.delta_logs.items():
            log.seal()
            files = log.drain_files()
            if not files:
                continue
            self._m_merge_events.inc()
            store = self.column_stores[table]
            if self.vectorized:
                # Concatenate the files' column slabs without ever
                # materializing DeltaEntry objects.
                kinds: list[int] = []
                keys: list = []
                rows: list = []
                ts: list = []
                for f in files:
                    self._cost.charge(self._cost.page_read_us * f.page_count())
                    f_kinds, f_keys, f_rows, f_ts = f.columns()
                    kinds.extend(f_kinds)
                    keys.extend(f_keys)
                    rows.extend(f_rows)
                    ts.extend(f_ts)
                batch_entries += len(keys)
                merged += self._fold_vectorized(store, kinds, keys, rows, ts)
                if ts:
                    store.advance_sync_ts(max(ts))
            else:
                entries: list[DeltaEntry] = []
                for f in files:
                    self._cost.charge(self._cost.page_read_us * f.page_count())
                    entries.extend(f.entries)
                batch_entries += len(entries)
                merged += self._fold_scalar(store, entries)
                if entries:
                    store.advance_sync_ts(max(e.commit_ts for e in entries))
        elapsed = self._cost.now_us() - start
        self._h_merge_batch.observe(batch_entries)
        self._h_merge_latency.observe(elapsed)
        return merged

    def _fold_scalar(self, store: ColumnStore, entries: list[DeltaEntry]) -> int:
        live, tombstones = collapse_entries(entries)
        if tombstones:
            store.delete_keys(tombstones)
        if not live:
            return 0
        rows = list(live.values())
        max_ts = max(e.commit_ts for e in entries)
        self._cost.charge_rows(self._cost.merge_per_row_us, len(rows))
        store.append_rows(rows, commit_ts=max_ts)
        self._m_merge_rows.inc(len(rows))
        return len(rows)

    def _fold_vectorized(
        self,
        store: ColumnStore,
        kinds: list[int],
        keys: list,
        rows: list,
        ts: list,
    ) -> int:
        from ..common.types import rows_to_columns

        collapsed = DeltaBatch.from_columns(kinds, keys, rows, ts).collapse()
        if collapsed.tombstones:
            store.delete_batch(collapsed.tombstones)
        if not collapsed.live_keys:
            return 0
        self._cost.charge_rows(self._cost.merge_per_row_us, len(collapsed.live_keys))
        arrays = rows_to_columns(store.schema, collapsed.live_rows)
        store.append_batch(arrays, collapsed.live_keys, commit_ts=max(ts))
        self._m_merge_rows.inc(len(collapsed.live_keys))
        return len(collapsed.live_keys)

    def unmerged_entries(self) -> int:
        return sum(log.pending_entries() for log in self.delta_logs.values())
