"""Stateless routers: cached shard maps, bisect lookups, stale retries.

A :class:`Router` is the TiDB-server / proxy role: it holds no data,
only a cached :class:`~repro.distributed.metadata.ShardMap`.  Routing a
key is a local bisect over the cached map — **zero** metadata round
trips on the hot path.  The metadata node is consulted only when a
shard rejects a request with :class:`StaleEpochError` (the cached map
routed to a group that no longer owns the key after a split/merge/
migration): the router then pays one metadata RTT to catch up
(incremental deltas when the service still has them, full snapshot
otherwise) and retries with capped exponential backoff.  Retries are
bounded; exhaustion surfaces as :class:`RoutingError` rather than
looping forever against a flapping map.

Routers are cheap — a deployment runs many; each keeps its own cache
and its own staleness, which is exactly what the resharding chaos test
exercises (a freshly started router with an old snapshot must converge
through the same retry path).

Placement awareness costs the router nothing: the cluster hands it a
``point_fn`` that already folds in the
:class:`~repro.distributed.metadata.PlacementPolicy`, so co-located
rows map to one point and route with the same bisect as any other.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

from ..common.cost import CostModel
from ..common.errors import RoutingError, StaleEpochError
from ..obs import get_registry
from .metadata import MetadataService, Shard, ShardMap, hash_point

T = TypeVar("T")

#: Retry backoff: ``base * 2**attempt`` simulated µs, capped.
BACKOFF_BASE_US = 50.0
BACKOFF_CAP_US = 800.0


class Router:
    """One stateless routing node with a private shard-map cache."""

    def __init__(
        self,
        metadata: MetadataService,
        cost: CostModel | None = None,
        name: str = "router0",
        max_retries: int = 4,
        point_fn: Callable[[str, Any], int] = hash_point,
    ):
        self._metadata = metadata
        self._cost = cost or CostModel()
        self.name = name
        self.max_retries = max_retries
        self._point_fn = point_fn
        self._map: ShardMap = metadata.snapshot()
        reg = get_registry()
        labels = {"router": name}
        self._m_routes = reg.counter("router.routes", **labels)
        self._m_refreshes = reg.counter("router.refreshes", **labels)
        self._m_stale = reg.counter("router.stale_retries", **labels)
        self._m_exhausted = reg.counter("router.retries_exhausted", **labels)
        self._g_epoch = reg.gauge("router.cached_epoch", **labels)
        self._g_epoch.set(float(self._map.epoch))

    # ------------------------------------------------------------- hot path

    @property
    def cached_epoch(self) -> int:
        return self._map.epoch

    def point_of(self, table: str, key: Any) -> int:
        return self._point_fn(table, key)

    def shard_for(self, table: str, key: Any) -> Shard:
        """Cache-only lookup: bisect over the cached map, no metadata
        traffic, no simulated network charge."""
        self._m_routes.inc()
        return self._map.shard_for_point(self._point_fn(table, key))

    def shard_for_point(self, point: int) -> Shard:
        self._m_routes.inc()
        return self._map.shard_for_point(point)

    # ------------------------------------------------------------- refresh

    def refresh(self) -> int:
        """Catch the cache up to the metadata service (one RTT).

        Returns the number of epochs advanced."""
        self._cost.charge(self._cost.network_rtt_us)
        self._m_refreshes.inc()
        before = self._map.epoch
        deltas = self._metadata.deltas_since(before)
        if deltas is None:
            self._map = self._metadata.snapshot()
        else:
            for delta in deltas:
                self._map = self._map.apply(delta)
        self._g_epoch.set(float(self._map.epoch))
        return self._map.epoch - before

    # ------------------------------------------------------------- retries

    def retrying(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` (which routes through this router's cache) until
        it stops raising :class:`StaleEpochError`: each rejection costs
        one capped backoff plus one metadata refresh, bounded by
        ``max_retries``."""
        attempt = 0
        while True:
            try:
                return fn()
            except StaleEpochError as err:
                self._m_stale.inc()
                if attempt >= self.max_retries:
                    self._m_exhausted.inc()
                    raise RoutingError(
                        f"router {self.name}: {attempt + 1} stale-epoch "
                        f"rejections without converging (metadata at epoch "
                        f"{err.current_epoch})"
                    ) from err
                self._cost.charge(
                    min(BACKOFF_BASE_US * (2.0 ** attempt), BACKOFF_CAP_US)
                )
                self.refresh()
                attempt += 1

    def call(self, table: str, key: Any, fn: Callable[[Shard], T]) -> T:
        """Route one keyed operation with the full retry protocol."""
        return self.retrying(lambda: fn(self.shard_for(table, key)))

    # ------------------------------------------------------------- report

    @property
    def stats(self) -> dict[str, float]:
        return {
            "routes": self._m_routes.value,
            "refreshes": self._m_refreshes.value,
            "stale_retries": self._m_stale.value,
            "retries_exhausted": self._m_exhausted.value,
            "cached_epoch": float(self._map.epoch),
        }
