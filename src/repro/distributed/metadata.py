"""Epoch-versioned shard maps and the metadata service that owns them.

The elastic counterpart of the static partitioner: the key space is a
totally ordered ring of *points* (a stable 64-bit hash of ``(table,
key)`` for hash shards, or the leading key column for range shards),
tiled by contiguous shard intervals, each interval served by its own
Raft group.  The :class:`ShardMap` is the routing table — an immutable,
epoch-stamped snapshot with O(log shards) point lookup (bisect over the
interval lower bounds; never a linear scan).

:class:`MetadataService` is the single writer (PD / placement-driver
role): resharding operations propose deltas, the service bumps the
epoch and appends the delta to a bounded history so stateless routers
can catch up incrementally (``deltas_since``) instead of refetching the
whole map.  Routers that fall behind the retained history take a full
snapshot.  Shards enforce the epoch contract: a request routed with a
map that no longer owns the key is rejected with
:class:`~repro.common.errors.StaleEpochError`, which is the router's
cue to refresh and retry — the metadata node is *never* on the routing
hot path.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..common.errors import RoutingError, StorageError
from ..obs import get_registry
from .partitioner import _stable_hash, placement_point

#: The hash keyspace tiles the full 64-bit stable-hash ring.
RING_SIZE = 1 << 64

#: Deltas retained by the metadata service; routers further behind
#: than this take a full snapshot instead of an incremental catch-up.
DELTA_HISTORY = 64


def hash_point(table: str, key: Any) -> int:
    """Ring position of one row: stable across processes and runs."""
    return _stable_hash((table, key))


@dataclass(frozen=True)
class PlacementKey:
    """One table's placement rule: hash only the leading ``prefix_len``
    key columns, namespaced by ``group``.

    Tables sharing a ``group`` and prefix *values* co-locate exactly —
    customer ``(w, d, c)`` and history ``(w, d, c, h_id)`` under the
    same group with ``prefix_len=3`` hash to the identical ring point,
    so a payment's customer update and history insert always commit on
    one shard.  Placement changes only the point function, never the
    ring: routing, the epoch contract, and resharding all keep working
    on points exactly as before.
    """

    group: str
    prefix_len: int


class PlacementPolicy:
    """Table -> :class:`PlacementKey` rules consulted by ``point_of``.

    TiDB placement-rule / F1 table-group style: the policy is declared
    with the schema (before any row is placed) and is deliberately
    *not* part of the epoch-versioned shard map — it never changes at
    runtime, so every component (router caches, shard ownership checks,
    resharding snapshots and truncates) derives the same point for the
    same row forever.
    """

    def __init__(self) -> None:
        self._rules: dict[str, PlacementKey] = {}

    def declare(self, table: str, group: str, prefix_len: int) -> None:
        if prefix_len < 1:
            raise StorageError("placement prefix must keep at least one column")
        if not group:
            raise StorageError("placement group name must be non-empty")
        existing = self._rules.get(table)
        if existing is not None and existing != PlacementKey(group, prefix_len):
            raise StorageError(
                f"table {table!r} already placed in group "
                f"{existing.group!r} (prefix {existing.prefix_len})"
            )
        self._rules[table] = PlacementKey(group, prefix_len)

    def rule(self, table: str) -> PlacementKey | None:
        return self._rules.get(table)

    def tables(self) -> list[str]:
        return sorted(self._rules)

    def point_of(self, table: str, key: Any) -> int:
        """Ring position of one row under this policy; tables without
        a rule fall back to the plain per-row ``hash_point``."""
        rule = self._rules.get(table)
        if rule is None:
            return hash_point(table, key)
        prefix = key if isinstance(key, tuple) else (key,)
        if len(prefix) < rule.prefix_len:
            raise RoutingError(
                f"key {key!r} of {table!r} is shorter than its placement "
                f"prefix ({rule.prefix_len} columns)"
            )
        return placement_point(rule.group, prefix[: rule.prefix_len])


@dataclass(frozen=True)
class Shard:
    """One contiguous interval ``[lo, hi)`` of the ring, one Raft group."""

    shard_id: int
    lo: int
    hi: int

    def owns(self, point: int) -> bool:
        return self.lo <= point < self.hi

    def midpoint(self) -> int:
        return self.lo + (self.hi - self.lo) // 2


@dataclass(frozen=True)
class ShardMapDelta:
    """One epoch transition: drop ``removed`` ids, add ``added`` entries."""

    epoch: int
    removed: tuple[int, ...]
    added: tuple[Shard, ...]


class ShardMap:
    """Immutable epoch-stamped shard table with bisect routing."""

    def __init__(self, shards: Iterable[Shard], epoch: int = 0):
        ordered = sorted(shards, key=lambda s: s.lo)
        if not ordered:
            raise StorageError("a shard map needs at least one shard")
        for left, right in zip(ordered, ordered[1:]):
            if left.hi != right.lo:
                raise StorageError(
                    f"shard intervals must tile the ring: shard {left.shard_id} "
                    f"ends at {left.hi}, shard {right.shard_id} starts at {right.lo}"
                )
        for shard in ordered:
            if shard.lo >= shard.hi:
                raise StorageError(f"shard {shard.shard_id} interval is empty")
        self.epoch = epoch
        self._shards = tuple(ordered)
        self._los = [s.lo for s in ordered]
        self._by_id = {s.shard_id: s for s in ordered}

    # ------------------------------------------------------------- routing

    def shard_for_point(self, point: int) -> Shard:
        """O(log shards) interval lookup; the routing hot path."""
        idx = bisect_right(self._los, point) - 1
        if idx < 0 or not self._shards[idx].owns(point):
            raise RoutingError(
                f"point {point} outside the mapped ring "
                f"[{self._los[0]}, {self._shards[-1].hi})"
            )
        return self._shards[idx]

    def get(self, shard_id: int) -> Shard | None:
        return self._by_id.get(shard_id)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shards(self) -> tuple[Shard, ...]:
        return self._shards

    def shard_ids(self) -> list[int]:
        return sorted(self._by_id)

    # ------------------------------------------------------------- evolve

    def apply(self, delta: ShardMapDelta) -> "ShardMap":
        """New map with ``delta`` applied (epoch taken from the delta)."""
        if delta.epoch <= self.epoch:
            raise StorageError(
                f"delta epoch {delta.epoch} not newer than map epoch {self.epoch}"
            )
        removed = set(delta.removed)
        survivors = [s for s in self._shards if s.shard_id not in removed]
        return ShardMap([*survivors, *delta.added], epoch=delta.epoch)

    @staticmethod
    def uniform(n_shards: int, span: tuple[int, int] = (0, RING_SIZE)) -> "ShardMap":
        """``n_shards`` equal intervals tiling ``span`` — the boot map."""
        lo, hi = span
        if n_shards < 1:
            raise StorageError("need at least one shard")
        width = (hi - lo) // n_shards
        if width < 1:
            raise StorageError("span too narrow for that many shards")
        bounds = [lo + i * width for i in range(n_shards)] + [hi]
        return ShardMap(
            [
                Shard(shard_id=i, lo=bounds[i], hi=bounds[i + 1])
                for i in range(n_shards)
            ]
        )

    @staticmethod
    def balanced(points: Iterable[int], n_shards: int) -> "ShardMap":
        """Boot map cut at load quantiles instead of equal ring spans.

        ``points`` is an expected-load sample: one entry per anticipated
        unit of traffic (repeat a point to weight it).  Equal ring spans
        give every shard equal *hash space*; with placement-driven
        co-location the traffic rides a finite population of placement
        points, and equal spans leave the busiest shard holding ~1.5x
        the mean — a fixed imbalance no amount of extra work shrinks.
        Cutting at equal-count quantiles of the sample gives every shard
        equal *expected load* instead, which is what placement drivers
        in real systems converge to via load-based splitting.

        Falls back to :meth:`uniform` when the sample is too small or
        too duplicate-heavy to yield ``n_shards`` distinct intervals.
        """
        if n_shards < 1:
            raise StorageError("need at least one shard")
        sample = sorted(points)
        if sample and not (0 <= sample[0] and sample[-1] < RING_SIZE):
            raise StorageError("sample points must lie on the ring")
        bounds = [0]
        for i in range(1, n_shards):
            cut = sample[(i * len(sample)) // n_shards] if sample else 0
            if cut > bounds[-1]:
                bounds.append(cut)
        if len(bounds) < n_shards:
            return ShardMap.uniform(n_shards)
        bounds.append(RING_SIZE)
        return ShardMap(
            [
                Shard(shard_id=i, lo=bounds[i], hi=bounds[i + 1])
                for i in range(n_shards)
            ]
        )


class MetadataService:
    """The authoritative shard map plus a bounded delta history.

    Single-writer by construction (resharding operations call
    :meth:`propose`); readers are the stateless routers, which pay a
    metadata round trip only on :meth:`snapshot` / :meth:`deltas_since`
    — never per routed operation.
    """

    def __init__(self, initial: ShardMap, history: int = DELTA_HISTORY):
        self._map = initial
        self._history: list[ShardMapDelta] = []
        self._history_cap = history
        self._next_shard_id = max(initial.shard_ids()) + 1
        reg = get_registry()
        self._g_epoch = reg.gauge("shardmap.epoch")
        self._g_shards = reg.gauge("shardmap.shards")
        self._m_delta_fetches = reg.counter("shardmap.delta_fetches")
        self._m_full_fetches = reg.counter("shardmap.full_fetches")
        self._g_epoch.set(float(initial.epoch))
        self._g_shards.set(float(initial.n_shards))

    @property
    def epoch(self) -> int:
        return self._map.epoch

    def rebound(self, new_map: ShardMap) -> ShardMapDelta:
        """Re-cut every boundary in one epoch transition, keeping the
        shard-id population (e.g. install :meth:`ShardMap.balanced` load
        quantiles at boot).  Goes through :meth:`propose` — a boundary
        change is a map change, and routers that cached the old cut must
        be able to converge through the delta history like any other
        transition."""
        if sorted(new_map.shard_ids()) != sorted(self._map.shard_ids()):
            raise StorageError(
                "rebound must keep the same shard ids "
                f"({sorted(new_map.shard_ids())} vs "
                f"{sorted(self._map.shard_ids())})"
            )
        return self.propose(
            removed=list(self._map.shard_ids()),
            added=[new_map.get(sid) for sid in new_map.shard_ids()],
        )

    def current(self) -> ShardMap:
        """The live map, free of charge — for co-located components
        (shard servers checking ownership); routers use the fetch APIs
        so cache behaviour stays observable."""
        return self._map

    # ------------------------------------------------------------- fetch

    def snapshot(self) -> ShardMap:
        """Full-map fetch (router bootstrap, or too far behind)."""
        self._m_full_fetches.inc()
        return self._map

    def deltas_since(self, epoch: int) -> list[ShardMapDelta] | None:
        """Incremental catch-up from ``epoch``; ``None`` means the
        history no longer reaches back that far — take a snapshot."""
        if epoch >= self._map.epoch:
            self._m_delta_fetches.inc()
            return []
        missing = [d for d in self._history if d.epoch > epoch]
        if not missing or missing[0].epoch != epoch + 1:
            return None
        self._m_delta_fetches.inc()
        return missing

    # ------------------------------------------------------------- evolve

    def allocate_shard_id(self) -> int:
        sid = self._next_shard_id
        self._next_shard_id += 1
        return sid

    def propose(
        self, removed: Sequence[int], added: Sequence[Shard]
    ) -> ShardMapDelta:
        """Apply one resharding transition; bumps the epoch atomically."""
        delta = ShardMapDelta(
            epoch=self._map.epoch + 1,
            removed=tuple(removed),
            added=tuple(added),
        )
        self._map = self._map.apply(delta)
        self._history.append(delta)
        if len(self._history) > self._history_cap:
            del self._history[: len(self._history) - self._history_cap]
        self._g_epoch.set(float(self._map.epoch))
        self._g_shards.set(float(self._map.n_shards))
        return delta
