"""The common engine surface all four architectures implement.

An :class:`HTAPEngine` owns a clock, a cost model, a busy-time ledger,
and a planner/executor pair over its architecture-specific
TableAccess adapters.  Uniform API:

* ``create_table(schema)`` then ``session()`` for interactive OLTP
  (read / insert / update / delete / commit with snapshot semantics as
  the architecture provides them);
* ``query(sql_or_Query)`` for OLAP through the cost-based optimizer;
* ``sync()`` to run the architecture's data-synchronization technique;
* ``freshness_lag()`` / ``memory_report()`` / ``tp_nodes()`` /
  ``ap_nodes()`` for the benches.

Engines charge simulated time to the shared clock (latency) and busy
time to named nodes in the ledger (throughput/makespan); the Table 1
bench derives every metric from those two ledgers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import dataclasses
from typing import Sequence

from ..common.clock import LogicalClock, Timestamp
from ..common.cost import CostModel
from ..common.errors import QueryError
from ..common.predicate import ALWAYS_TRUE, Predicate, bind_predicate
from ..common.types import Key, Row, Schema
from ..distributed.cluster import BusyLedger
from ..obs import SimTracer, get_registry
from ..query.access import AccessPath
from ..query.ast import Query, QueryResult
from ..query.executor import Executor
from ..query.optimizer import Planner, PhysicalPlan
from ..query.parser import parse
from ..query.plan_cache import CachedPlan, PlanCache, param_signature
from ..query.scan_cache import ScanCache


@dataclass
class EngineInfo:
    name: str
    category: str          # the Figure 1 panel: "a" | "b" | "c" | "d"
    description: str


class EngineSession(abc.ABC):
    """One interactive transaction against an engine.

    Implementations must set ``finished = True`` in commit/abort so the
    context manager does not double-finish an explicitly closed session.
    """

    finished: bool = False

    @abc.abstractmethod
    def read(self, table: str, key: Key) -> Row | None: ...

    @abc.abstractmethod
    def scan(self, table: str, predicate: Predicate = ALWAYS_TRUE) -> list[Row]: ...

    @abc.abstractmethod
    def insert(self, table: str, row: Row) -> Key: ...

    @abc.abstractmethod
    def update(self, table: str, row: Row) -> None: ...

    @abc.abstractmethod
    def delete(self, table: str, key: Key) -> None: ...

    @abc.abstractmethod
    def commit(self) -> Timestamp: ...

    @abc.abstractmethod
    def abort(self) -> None: ...

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.finished:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class HTAPEngine(abc.ABC):
    """Base class for the four Figure 1 architectures."""

    info: EngineInfo

    def __init__(self, cost: CostModel | None = None, clock: LogicalClock | None = None):
        self.cost = cost or CostModel()
        self.clock = clock or LogicalClock()
        self.ledger = BusyLedger()
        self._catalog: dict[str, Any] = {}
        self._planner: Planner | None = None
        self._executor: Executor | None = None
        self.queries_run = 0
        #: When False, analytical scans skip delta patching (isolated
        #: execution mode — faster and staler); schedulers toggle this.
        self.read_fresh = True
        #: Sim-time tracer over this engine's clock; disabled (zero
        #: overhead) until a bench or test calls ``tracer.enable()``.
        self.tracer = SimTracer(self.cost.clock)
        #: MVCC-aware snapshot-scan cache shared by this engine's
        #: executor; write/sync paths invalidate it per table, and the
        #: adapters' ``cache_token()`` version-fences it besides.
        self.scan_cache = ScanCache(labels={"engine": self.info.name})
        #: Parameterized plan cache for prepared statements; fenced on
        #: per-table stats epochs and invalidated eagerly on DDL and
        #: sync/merge (the same write paths as the scan cache).
        self.plan_cache = PlanCache(labels={"engine": self.info.name})
        labels = {"engine": self.info.name}
        registry = get_registry()
        self._m_tp_commits = registry.counter("engine.tp_commits", **labels)
        self._m_tp_aborts = registry.counter("engine.tp_aborts", **labels)
        self._m_ap_queries = registry.counter("engine.ap_queries", **labels)
        self._m_sync_calls = registry.counter("engine.sync_calls", **labels)
        self._m_sync_rows = registry.counter("engine.sync_rows", **labels)

    # ------------------------------------------------------------- schema

    @abc.abstractmethod
    def create_table(self, schema: Schema) -> None: ...

    @abc.abstractmethod
    def session(self) -> EngineSession: ...

    def sync(self) -> int:
        """Run the architecture's DS technique; returns rows moved.

        Concrete engines implement :meth:`_sync`; this wrapper charges
        the shared observability layer (sync call/row counters and a
        tracing span) uniformly across all four architectures.
        """
        with self.tracer.span("engine.sync", engine=self.info.name):
            moved = self._sync()
        # Sync advances the AP image; cached batches for it are stale.
        # A no-op sync moved nothing — the version tokens fencing every
        # cache entry did not change, so the cache stays valid and warm
        # (coalesced, once-per-batch invalidation).
        if moved:
            self.scan_cache.invalidate()
            # Merge/sync replaces the columnar image the cached plans
            # were costed against; drop them with the batches.
            self.plan_cache.invalidate()
        self._m_sync_calls.inc()
        if moved:
            self._m_sync_rows.inc(moved)
        return moved

    @abc.abstractmethod
    def _sync(self) -> int:
        """Architecture-specific data synchronization; returns rows moved."""

    @abc.abstractmethod
    def freshness_lag(self) -> int:
        """Commit-ts distance between OLTP truth and the AP read path."""

    def image_freshness_lag(self) -> int:
        """Staleness of the columnar *image* itself, ignoring whether
        queries currently patch fresh data in (used by schedulers)."""
        saved = self.read_fresh
        self.read_fresh = False
        try:
            return self.freshness_lag()
        finally:
            self.read_fresh = saved

    @abc.abstractmethod
    def memory_report(self) -> dict[str, int]:
        """Bytes per component (row store, column store, delta, ...)."""

    def tp_nodes(self) -> list[str]:
        """Ledger nodes that serve OLTP (isolation is measured here)."""
        return ["node0"]

    def ap_nodes(self) -> list[str]:
        return ["node0"]

    # ------------------------------------------------------------- catalog

    @property
    def catalog(self) -> dict[str, Any]:
        return self._catalog

    def _register_adapter(self, table: str, adapter: Any) -> None:
        self._catalog[table] = adapter
        self._planner = None
        self._executor = None
        # DDL: plans compiled against the old catalog are void.
        self.plan_cache.invalidate()

    @property
    def planner(self) -> Planner:
        if self._planner is None:
            self._planner = Planner(self._catalog, self.cost)
        return self._planner

    @property
    def executor(self) -> Executor:
        if self._executor is None:
            self._executor = Executor(
                self._catalog, self.cost, scan_cache=self.scan_cache
            )
        return self._executor

    # ------------------------------------------------------------- OLAP

    def query(
        self,
        query: str | Query,
        force_path: AccessPath | None = None,
        params: Sequence[Any] = (),
    ) -> QueryResult:
        """Plan + execute; AP busy time lands on the engine's AP nodes.

        This is the *cold* path: every call parses and optimizes.
        Prepared statements go through :meth:`execute_prepared`, which
        serves repeat shapes from the plan cache.  ``params`` binds
        ``?`` placeholders positionally.
        """
        logical = parse(query) if isinstance(query, str) else query
        if logical.param_count > 0 or params:
            if logical.param_count != len(params):
                raise QueryError(
                    f"statement has {logical.param_count} parameters, "
                    f"{len(params)} bound"
                )
            logical = dataclasses.replace(
                logical,
                where=bind_predicate(logical.where, params),
                param_count=0,
            )
        planner = (
            self.planner
            if force_path is None
            else Planner(self._catalog, self.cost, force_path=force_path)
        )
        return self.run_plan(planner.plan(logical))

    def run_plan(self, plan: PhysicalPlan) -> QueryResult:
        """Execute an already-built plan with uniform AP accounting.

        Both the cold path and the plan-cache hit path funnel through
        here, so a cached plan costs exactly what the same plan costs
        cold — planning itself charges no simulated time.
        """
        before = self.cost.now_us()
        with self.tracer.span("engine.query", engine=self.info.name):
            result = self.executor.execute(plan)
        spent = self.cost.now_us() - before
        ap_nodes = self.ap_nodes()
        for node in ap_nodes:
            self.ledger.charge(node, spent / len(ap_nodes))
        self.queries_run += 1
        self._m_ap_queries.inc()
        return result

    def _stats_epoch_of(self, table: str) -> int | None:
        """Current stats epoch, or None when the adapter has no epoch
        protocol (which opts its statements out of plan caching)."""
        adapter = self._catalog[table]
        epoch_fn = getattr(adapter, "stats_epoch", None)
        return None if epoch_fn is None else epoch_fn()

    def execute_prepared(
        self, statement: str, params: Sequence[Any] = ()
    ) -> QueryResult:
        """The prepared-statement path: parse/optimize once per
        (statement, param-type signature, stats epoch), then re-execute
        the cached plan with each call's parameters rebound."""
        signature = param_signature(params)
        entry = self.plan_cache.lookup(
            statement, signature, self._stats_epoch_of
        )
        if entry is not None:
            if entry.param_count != len(params):
                raise QueryError(
                    f"statement has {entry.param_count} parameters, "
                    f"{len(params)} bound"
                )
            return self.run_plan(entry.bind(params))
        template = parse(statement)
        if template.param_count != len(params):
            raise QueryError(
                f"statement has {template.param_count} parameters, "
                f"{len(params)} bound"
            )
        # Bind-peek: plan with this call's values so selectivity
        # estimation sees concrete literals.
        bound = dataclasses.replace(
            template,
            where=bind_predicate(template.where, params),
            param_count=0,
        )
        plan = self.planner.plan(bound)
        tables = tuple(bound.tables)
        # Epochs are read *after* planning: plan() pulled stats through
        # the same StatsCache, so these are exactly the versions the
        # plan was costed against.
        stats_token = tuple(self._stats_epoch_of(t) for t in tables)
        if None not in stats_token:
            # A table without the epoch protocol cannot be fenced, so
            # statements touching it are never cached.
            self.plan_cache.store(
                statement,
                signature,
                CachedPlan(
                    plan=plan,
                    template_predicates=self.planner.scan_predicates(template),
                    param_count=len(params),
                    tables=tables,
                    stats_token=stats_token,
                ),
            )
        return self.run_plan(plan)

    def explain(self, query: str | Query) -> str:
        logical = parse(query) if isinstance(query, str) else query
        return self.planner.plan(logical).explain()

    # ------------------------------------------------------------- OLTP sugar

    def insert(self, table: str, row: Row) -> Timestamp:
        with self.session() as s:
            s.insert(table, row)
        return self.clock.now()

    def update(self, table: str, row: Row) -> Timestamp:
        with self.session() as s:
            s.update(table, row)
        return self.clock.now()

    def delete(self, table: str, key: Key) -> Timestamp:
        with self.session() as s:
            s.delete(table, key)
        return self.clock.now()

    def load_rows(self, table: str, rows: list[Row], batch: int = 1000) -> None:
        """Bulk load used by benchmark data generators."""
        for start in range(0, len(rows), batch):
            with self.session() as s:
                for row in rows[start : start + batch]:
                    s.insert(table, row)

    def bulk_load(self, table: str, rows: list[Row]) -> None:
        """Load fresh rows on the fast path: one WAL batch, one delta
        batch, one cache invalidation for the whole set.

        The base implementation falls back to row-at-a-time sessions;
        engines override with their architecture's true bulk ingest.
        The rows must be new (no dup-key checking happens here).
        """
        self.load_rows(table, rows)

    # ------------------------------------------------------------- metrics

    def memory_bytes(self) -> int:
        return sum(self.memory_report().values())

    def reset_meters(self) -> None:
        self.ledger.reset()
