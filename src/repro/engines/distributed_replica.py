"""Architecture (b): Distributed Row Store + Column Store Replica.

The TiDB shape over the simulated cluster: transactions commit through
2PC over Raft-replicated regions ("2PC+Raft+logging"); Raft learners
feed a columnar replica on separate analytics nodes; OLAP runs the
"log-based delta and column scan" against that replica.  Workload
isolation is High (AP never touches the row nodes' CPU); freshness is
Low (only *sealed, shipped* delta files are visible); both TP and AP
scale out with node counts.
"""

from __future__ import annotations

import numpy as np

from ..common.clock import LogicalClock, Timestamp
from ..common.cost import CostModel
from ..common.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    TransactionError,
)
from ..common.predicate import ALWAYS_TRUE, Predicate, key_equality
from ..common.types import Key, Row, Schema
from ..distributed.cluster import DistributedCluster, WriteKind, WriteOp
from ..query.access import AccessPath
from ..query.statistics import TableStats
from ..query.stats_cache import StatsCache
from .base import EngineInfo, EngineSession, HTAPEngine


class DistributedReplicaEngine(HTAPEngine):
    """2PC+Raft row regions with learner-fed columnar replicas."""

    info = EngineInfo(
        name="distributed+replica",
        category="b",
        description="Distributed Row Store + Column Store Replica (TiDB style)",
    )

    def __init__(
        self,
        cost: CostModel | None = None,
        clock: LogicalClock | None = None,
        n_storage_nodes: int = 3,
        replication: int = 3,
        n_analytic_nodes: int = 1,
        n_regions: int | None = None,
        seed: int = 0,
        vectorized: bool = True,
        commit_protocol: str = "fast",
    ):
        super().__init__(cost, clock)
        self.cluster = DistributedCluster(
            n_storage_nodes=n_storage_nodes,
            replication=replication,
            n_regions=n_regions,
            n_analytic_nodes=n_analytic_nodes,
            cost=self.cost,
            clock=self.clock,
            seed=seed,
            vectorized=vectorized,
            commit_protocol=commit_protocol,
        )
        # One ledger shared with the cluster so all busy time lands in
        # one place.
        self.ledger = self.cluster.ledger

    @property
    def router(self):
        """The cluster's co-located shard-map router (the front door and
        benches can also mint their own via :meth:`make_router`)."""
        return self.cluster.router

    def make_router(self, name: str):
        """A fresh stateless router with an independent shard-map cache."""
        return self.cluster.make_router(name)

    # ------------------------------------------------------------- schema

    def create_table(self, schema: Schema) -> None:
        self.cluster.create_table(schema)
        self._register_adapter(
            schema.table_name, _ReplicaTableAccess(self, schema.table_name)
        )

    def declare_placement(self, table: str, group: str, prefix_len: int) -> None:
        """Co-locate ``table`` rows by a placement-key prefix (DDL time,
        before any row exists)."""
        self.cluster.declare_placement(table, group, prefix_len)

    def install_boundaries(self, points) -> None:
        """Re-cut the boot shard map at load quantiles of an
        expected-load placement-point sample (DDL time only)."""
        self.cluster.install_boundaries(points)

    # ------------------------------------------------------------- OLTP

    def session(self) -> EngineSession:
        return _ClusterSession(self)

    def bulk_load(self, table: str, rows: list[Row]) -> None:
        """Fast load through the cluster's bulk Raft command: one
        proposal per owning region instead of one 2PC round per row
        batch.  Rows must be fresh keys."""
        if not rows:
            return
        self.cluster.bulk_load(table, rows)
        self.scan_cache.invalidate(table)
        self._m_tp_commits.inc()

    # ------------------------------------------------------------- DS / metrics

    def _sync(self) -> int:
        return self.cluster.sync()

    def force_sync(self) -> int:
        moved = self.cluster.sync()
        self.scan_cache.invalidate()
        return moved

    def freshness_lag(self) -> int:
        return self.cluster.freshness_lag_ts()

    def tp_nodes(self) -> list[str]:
        return [f"n{i}" for i in range(self.cluster.n_storage_nodes)]

    def ap_nodes(self) -> list[str]:
        return [f"ap{i}" for i in range(self.cluster.n_analytic_nodes)]

    def memory_report(self) -> dict[str, int]:
        row_bytes = 0
        for sms in self.cluster._region_sms:
            for sm in sms.values():
                for table_rows in sm.rows.values():
                    width = 8
                    row_bytes += len(table_rows) * width * 16
        columnar = self.cluster.columnar
        return {
            "row_replicas": row_bytes,
            "column_replica": sum(
                cs.memory_bytes() for cs in columnar.column_stores.values()
            ),
            "delta_logs": sum(
                log.disk_bytes() for log in columnar.delta_logs.values()
            ),
        }


class _ClusterSession(EngineSession):
    """Buffered writes committed through 2PC+Raft."""

    def __init__(self, engine: DistributedReplicaEngine):
        self._engine = engine
        self._writes: list[WriteOp] = []
        self._view: dict[tuple[str, Key], Row | None] = {}
        self._done = False

    def _require_open(self) -> None:
        if self._done:
            raise TransactionError("transaction already finished")

    def read(self, table: str, key: Key) -> Row | None:
        self._require_open()
        if (table, key) in self._view:
            return self._view[(table, key)]
        return self._engine.cluster.read(table, key)

    def scan(self, table: str, predicate: Predicate = ALWAYS_TRUE) -> list[Row]:
        self._require_open()
        schema = self._engine.cluster.schemas[table]
        rows = {
            schema.key_of(r): r
            for r in self._engine.cluster.row_scan(table, predicate)
        }
        for (t, key), row in self._view.items():
            if t != table:
                continue
            if row is None:
                rows.pop(key, None)
            elif predicate.matches(row, schema):
                rows[key] = row
            else:
                rows.pop(key, None)
        return list(rows.values())

    def insert(self, table: str, row: Row) -> Key:
        self._require_open()
        schema = self._engine.cluster.schemas[table]
        row = schema.validate_row(row)
        key = schema.key_of(row)
        if self.read(table, key) is not None:
            raise DuplicateKeyError(f"key {key!r} already exists in {table!r}")
        self._writes.append(WriteOp(WriteKind.INSERT, table, key, row))
        self._view[(table, key)] = row
        return key

    def update(self, table: str, row: Row) -> None:
        self._require_open()
        schema = self._engine.cluster.schemas[table]
        row = schema.validate_row(row)
        key = schema.key_of(row)
        if self.read(table, key) is None:
            raise KeyNotFoundError(f"key {key!r} not found in {table!r}")
        self._writes.append(WriteOp(WriteKind.UPDATE, table, key, row))
        self._view[(table, key)] = row

    def delete(self, table: str, key: Key) -> None:
        self._require_open()
        if self.read(table, key) is None:
            raise KeyNotFoundError(f"key {key!r} not found in {table!r}")
        self._writes.append(WriteOp(WriteKind.DELETE, table, key, None))
        self._view[(table, key)] = None

    def commit(self) -> Timestamp:
        self._require_open()
        self._done = True
        self.finished = True
        if not self._writes:
            return self._engine.clock.now()
        commit_ts = self._engine.cluster.execute_transaction(self._writes)
        for table in {w.table for w in self._writes}:
            self._engine.scan_cache.invalidate(table)
        self._engine._m_tp_commits.inc()
        return commit_ts

    def abort(self) -> None:
        self._require_open()
        self._done = True
        self.finished = True
        self._engine._m_tp_aborts.inc()
        self._writes.clear()


class _ReplicaTableAccess:
    """TableAccess over the learner-fed columnar replica + row regions."""

    def __init__(self, engine: DistributedReplicaEngine, table: str):
        self._engine = engine
        self._table = table
        self._stats = StatsCache(self._compute_stats)

    def schema(self) -> Schema:
        return self._engine.cluster.schemas[self._table]

    def _compute_stats(self) -> TableStats:
        # Statistics come from the columnar replica (cheap, slightly
        # stale — like real learner-side statistics).
        cluster = self._engine.cluster
        cluster.drain_replication()
        result = cluster.analytic_scan(self._table, None, ALWAYS_TRUE)
        return TableStats.from_arrays(result.arrays)

    def stats(self) -> TableStats:
        return self._stats.get(self._engine.cluster.commits)

    def stats_epoch(self) -> int:
        """Plan-cache fence: version of the currently served statistics
        (optional protocol, see access.py)."""
        self.stats()
        return self._stats.epoch

    def available_paths(self) -> set[AccessPath]:
        return {AccessPath.ROW_SCAN, AccessPath.INDEX_LOOKUP, AccessPath.COLUMN_SCAN}

    def cache_token(self, path=None):
        """Scan-cache version token: cluster commit count (fences writes
        even before learner apply), the replica's applied timestamp, the
        columnar write version, the delta-log backlog, and the freshness
        mode."""
        cluster = self._engine.cluster
        columnar = cluster.columnar
        store = columnar.column_stores.get(self._table)
        log = columnar.delta_logs.get(self._table)
        return (
            "latest",
            cluster.commits,
            columnar.applied_ts,
            store.mutations if store is not None else -1,
            log.pending_entries() if log is not None else -1,
            self._engine.read_fresh,
        )

    def scan_rows(self, predicate: Predicate) -> list[Row]:
        return self._engine.cluster.row_scan(self._table, predicate)

    def scan_columns(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        result = self._engine.cluster.analytic_scan(
            self._table,
            columns,
            predicate,
            read_delta=self._engine.read_fresh,
        )
        return result.arrays

    def scan_columns_encoded(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        result = self._engine.cluster.analytic_scan(
            self._table,
            columns,
            predicate,
            read_delta=self._engine.read_fresh,
            encode=True,
        )
        return result.arrays

    def scan_pruning_hint(self, predicate: Predicate) -> float:
        """Prunable fraction of the learner-side columnar replica."""
        store = self._engine.cluster.columnar.column_stores.get(self._table)
        if store is None:
            return 0.0
        return store.pruned_row_fraction(predicate)

    def code_space_hint(self, columns: list[str]) -> float:
        """Fraction of ``columns`` the replica store serves as codes."""
        store = self._engine.cluster.columnar.column_stores.get(self._table)
        if store is None:
            return 0.0
        return store.encoded_column_fraction(columns)

    def index_lookup_rows(self, predicate: Predicate) -> list[Row] | None:
        schema = self.schema()
        key = key_equality(predicate, schema.primary_key)
        if key is None:
            return None
        row = self._engine.cluster.read(self._table, key)
        if row is not None and predicate.matches(row, schema):
            return [row]
        return []
