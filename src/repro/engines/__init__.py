"""The four HTAP architectures of Figure 1, behind one engine API."""

from .base import EngineInfo, EngineSession, HTAPEngine
from .column_delta import ColumnDeltaEngine, HanaTable
from .disk_row_imcs import DiskRowIMCSEngine
from .distributed_replica import DistributedReplicaEngine
from .row_imcs import RowIMCSEngine

ENGINE_CLASSES = {
    "a": RowIMCSEngine,
    "b": DistributedReplicaEngine,
    "c": DiskRowIMCSEngine,
    "d": ColumnDeltaEngine,
}


def make_engine(category: str, **kwargs) -> HTAPEngine:
    """Build the engine for a Figure 1 category ('a'..'d')."""
    try:
        cls = ENGINE_CLASSES[category]
    except KeyError:
        raise ValueError(f"unknown architecture category {category!r}") from None
    return cls(**kwargs)


__all__ = [
    "ColumnDeltaEngine",
    "DiskRowIMCSEngine",
    "DistributedReplicaEngine",
    "ENGINE_CLASSES",
    "EngineInfo",
    "EngineSession",
    "HTAPEngine",
    "HanaTable",
    "RowIMCSEngine",
    "make_engine",
]
