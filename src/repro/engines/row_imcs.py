"""Architecture (a): Primary Row Store + In-Memory Column Store.

The Oracle Dual-Format / SQL Server CSI / DB2 BLU family.  All data
lives in a memory-optimized MVCC row store (the primary); selected
tables are *populated* into in-memory column units (IMCUs).  Committed
changes are recorded in each IMCU's snapshot metadata unit (SMU);
analytical scans read the columnar image and patch the stale keys from
the row store at query time ("in-memory delta and column scan"), so
freshness is High.  When staleness crosses a threshold, sync
repopulates the unit from the primary ("rebuild from primary row
store").  Everything runs on one node, which is why Table 1 scores the
category Low on isolation and AP scalability.
"""

from __future__ import annotations

import numpy as np

from ..common.cost import CostModel
from ..common.clock import LogicalClock, Timestamp
from ..common.predicate import ALWAYS_TRUE, Comparison, Predicate, key_equality
from ..common.types import Key, Row, Schema
from ..query.access import AccessPath
from ..query.optimizer import split_conjuncts
from ..query.statistics import TableStats
from ..query.stats_cache import StatsCache
from ..storage.imcu import InMemoryColumnUnit
from ..txn.transaction import Transaction, TransactionManager
from .base import EngineInfo, EngineSession, HTAPEngine

_NODE = "node0"


def _is_image_scan_entry(key) -> bool:
    """Scan-cache keys whose token pins only the stale columnar image
    (see ``_ImcuTableAccess.cache_token``): primary-side commits cannot
    change what those scans return, so write-path invalidation keeps
    them — they die by token when the IMCU repopulates."""
    token = key[4]
    return isinstance(token, tuple) and bool(token) and token[0] == "imcs"


class RowIMCSEngine(HTAPEngine):
    """Primary row store + IMCU-per-table, single node."""

    info = EngineInfo(
        name="row+imcs",
        category="a",
        description="Primary Row Store + In-Memory Column Store "
        "(Oracle Dual-Format / SQL Server CSI style)",
    )

    def __init__(
        self,
        cost: CostModel | None = None,
        clock: LogicalClock | None = None,
        repopulate_staleness: float = 0.05,
        group_commit_size: int = 8,
    ):
        super().__init__(cost, clock)
        from ..txn.wal import WriteAheadLog

        labels = {"engine": self.info.name}
        self.txn_manager = TransactionManager(
            clock=self.clock,
            cost=self.cost,
            wal=WriteAheadLog(
                cost=self.cost, group_commit_size=group_commit_size, labels=labels
            ),
            labels=labels,
        )
        self.repopulate_staleness = repopulate_staleness
        self._imcus: dict[str, InMemoryColumnUnit] = {}
        #: When set, row-path reads serve this historical snapshot
        #: instead of "now" (see :meth:`time_travel_query`).
        self._read_ts_override: Timestamp | None = None
        self.txn_manager.add_commit_listener(self._on_commit)

    # ------------------------------------------------------------- schema

    def create_table(self, schema: Schema) -> None:
        store = self.txn_manager.create_table(schema)
        imcu = InMemoryColumnUnit(schema, store, self.cost)
        imcu.populate(self.clock.now())
        self._imcus[schema.table_name] = imcu
        self._register_adapter(
            schema.table_name, _ImcuTableAccess(self, schema.table_name)
        )

    def _on_commit(self, table: str, entries, _commit_ts: Timestamp) -> None:
        imcu = self._imcus[table]
        for entry in entries:
            imcu.on_change(entry.key)
        self.scan_cache.invalidate(table, keep=_is_image_scan_entry)

    # ------------------------------------------------------------- OLTP

    def session(self) -> EngineSession:
        return _RowImcsSession(self)

    def bulk_load(self, table: str, rows: list[Row]) -> None:
        """Fast load into the primary: one WAL batch append, direct
        version-chain installs, and one cache invalidation for the
        whole set.  Rows must be fresh keys (install_insert still
        raises on a live duplicate)."""
        if not rows:
            return
        from ..txn.wal import WalKind

        tm = self.txn_manager
        store = tm.store(table)
        rows = [store.schema.validate_row(r) for r in rows]
        before = self.cost.now_us()
        txn_id = tm._next_txn_id
        tm._next_txn_id += 1
        commit_ts = self.clock.tick()
        key_of = store.schema.key_of
        tm.wal.append_batch(
            txn_id,
            [(WalKind.INSERT, table, key_of(row), row) for row in rows],
            commit_ts,
        )
        imcu = self._imcus[table]
        for row in rows:
            store.install_insert(row, commit_ts)
            imcu.on_change(key_of(row))
        tm.commits += 1
        self._m_tp_commits.inc()
        self.scan_cache.invalidate(table, keep=_is_image_scan_entry)
        self.ledger.charge(_NODE, self.cost.now_us() - before)

    # ------------------------------------------------------------- DS / metrics

    def _sync(self) -> int:
        """Rebuild every IMCU whose staleness crossed the threshold."""
        rebuilt = 0
        snapshot = self.clock.now()
        before = self.cost.now_us()
        for imcu in self._imcus.values():
            if imcu.staleness() >= self.repopulate_staleness:
                rebuilt += imcu.populate(snapshot)
        self.ledger.charge(_NODE, self.cost.now_us() - before)
        return rebuilt

    def force_sync(self) -> int:
        snapshot = self.clock.now()
        moved = sum(imcu.populate(snapshot) for imcu in self._imcus.values())
        self.scan_cache.invalidate()
        return moved

    def freshness_lag(self) -> int:
        if self.read_fresh:
            return 0  # queries patch from the primary at scan time
        newest = self.clock.now()
        lags = [
            newest - imcu.smu.populate_ts
            for imcu in self._imcus.values()
            # An image with no pending changes is fresh no matter how
            # long ago it was populated.
            if imcu.smu.stale_keys or imcu.smu.new_keys
        ]
        return max(lags, default=0)

    def memory_report(self) -> dict[str, int]:
        return {
            "row_store": sum(
                self.txn_manager.store(t).memory_bytes()
                for t in self.txn_manager.tables()
            ),
            "column_units": sum(u.memory_bytes() for u in self._imcus.values()),
            "wal": len(self.txn_manager.wal) * 64,
        }

    def imcu(self, table: str) -> InMemoryColumnUnit:
        return self._imcus[table]

    def read_snapshot_ts(self) -> Timestamp:
        if self._read_ts_override is not None:
            return self._read_ts_override
        return self.clock.now()

    def time_travel_query(self, query, as_of: Timestamp):
        """Run an analytical query AS OF an earlier commit timestamp.

        MVCC version chains make historical snapshots first-class on
        this architecture (Oracle flashback style).  The plan is pinned
        to the row path: the primary store holds every version (until
        vacuumed), while the columnar image only holds the present.
        """
        from ..query.access import AccessPath

        self._read_ts_override = as_of
        try:
            return self.query(query, force_path=AccessPath.ROW_SCAN)
        finally:
            self._read_ts_override = None


class _RowImcsSession(EngineSession):
    """Thin ledger-charging wrapper over an MVCC transaction."""

    def __init__(self, engine: RowIMCSEngine):
        self._engine = engine
        self._txn: Transaction = engine.txn_manager.begin()

    def _charged(self, fn, *args):
        before = self._engine.cost.now_us()
        try:
            return fn(*args)
        finally:
            self._engine.ledger.charge(
                _NODE, self._engine.cost.now_us() - before
            )

    def read(self, table: str, key: Key) -> Row | None:
        return self._charged(self._txn.read, table, key)

    def scan(self, table: str, predicate: Predicate = ALWAYS_TRUE) -> list[Row]:
        return self._charged(self._txn.scan, table, predicate)

    def insert(self, table: str, row: Row) -> Key:
        return self._charged(self._txn.insert, table, row)

    def update(self, table: str, row: Row) -> None:
        self._charged(self._txn.update, table, row)

    def delete(self, table: str, key: Key) -> None:
        self._charged(self._txn.delete, table, key)

    def commit(self) -> Timestamp:
        self.finished = True
        commit_ts = self._charged(self._txn.commit)
        self._engine._m_tp_commits.inc()
        return commit_ts

    def abort(self) -> None:
        self.finished = True
        self._charged(self._txn.abort)
        self._engine._m_tp_aborts.inc()


class _ImcuTableAccess:
    """TableAccess over (row store, IMCU) with query-time patching."""

    def __init__(self, engine: RowIMCSEngine, table: str):
        self._engine = engine
        self._table = table
        self._stats = StatsCache(self._compute_stats)

    def _store(self):
        return self._engine.txn_manager.store(self._table)

    def schema(self) -> Schema:
        return self._store().schema

    def _compute_stats(self) -> TableStats:
        rows = self._store().snapshot_rows(self._engine.clock.now())
        return TableStats.from_rows(self.schema(), rows)

    def stats(self) -> TableStats:
        return self._stats.get(self._store().installs)

    def stats_epoch(self) -> int:
        """Plan-cache fence: version of the currently served statistics
        (optional protocol, see access.py)."""
        self.stats()
        return self._stats.epoch

    def available_paths(self) -> set[AccessPath]:
        return {AccessPath.ROW_SCAN, AccessPath.INDEX_LOOKUP, AccessPath.COLUMN_SCAN}

    def cache_token(self, path: AccessPath | None = None):
        """Scan-cache version token: the reader snapshot (including any
        time-travel override — historical MVCC reads are immutable and
        cacheable per snapshot), the primary's write/vacuum versions,
        the IMCU population generation, and the patch mode.

        An isolated-mode COLUMN_SCAN reads *only* the stale columnar
        image (``scan_columns`` passes ``patch=False``), so its token is
        just the image generation — primary-side writes between syncs
        keep those cached scans servable instead of invalidating them.
        """
        imcu = self._engine.imcu(self._table)
        if path is AccessPath.COLUMN_SCAN and not self._engine.read_fresh:
            return ("imcs", imcu.populations, imcu.smu.populate_ts)
        store = self._store()
        return (
            self._engine.read_snapshot_ts(),
            store.installs,
            store.version_count(),
            imcu.smu.populate_ts,
            self._engine.read_fresh,
        )

    def scan_rows(self, predicate: Predicate) -> list[Row]:
        return self._store().scan(self._engine.read_snapshot_ts(), predicate)

    def scan_columns(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        imcu = self._engine.imcu(self._table)
        if self._engine.read_fresh:
            result = imcu.scan(self._engine.clock.now(), columns, predicate)
            return result.arrays
        # Isolated mode: serve the stale columnar image only (no patch
        # reads against the primary) — faster, less fresh.
        result = imcu.scan(imcu.smu.populate_ts, columns, predicate, patch=False)
        return result.arrays

    def scan_columns_encoded(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        """Compressed scan: dictionary columns stay encoded (CodeColumn);
        patch rows are folded into the code space at the merge."""
        imcu = self._engine.imcu(self._table)
        if self._engine.read_fresh:
            result = imcu.scan(
                self._engine.clock.now(), columns, predicate, encode=True
            )
            return result.arrays
        result = imcu.scan(
            imcu.smu.populate_ts, columns, predicate, patch=False, encode=True
        )
        return result.arrays

    def scan_pruning_hint(self, predicate: Predicate) -> float:
        """Prunable fraction of the populated IMCU (all-or-nothing: the
        unit is one pruning granule; patch reads are never pruned)."""
        return self._engine.imcu(self._table).pruned_row_fraction(predicate)

    def code_space_hint(self, columns: list[str]) -> float:
        """Fraction of ``columns`` the IMCU serves as dictionary codes."""
        return self._engine.imcu(self._table).encoded_column_fraction(columns)

    def index_lookup_rows(self, predicate: Predicate) -> list[Row] | None:
        schema = self.schema()
        snapshot = self._engine.read_snapshot_ts()
        key = key_equality(predicate, schema.primary_key)
        if key is not None:
            row = self._store().read(key, snapshot)
            if row is not None and predicate.matches(row, schema):
                return [row]
            return []
        store = self._store()
        for conjunct in split_conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op == "="
                and store.has_index(conjunct.column)
            ):
                keys = store.index_lookup_range(
                    conjunct.column, conjunct.value, conjunct.value
                )
                rows = []
                for k in keys:
                    row = store.read(k, snapshot)
                    if row is not None and predicate.matches(row, schema):
                        rows.append(row)
                return rows
        return None
