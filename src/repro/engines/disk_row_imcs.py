"""Architecture (c): Disk Row Store + Distributed In-Memory Column Store.

The MySQL Heatwave shape: a disk-based RDBMS (slotted pages behind a
buffer pool) keeps "full capacity for OLTP workloads"; a distributed
in-memory column-store (IMCS) cluster is bolted on for analytics.
Columns are *loaded* into the IMCS (all by default, or picked by the
column-selection policy under a memory budget); committed changes
buffer in a per-table delta and propagate to the IMCS when the
threshold fires ("threshold-based change propagation") — hence
Table 1's Medium freshness.  Queries whose columns are loaded push down
to the IMCS nodes; anything else falls back to the disk row store on
the primary node (the documented downside of column selection).
"""

from __future__ import annotations

import numpy as np

from ..common.clock import LogicalClock, Timestamp
from ..common.cost import CostModel
from ..common.errors import DuplicateKeyError, KeyNotFoundError, TransactionError
from ..common.predicate import ALWAYS_TRUE, Predicate, key_equality
from ..common.types import Key, Row, Schema, rows_to_columns
from ..obs import get_registry
from ..query.access import AccessPath
from ..query.column_selection import (
    AccessTracker,
    HeatmapColumnSelector,
    LearnedColumnSelector,
)
from ..query.statistics import TableStats
from ..query.stats_cache import StatsCache
from ..storage.code_batch import overlay_arrays
from ..storage.column_store import ColumnStore
from ..storage.delta_store import InMemoryDeltaStore, collapse_entries
from ..storage.disk_row_store import DiskRowStore
from ..txn.wal import WalKind, WriteAheadLog
from .base import EngineInfo, EngineSession, HTAPEngine

_PRIMARY = "mysql"


class DiskRowIMCSEngine(HTAPEngine):
    """Disk RDBMS primary + IMCS cluster with change propagation."""

    info = EngineInfo(
        name="disk-row+imcs-cluster",
        category="c",
        description="Disk Row Store + Distributed In-Memory Column Store "
        "(MySQL Heatwave style)",
    )

    def __init__(
        self,
        cost: CostModel | None = None,
        clock: LogicalClock | None = None,
        n_imcs_nodes: int = 2,
        buffer_capacity: int = 256,
        propagation_threshold: int = 512,
        column_budget_bytes: int | None = None,
        column_selector: str = "heatmap",
        group_commit_size: int = 8,
        vectorized: bool = True,
    ):
        super().__init__(cost, clock)
        self.vectorized = vectorized
        self.wal = WriteAheadLog(
            cost=self.cost,
            group_commit_size=group_commit_size,
            labels={"engine": self.info.name},
        )
        self.n_imcs_nodes = max(1, n_imcs_nodes)
        self.buffer_capacity = buffer_capacity
        self.propagation_threshold = propagation_threshold
        #: None = load every column; otherwise the selector packs this
        #: budget with the hottest columns.
        self.column_budget_bytes = column_budget_bytes
        self.tracker = AccessTracker()
        if column_selector == "heatmap":
            self._selector = HeatmapColumnSelector(self.tracker)
        elif column_selector == "learned":
            # §2.4's lightweight learned method: trend-aware scoring.
            self._selector = LearnedColumnSelector(self.tracker)
        else:
            raise ValueError(f"unknown column selector {column_selector!r}")
        self._stores: dict[str, DiskRowStore] = {}
        self._imcs: dict[str, ColumnStore] = {}
        self._deltas: dict[str, InMemoryDeltaStore] = {}
        self._loaded: dict[str, set[str]] = {}
        self.commits = 0
        self.aborts = 0
        self.pushdowns = 0
        self.fallbacks = 0
        self._next_txn_id = 1
        self._m_propagations = get_registry().counter(
            "sync.propagation.events", engine=self.info.name
        )

    # ------------------------------------------------------------- schema

    def create_table(self, schema: Schema) -> None:
        name = schema.table_name
        if name in self._stores:
            raise TransactionError(f"table {name!r} already exists")
        store = DiskRowStore(schema, self.cost, buffer_capacity=self.buffer_capacity)
        self._stores[name] = store
        self._imcs[name] = ColumnStore(schema, self.cost)
        self._deltas[name] = InMemoryDeltaStore(schema, self.cost)
        self._loaded[name] = (
            set(schema.column_names) if self.column_budget_bytes is None else set()
        )
        store.add_change_listener(self._make_listener(name))
        self._register_adapter(name, _HeatwaveTableAccess(self, name))

    def _make_listener(self, table: str):
        def listener(kind: str, key: Key, row: Row | None, ts: Timestamp) -> None:
            delta = self._deltas[table]
            if kind == "insert":
                delta.record_insert(row, ts)
            elif kind == "update":
                delta.record_update(row, ts)
            else:
                delta.record_delete(key, ts)

        return listener

    def store(self, table: str) -> DiskRowStore:
        try:
            return self._stores[table]
        except KeyError:
            raise KeyNotFoundError(f"no table {table!r}") from None

    @classmethod
    def recover(
        cls,
        wal: WriteAheadLog,
        schemas: list[Schema],
        include_unforced: bool = False,
        **kwargs,
    ) -> "DiskRowIMCSEngine":
        """Rebuild from a crashed instance's redo log (durable commits
        only, LSN order), then re-extract the IMCS from the row store.
        ``include_unforced=True`` also replays the unforced group-commit
        tail (clean-shutdown semantics)."""
        engine = cls(**kwargs)
        for schema in schemas:
            engine.create_table(schema)
        committed = (
            wal.committed_txn_ids() if include_unforced else wal.durable_txn_ids()
        )
        for record in wal.records:
            if record.txn_id not in committed or record.table is None:
                continue  # BEGIN/COMMIT/ABORT markers carry no data
            engine.clock.advance_to(record.commit_ts)
            store = engine.store(record.table)
            if record.kind is WalKind.INSERT:
                store.insert(record.row, record.commit_ts)
            elif record.kind is WalKind.UPDATE:
                store.update(record.key, record.row, record.commit_ts)
            elif record.kind is WalKind.DELETE:
                store.delete(record.key, record.commit_ts)
        engine.force_sync()
        return engine

    def imcs_store(self, table: str) -> ColumnStore:
        return self._imcs[table]

    def loaded_columns(self, table: str) -> set[str]:
        return self._loaded[table]

    # ------------------------------------------------------------- OLTP

    def session(self) -> EngineSession:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return _HeatwaveSession(self, txn_id)

    def bulk_load(self, table: str, rows: list[Row]) -> None:
        """Fast load into the disk row store: one WAL batch and one
        cache invalidation, skipping the per-row session dup checks
        (rows must be fresh keys)."""
        if not rows:
            return
        store = self.store(table)
        rows = [store.schema.validate_row(r) for r in rows]
        before = self.cost.now_us()
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        commit_ts = self.clock.tick()
        key_of = store.schema.key_of
        self.wal.append_batch(
            txn_id,
            [(WalKind.INSERT, table, key_of(row), row) for row in rows],
            commit_ts,
        )
        for row in rows:
            store.insert(row, commit_ts)
        self.scan_cache.invalidate(table)
        self.commits += 1
        self._m_tp_commits.inc()
        self.ledger.charge(_PRIMARY, self.cost.now_us() - before)

    # ------------------------------------------------------------- DS

    def pending_changes(self, table: str | None = None) -> int:
        if table is not None:
            return len(self._deltas[table])
        return sum(len(d) for d in self._deltas.values())

    def _sync(self) -> int:
        """Threshold-based change propagation into the IMCS."""
        moved = 0
        before = self.cost.now_us()
        for table, delta in self._deltas.items():
            if len(delta) >= self.propagation_threshold:
                moved += self._propagate(table)
        self.ledger.charge(_PRIMARY, self.cost.now_us() - before)
        return moved

    def force_sync(self) -> int:
        moved = sum(self._propagate(table) for table in self._deltas)
        self.scan_cache.invalidate()
        return moved

    def _propagate(self, table: str) -> int:
        delta = self._deltas[table]
        imcs = self._imcs[table]
        if self.vectorized:
            batch = delta.clear_batch()
            if not len(batch):
                return 0
            self.scan_cache.invalidate(table)
            self._m_propagations.inc()
            collapsed = batch.collapse()
            imcs.delete_batch(collapsed.touched_keys())
            max_ts = batch.max_commit_ts()
            if collapsed.live_keys:
                self.cost.charge_rows(
                    self.cost.merge_per_row_us, len(collapsed.live_keys)
                )
                arrays = rows_to_columns(delta.schema, collapsed.live_rows)
                imcs.append_batch(arrays, collapsed.live_keys, commit_ts=max_ts)
            imcs.advance_sync_ts(max_ts)
            return len(collapsed.live_keys)
        entries = delta.clear()
        if not entries:
            return 0
        self.scan_cache.invalidate(table)
        self._m_propagations.inc()
        live, tombstones = collapse_entries(entries)
        imcs.delete_keys(set(live) | tombstones)
        max_ts = max(e.commit_ts for e in entries)
        if live:
            self.cost.charge_rows(self.cost.merge_per_row_us, len(live))
            imcs.append_rows(list(live.values()), commit_ts=max_ts)
        imcs.advance_sync_ts(max_ts)
        return len(live)

    def freshness_lag(self) -> int:
        newest = self.clock.now()
        lags = []
        for table, imcs in self._imcs.items():
            visible = imcs.max_commit_ts()
            lags.append(max(0, newest - visible) if len(self._deltas[table]) else 0)
        return max(lags, default=0)

    # ------------------------------------------------------------- column selection

    def reselect_columns(self) -> dict[str, set[str]]:
        """Re-run the heatmap selector against the budget; load/evict."""
        if self.column_budget_bytes is None:
            return dict(self._loaded)
        self.tracker.close_window()
        sizes: dict[tuple[str, str], int] = {}
        for table, store in self._stores.items():
            n = max(len(store), 1)
            for col in store.schema.column_names:
                sizes[(table, col)] = n * 8
        decision = self._selector.select(sizes, self.column_budget_bytes)
        new_loaded: dict[str, set[str]] = {t: set() for t in self._stores}
        for table, col in decision.chosen:
            new_loaded[table].add(col)
        for table in self._stores:
            if new_loaded[table] != self._loaded[table]:
                self._loaded[table] = new_loaded[table]
                self._reload_table(table)
        return dict(self._loaded)

    def _reload_table(self, table: str) -> None:
        """(Re)extract loaded columns from the row store into the IMCS."""
        self.scan_cache.invalidate(table)
        store = self._stores[table]
        rows = [row for _key, row in store.iter_rows()]
        self._imcs[table] = ColumnStore(store.schema, self.cost)
        self._deltas[table] = InMemoryDeltaStore(store.schema, self.cost)
        store._listeners.clear()
        store.add_change_listener(self._make_listener(table))
        if rows:
            self.cost.charge_rows(self.cost.rebuild_per_row_us, len(rows))
            self._imcs[table].append_rows(rows, commit_ts=self.clock.now())

    # ------------------------------------------------------------- metrics

    def tp_nodes(self) -> list[str]:
        return [_PRIMARY]

    def ap_nodes(self) -> list[str]:
        return [f"imcs{i}" for i in range(self.n_imcs_nodes)]

    def memory_report(self) -> dict[str, int]:
        return {
            "disk_pages": sum(s.disk_bytes() for s in self._stores.values()),
            # Only loaded columns are resident in the IMCS cluster.
            "imcs": sum(
                c.memory_bytes(sorted(self._loaded[t]))
                for t, c in self._imcs.items()
            ),
            "propagation_delta": sum(d.memory_bytes() for d in self._deltas.values()),
            "wal": len(self.wal) * 64,
        }


class _HeatwaveSession(EngineSession):
    """Buffered-write transaction validated against the disk store."""

    def __init__(self, engine: DiskRowIMCSEngine, txn_id: int):
        self._engine = engine
        self._txn_id = txn_id
        self._writes: list[tuple[str, str, Key, Row | None]] = []
        self._view: dict[tuple[str, Key], Row | None] = {}
        self._done = False

    def _charged(self, fn, *args):
        before = self._engine.cost.now_us()
        try:
            return fn(*args)
        finally:
            self._engine.ledger.charge(
                _PRIMARY, self._engine.cost.now_us() - before
            )

    def _require_open(self) -> None:
        if self._done:
            raise TransactionError(f"transaction {self._txn_id} already finished")

    def read(self, table: str, key: Key) -> Row | None:
        self._require_open()
        if (table, key) in self._view:
            return self._view[(table, key)]
        return self._charged(self._engine.store(table).read, key)

    def scan(self, table: str, predicate: Predicate = ALWAYS_TRUE) -> list[Row]:
        self._require_open()
        store = self._engine.store(table)
        rows = {
            store.schema.key_of(r): r for r in self._charged(store.scan, predicate)
        }
        for (t, key), row in self._view.items():
            if t != table:
                continue
            if row is None:
                rows.pop(key, None)
            elif predicate.matches(row, store.schema):
                rows[key] = row
            else:
                rows.pop(key, None)
        return list(rows.values())

    def insert(self, table: str, row: Row) -> Key:
        self._require_open()
        schema = self._engine.store(table).schema
        row = schema.validate_row(row)
        key = schema.key_of(row)
        if self.read(table, key) is not None:
            raise DuplicateKeyError(f"key {key!r} already exists in {table!r}")
        self._writes.append(("insert", table, key, row))
        self._view[(table, key)] = row
        return key

    def update(self, table: str, row: Row) -> None:
        self._require_open()
        schema = self._engine.store(table).schema
        row = schema.validate_row(row)
        key = schema.key_of(row)
        if self.read(table, key) is None:
            raise KeyNotFoundError(f"key {key!r} not found in {table!r}")
        self._writes.append(("update", table, key, row))
        self._view[(table, key)] = row

    def delete(self, table: str, key: Key) -> None:
        self._require_open()
        if self.read(table, key) is None:
            raise KeyNotFoundError(f"key {key!r} not found in {table!r}")
        self._writes.append(("delete", table, key, None))
        self._view[(table, key)] = None

    def commit(self) -> Timestamp:
        self._require_open()
        engine = self._engine
        before = engine.cost.now_us()
        commit_ts = engine.clock.tick()
        engine.wal.append(self._txn_id, WalKind.BEGIN)
        for kind, table, key, row in self._writes:
            wal_kind = {
                "insert": WalKind.INSERT,
                "update": WalKind.UPDATE,
                "delete": WalKind.DELETE,
            }[kind]
            engine.wal.append(self._txn_id, wal_kind, table, key, row, commit_ts)
            store = engine.store(table)
            if kind == "insert":
                store.insert(row, commit_ts)
            elif kind == "update":
                store.update(key, row, commit_ts)
            else:
                store.delete(key, commit_ts)
        engine.wal.append(self._txn_id, WalKind.COMMIT, commit_ts=commit_ts)
        for table in {t for _kind, t, _key, _row in self._writes}:
            engine.scan_cache.invalidate(table)
        engine.commits += 1
        engine._m_tp_commits.inc()
        self._done = True
        self.finished = True
        engine.ledger.charge(_PRIMARY, engine.cost.now_us() - before)
        return commit_ts

    def abort(self) -> None:
        self._require_open()
        self._engine.wal.append(self._txn_id, WalKind.ABORT)
        self._engine.aborts += 1
        self._engine._m_tp_aborts.inc()
        self._done = True
        self.finished = True


class _HeatwaveTableAccess:
    """TableAccess with pushdown-or-fallback semantics."""

    def __init__(self, engine: DiskRowIMCSEngine, table: str):
        self._engine = engine
        self._table = table
        self._stats = StatsCache(self._compute_stats)

    def schema(self) -> Schema:
        return self._engine.store(self._table).schema

    def _compute_stats(self) -> TableStats:
        rows = [row for _k, row in self._engine.store(self._table).iter_rows()]
        return TableStats.from_rows(self.schema(), rows)

    def stats(self) -> TableStats:
        return self._stats.get(self._engine.commits)

    def stats_epoch(self) -> int:
        """Plan-cache fence: version of the currently served statistics
        (optional protocol, see access.py)."""
        self.stats()
        return self._stats.epoch

    def _columns_loaded(self, needed: set[str]) -> bool:
        return needed <= self._engine.loaded_columns(self._table)

    def available_paths(self) -> set[AccessPath]:
        return {AccessPath.ROW_SCAN, AccessPath.INDEX_LOOKUP, AccessPath.COLUMN_SCAN}

    def cache_token(self, path=None):
        """Scan-cache version token: primary write version, IMCS write
        version, unpropagated-delta depth, the loaded-column set (a
        reselect flips pushdown↔fallback results routing), and the
        freshness mode."""
        engine = self._engine
        return (
            "latest",
            engine.store(self._table).mutations,
            engine.imcs_store(self._table).mutations,
            len(engine._deltas[self._table]),
            frozenset(engine.loaded_columns(self._table)),
            engine.read_fresh,
        )

    def note_cached_scan(self, columns: list[str], predicate: Predicate) -> None:
        """A cache hit bypasses scan_columns; keep the column-selection
        heat map honest by recording the access anyway."""
        needed = set(columns) | predicate.referenced_columns()
        self._engine.tracker.record_query(self._table, needed)

    def scan_pruning_hint(self, predicate: Predicate) -> float:
        """Prunable fraction of the IMCS columnar image — only when the
        scan would actually push down (all needed columns loaded)."""
        if not self._columns_loaded(predicate.referenced_columns()):
            return 0.0
        return self._engine.imcs_store(self._table).pruned_row_fraction(predicate)

    def scan_rows(self, predicate: Predicate) -> list[Row]:
        before = self._engine.cost.now_us()
        rows = self._engine.store(self._table).scan(predicate)
        self._engine.ledger.charge(_PRIMARY, self._engine.cost.now_us() - before)
        return rows

    def scan_columns(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        needed = set(columns) | predicate.referenced_columns()
        self._engine.tracker.record_query(self._table, needed)
        if not self._columns_loaded(needed):
            # Not pushable: fall back to the disk row store (charged to
            # the primary — exactly the column-selection downside).
            self._engine.fallbacks += 1
            rows = self.scan_rows(predicate)
            arrays = rows_to_columns(self.schema(), rows)
            return {name: arrays[name] for name in columns}
        self._engine.pushdowns += 1
        if self._engine.read_fresh and len(self._engine._deltas[self._table]):
            # Shared mode: merge the unpropagated delta at query time.
            return self._scan_with_delta(columns, predicate)
        result = self._engine.imcs_store(self._table).scan(
            columns, predicate, with_keys=False
        )
        return result.arrays

    def scan_columns_encoded(
        self, columns: list[str], predicate: Predicate
    ) -> dict[str, np.ndarray]:
        """Compressed pushdown: the IMCS serves dictionary columns as
        codes.  The fallback (columns not loaded) stays decoded — the
        disk row store has no code space to hand off."""
        needed = set(columns) | predicate.referenced_columns()
        self._engine.tracker.record_query(self._table, needed)
        if not self._columns_loaded(needed):
            self._engine.fallbacks += 1
            rows = self.scan_rows(predicate)
            arrays = rows_to_columns(self.schema(), rows)
            return {name: arrays[name] for name in columns}
        self._engine.pushdowns += 1
        if self._engine.read_fresh and len(self._engine._deltas[self._table]):
            return self._scan_with_delta(columns, predicate, encode=True)
        result = self._engine.imcs_store(self._table).scan(
            columns, predicate, with_keys=False, encode=True
        )
        return result.arrays

    def code_space_hint(self, columns: list[str]) -> float:
        """Encoded fraction of the IMCS image — only when the scan would
        push down (all needed columns loaded)."""
        if not self._columns_loaded(set(columns)):
            return 0.0
        return self._engine.imcs_store(self._table).encoded_column_fraction(columns)

    def _scan_with_delta(
        self, columns: list[str], predicate: Predicate, encode: bool = False
    ):
        engine = self._engine
        result = engine.imcs_store(self._table).scan(
            columns, predicate, encode=encode
        )
        delta = engine._deltas[self._table]
        live, tombstones = delta.effective_rows(delta.max_commit_ts())
        schema = self.schema()
        drop = tombstones | set(live)
        fresh = [r for r in live.values() if predicate.matches(r, schema)]
        fresh_columns = rows_to_columns(schema, fresh) if fresh else None
        return overlay_arrays(
            result.arrays, result.keys, drop, fresh, fresh_columns
        )

    def index_lookup_rows(self, predicate: Predicate) -> list[Row] | None:
        schema = self.schema()
        key = key_equality(predicate, schema.primary_key)
        if key is None:
            return None
        before = self._engine.cost.now_us()
        row = self._engine.store(self._table).read(key)
        self._engine.ledger.charge(_PRIMARY, self._engine.cost.now_us() - before)
        if row is not None and predicate.matches(row, schema):
            return [row]
        return []
