"""Architecture (d): Primary Column Store + Delta Row Store (SAP HANA).

The survey: "It divides the in-memory data store into three layers:
L1-delta, L2-delta, and Main. The L1-delta keeps data updates in a
row-wise format. When the threshold is reached, the data in L1-delta is
appended to L2-delta. The L2-delta transforms the data into columnar
data, then merges the data into the main column store."

* OLTP writes append to the row-wise L1 delta (cheap); point reads must
  probe L1 → L2 → Main (pricier than architecture (a)'s single hash
  probe — the source of (d)'s weaker OLTP profile).
* OLAP scans Main + L2 + the visible L1 entries ("in-memory delta and
  column scan"): freshness High, AP throughput High (read-optimized
  main store).
* Sync: L1→L2 columnarization, then L2→Main via the dictionary-encoded
  sorting merge.

Key invariant maintained by the merges: any key lives in *at most one*
of {Main, L2} (merges upsert), while L1 entries override both.
"""

from __future__ import annotations

import numpy as np

from ..common.clock import LogicalClock, Timestamp
from ..common.cost import CostModel
from ..common.errors import DuplicateKeyError, KeyNotFoundError, TransactionError
from ..common.predicate import ALWAYS_TRUE, Predicate, key_equality
from ..common.types import Key, Row, Schema, rows_to_columns
from ..query.access import AccessPath
from ..query.statistics import TableStats
from ..query.stats_cache import StatsCache
from ..obs import get_registry
from ..storage.code_batch import CodeColumn, concat_code_parts, overlay_arrays
from ..storage.column_store import ColumnStore
from ..storage.delta_store import InMemoryDeltaStore, collapse_entries
from ..txn.wal import WalKind, WriteAheadLog
from .base import EngineInfo, EngineSession, HTAPEngine

_NODE = "node0"


class HanaTable:
    """One table's L1-delta / L2-delta / Main trio."""

    def __init__(self, schema: Schema, cost: CostModel, vectorized: bool = True):
        self.schema = schema
        self._cost = cost
        self.vectorized = vectorized
        self.l1 = InMemoryDeltaStore(schema, cost)
        self.l2 = ColumnStore(schema, cost)
        self.main = ColumnStore(schema, cost)
        # Current-state view of L1 for cheap point reads:
        # key -> row, or None for an L1 tombstone.
        self._l1_view: dict[Key, Row | None] = {}
        self.l1_to_l2_merges = 0
        self.l2_to_main_merges = 0
        registry = get_registry()
        self._m_l1_merges = registry.counter("sync.delta_merge.l1_to_l2")
        self._m_l2_merges = registry.counter("sync.delta_merge.l2_to_main")

    # ------------------------------------------------------------- OLTP reads

    def read_latest(self, key: Key) -> Row | None:
        """Point read resolving L1 → L2 → Main.

        Priced above a plain row-store probe: every read pays the
        L1 lookup (hash probe + delta-versioning overhead) and misses
        fall through to columnar point reads — the read amplification
        behind (d)'s Medium OLTP throughput in Table 1.
        """
        self._cost.charge(
            self._cost.row_point_read_us + self._cost.delta_scan_per_row_us * 0.5
        )
        if key in self._l1_view:
            return self._l1_view[key]
        row = self.l2.get_row(key)
        if row is not None:
            return row
        return self.main.get_row(key)

    def key_exists(self, key: Key) -> bool:
        return self.read_latest(key) is not None

    # ------------------------------------------------------------- writes

    def apply_insert(self, row: Row, commit_ts: Timestamp) -> None:
        self.l1.record_insert(row, commit_ts)
        self._l1_view[self.schema.key_of(row)] = row

    def apply_update(self, row: Row, commit_ts: Timestamp) -> None:
        self.l1.record_update(row, commit_ts)
        self._l1_view[self.schema.key_of(row)] = row

    def apply_delete(self, key: Key, commit_ts: Timestamp) -> None:
        self.l1.record_delete(key, commit_ts)
        self._l1_view[key] = None

    def apply_insert_batch(self, rows: list[Row], commit_ts: Timestamp) -> None:
        """Bulk insert of fresh rows into L1 (one delta charge)."""
        self.l1.record_insert_batch(rows, commit_ts)
        key_of = self.schema.key_of
        self._l1_view.update((key_of(row), row) for row in rows)

    # ------------------------------------------------------------- merges

    def merge_l1_to_l2(self) -> int:
        """Columnarize the L1 delta into L2 (upserting over Main/L2)."""
        if self.vectorized:
            batch = self.l1.clear_batch()
            self._l1_view.clear()
            if not len(batch):
                return 0
            collapsed = batch.collapse()
            touched = collapsed.touched_keys()
            self.main.delete_batch(touched)
            self.l2.delete_batch(touched)
            max_ts = batch.max_commit_ts()
            if collapsed.live_keys:
                arrays = rows_to_columns(self.schema, collapsed.live_rows)
                self.l2.append_batch(arrays, collapsed.live_keys, commit_ts=max_ts)
            moved = len(collapsed.live_keys)
        else:
            entries = self.l1.clear()
            self._l1_view.clear()
            if not entries:
                return 0
            live, tombstones = collapse_entries(entries)
            touched = set(live) | tombstones
            self.main.delete_keys(touched)
            self.l2.delete_keys(touched)
            max_ts = max(e.commit_ts for e in entries)
            if live:
                self.l2.append_rows(list(live.values()), commit_ts=max_ts)
            moved = len(live)
        self.l2.advance_sync_ts(max_ts)
        self.main.advance_sync_ts(max_ts)
        self.l1_to_l2_merges += 1
        self._m_l1_merges.inc()
        return moved

    def merge_l2_to_main(self) -> int:
        """Fold L2 into Main and re-sort dictionaries (compact)."""
        max_ts = max(self.l2.max_commit_ts(), self.main.max_commit_ts())
        if self.vectorized:  # htaplint: ignore[HTL003] -- scalar arm charges inside l2.all_rows() (store-side materialize, opaque to the module-local call graph); the inline charge_rows below mirrors it
            # Move L2 as whole column arrays; the simulated materialize
            # charge matches the scalar all_rows() path.
            result = self.l2.scan(with_keys=True)
            moved = len(result.keys)
            self._cost.charge_rows(self._cost.column_materialize_per_row_us, moved)
            if moved:
                self.main.delete_batch(result.keys)
                self.main.append_batch(result.arrays, result.keys, commit_ts=max_ts)
        else:
            rows = self.l2.all_rows()
            moved = len(rows)
            if rows:
                keys = [self.schema.key_of(r) for r in rows]
                self.main.delete_keys(keys)
                self.main.append_rows(rows, commit_ts=max_ts)
        # Dictionary-encoded sorting merge: the compaction rebuilds every
        # segment (and thus every sorted dictionary) in one pass.
        self._cost.charge(
            self._cost.dict_rebuild_per_value_us
            * max(len(self.main), 1)
            * len(self.schema.columns)
        )
        self.main.compact(vectorized=self.vectorized)
        self.main.advance_sync_ts(max_ts)
        self.l2 = ColumnStore(self.schema, self._cost)
        self.l2.advance_sync_ts(max_ts)
        self.l2_to_main_merges += 1
        self._m_l2_merges.inc()
        return moved

    # ------------------------------------------------------------- AP scan

    def scan_columns(
        self, columns: list[str], predicate: Predicate, read_fresh: bool
    ) -> dict[str, np.ndarray]:
        """Main + L2 + (optionally) visible L1 entries, newest wins."""
        main_res = self.main.scan(columns, predicate)
        l2_res = self.l2.scan(columns, predicate)
        arrays = {
            name: np.concatenate([main_res.arrays[name], l2_res.arrays[name]])
            for name in main_res.arrays
        }
        keys = main_res.keys + l2_res.keys
        if not read_fresh or not len(self.l1):
            return arrays
        live, tombstones = self.l1.effective_rows(
            self.l1.max_commit_ts(), ALWAYS_TRUE
        )
        drop = tombstones | set(live)
        if drop:
            keep = [i for i, k in enumerate(keys) if k not in drop]
            arrays = {name: arr[keep] for name, arr in arrays.items()}
        fresh = [r for r in live.values() if predicate.matches(r, self.schema)]
        if fresh:
            fresh_arrays = rows_to_columns(self.schema, fresh)
            arrays = {
                name: np.concatenate([arrays[name], fresh_arrays[name]])
                for name in arrays
            }
        return arrays

    def scan_columns_encoded(
        self, columns: list[str], predicate: Predicate, read_fresh: bool
    ) -> dict[str, np.ndarray]:
        """Compressed variant of :meth:`scan_columns`: Main and L2 scan
        with ``encode=True``; columns both layers serve as codes merge
        via dictionary union (remap charged here, in the driver), and
        the L1 overlay folds fresh rows into the code space with a
        decoded fallback."""
        main_res = self.main.scan(columns, predicate, encode=True)
        l2_res = self.l2.scan(columns, predicate, encode=True)
        arrays: dict[str, np.ndarray] = {}
        remapped = 0
        for name in main_res.arrays:
            a, b = main_res.arrays[name], l2_res.arrays[name]
            a_code, b_code = isinstance(a, CodeColumn), isinstance(b, CodeColumn)
            if a_code and b_code:
                column, n_remap = concat_code_parts(
                    [(a.codes, a.dictionary), (b.codes, b.dictionary)]
                )
                arrays[name] = column
                remapped += n_remap
                continue
            # One side plain: keep the encoded side when the plain side
            # is empty (the common fresh-L2 case), else decode.
            if a_code and len(b) == 0:
                arrays[name] = a
                continue
            if b_code and len(a) == 0:
                arrays[name] = b
                continue
            if a_code:
                a = a.decode()
            if b_code:
                b = b.decode()
            arrays[name] = np.concatenate([a, b])
        if remapped:
            self._cost.charge_rows(self._cost.code_remap_per_value_us, remapped)
        keys = main_res.keys + l2_res.keys
        if not read_fresh or not len(self.l1):
            return arrays
        live, tombstones = self.l1.effective_rows(
            self.l1.max_commit_ts(), ALWAYS_TRUE
        )
        drop = tombstones | set(live)
        fresh = [r for r in live.values() if predicate.matches(r, self.schema)]
        fresh_columns = rows_to_columns(self.schema, fresh) if fresh else None
        return overlay_arrays(arrays, keys, drop, fresh, fresh_columns)

    def all_latest_rows(self) -> list[Row]:
        """Materialize current state across all three layers (row path)."""
        arrays = self.scan_columns(
            self.schema.column_names, ALWAYS_TRUE, read_fresh=True
        )
        from ..common.types import columns_to_rows

        n = len(next(iter(arrays.values()))) if arrays else 0
        self._cost.charge_rows(self._cost.column_materialize_per_row_us, n)
        return columns_to_rows(self.schema, arrays)

    def row_count(self) -> int:
        live, tombstones = self.l1.effective_rows(self.l1.max_commit_ts())
        overlay = set(live) | tombstones
        base = sum(
            1
            for store in (self.main, self.l2)
            for k in _store_keys(store)
            if k not in overlay
        )
        return base + len(live)

    def memory_report(self) -> dict[str, int]:
        return {
            "l1_delta": self.l1.memory_bytes(),
            "l2_delta": self.l2.memory_bytes(),
            "main": self.main.memory_bytes(),
        }


def _store_keys(store: ColumnStore):
    for segment in store.segments:
        for pos, key in enumerate(segment.keys):
            if not segment.delete_mask[pos]:
                yield key


class ColumnDeltaEngine(HTAPEngine):
    """HANA-style single-node engine over HanaTable layers."""

    info = EngineInfo(
        name="column+delta",
        category="d",
        description="Primary Column Store + Delta Row Store (SAP HANA style)",
    )

    def __init__(
        self,
        cost: CostModel | None = None,
        clock: LogicalClock | None = None,
        l1_threshold: int = 128,
        l2_threshold: int = 2048,
        l1_fraction: float = 0.05,
        group_commit_size: int = 8,
        vectorized: bool = True,
    ):
        super().__init__(cost, clock)
        self.vectorized = vectorized
        self.wal = WriteAheadLog(
            cost=self.cost,
            group_commit_size=group_commit_size,
            labels={"engine": self.info.name},
        )
        self.l1_threshold = l1_threshold
        self.l2_threshold = l2_threshold
        #: L1 also merges once it reaches this fraction of the columnar
        #: rows, so small hot tables do not drag every scan through a
        #: row-wise overlay (HANA merges L1 aggressively for the same
        #: reason).
        self.l1_fraction = l1_fraction
        self._tables: dict[str, HanaTable] = {}
        self.commits = 0
        self.aborts = 0
        self._next_txn_id = 1

    # ------------------------------------------------------------- schema

    def create_table(self, schema: Schema) -> None:
        if schema.table_name in self._tables:
            raise TransactionError(f"table {schema.table_name!r} already exists")
        table = HanaTable(schema, self.cost, vectorized=self.vectorized)
        self._tables[schema.table_name] = table
        self._register_adapter(schema.table_name, _HanaTableAccess(self, schema.table_name))

    def table(self, name: str) -> HanaTable:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyNotFoundError(f"no table {name!r}") from None

    @classmethod
    def recover(
        cls,
        wal: WriteAheadLog,
        schemas: list[Schema],
        include_unforced: bool = False,
        **kwargs,
    ) -> "ColumnDeltaEngine":
        """Rebuild an engine from a crashed instance's redo log.

        Replays committed transactions in LSN order into fresh L1
        layers (redo-winners-only; the WAL never holds loser effects).
        By default only durable commits (covered by an fsync) replay;
        ``include_unforced=True`` gives clean-shutdown semantics.
        """
        engine = cls(**kwargs)
        for schema in schemas:
            engine.create_table(schema)
        committed = (
            wal.committed_txn_ids() if include_unforced else wal.durable_txn_ids()
        )
        for record in wal.records:
            if record.txn_id not in committed or record.table is None:
                continue  # BEGIN/COMMIT/ABORT markers carry no data
            engine.clock.advance_to(record.commit_ts)
            if record.kind is WalKind.INSERT:
                engine.table(record.table).apply_insert(record.row, record.commit_ts)
            elif record.kind is WalKind.UPDATE:
                engine.table(record.table).apply_update(record.row, record.commit_ts)
            elif record.kind is WalKind.DELETE:
                engine.table(record.table).apply_delete(record.key, record.commit_ts)
        return engine

    # ------------------------------------------------------------- OLTP

    def session(self) -> EngineSession:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return _HanaSession(self, txn_id)

    def bulk_load(self, table: str, rows: list[Row]) -> None:
        """Fast load: one WAL batch + one L1 batch + one invalidation
        for the whole set (rows must be fresh keys)."""
        if not rows:
            return
        target = self.table(table)
        rows = [target.schema.validate_row(r) for r in rows]
        before = self.cost.now_us()
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        commit_ts = self.clock.tick()
        key_of = target.schema.key_of
        self.wal.append_batch(
            txn_id,
            [(WalKind.INSERT, table, key_of(row), row) for row in rows],
            commit_ts,
        )
        target.apply_insert_batch(rows, commit_ts)
        self.scan_cache.invalidate(table)
        self.commits += 1
        self._m_tp_commits.inc()
        self.ledger.charge(_NODE, self.cost.now_us() - before)

    # ------------------------------------------------------------- DS

    def _sync(self) -> int:
        """Threshold-driven L1→L2 and L2→Main merges."""
        moved = 0
        before = self.cost.now_us()
        for table in self._tables.values():
            base = len(table.main) + len(table.l2)
            trigger = min(self.l1_threshold, max(16, int(base * self.l1_fraction)))
            if len(table.l1) >= trigger:
                moved += table.merge_l1_to_l2()
            if len(table.l2) >= self.l2_threshold:
                moved += table.merge_l2_to_main()
        self.ledger.charge(_NODE, self.cost.now_us() - before)
        return moved

    def force_sync(self) -> int:
        moved = 0
        for table in self._tables.values():
            moved += table.merge_l1_to_l2()
            moved += table.merge_l2_to_main()
        self.scan_cache.invalidate()
        return moved

    def freshness_lag(self) -> int:
        if self.read_fresh:
            return 0  # L1 is merged into every scan
        newest = self.clock.now()
        lags = [
            newest - max(t.main.max_commit_ts(), t.l2.max_commit_ts())
            for t in self._tables.values()
            if len(t.l1)  # only tables with unmerged L1 entries are stale
        ]
        return max(lags, default=0)

    def memory_report(self) -> dict[str, int]:
        out = {"l1_delta": 0, "l2_delta": 0, "main": 0, "wal": len(self.wal) * 64}
        for table in self._tables.values():
            report = table.memory_report()
            out["l1_delta"] += report["l1_delta"]
            out["l2_delta"] += report["l2_delta"]
            out["main"] += report["main"]
        return out


class _HanaSession(EngineSession):
    """Buffered-write transaction with commit-time validation."""

    def __init__(self, engine: ColumnDeltaEngine, txn_id: int):
        self._engine = engine
        self._txn_id = txn_id
        self._writes: list[tuple[str, str, Key, Row | None]] = []
        self._view: dict[tuple[str, Key], Row | None] = {}
        self._done = False

    def _charged(self, fn, *args):
        before = self._engine.cost.now_us()
        try:
            return fn(*args)
        finally:
            self._engine.ledger.charge(_NODE, self._engine.cost.now_us() - before)

    def _require_open(self) -> None:
        if self._done:
            raise TransactionError(f"transaction {self._txn_id} already finished")

    # --------------------------------------------------------------- reads

    def read(self, table: str, key: Key) -> Row | None:
        self._require_open()
        if (table, key) in self._view:
            return self._view[(table, key)]
        return self._charged(self._engine.table(table).read_latest, key)

    def scan(self, table: str, predicate: Predicate = ALWAYS_TRUE) -> list[Row]:
        self._require_open()
        schema = self._engine.table(table).schema
        rows = {
            schema.key_of(r): r
            for r in self._charged(self._engine.table(table).all_latest_rows)
            if predicate.matches(r, schema)
        }
        for (t, key), row in self._view.items():
            if t != table:
                continue
            if row is None:
                rows.pop(key, None)
            elif predicate.matches(row, schema):
                rows[key] = row
            else:
                rows.pop(key, None)
        return list(rows.values())

    # --------------------------------------------------------------- writes

    def insert(self, table: str, row: Row) -> Key:
        self._require_open()
        schema = self._engine.table(table).schema
        row = schema.validate_row(row)
        key = schema.key_of(row)
        if self.read(table, key) is not None:
            raise DuplicateKeyError(f"key {key!r} already exists in {table!r}")
        self._writes.append(("insert", table, key, row))
        self._view[(table, key)] = row
        return key

    def update(self, table: str, row: Row) -> None:
        self._require_open()
        schema = self._engine.table(table).schema
        row = schema.validate_row(row)
        key = schema.key_of(row)
        if self.read(table, key) is None:
            raise KeyNotFoundError(f"key {key!r} not found in {table!r}")
        self._writes.append(("update", table, key, row))
        self._view[(table, key)] = row

    def delete(self, table: str, key: Key) -> None:
        self._require_open()
        if self.read(table, key) is None:
            raise KeyNotFoundError(f"key {key!r} not found in {table!r}")
        self._writes.append(("delete", table, key, None))
        self._view[(table, key)] = None

    # --------------------------------------------------------------- finish

    def commit(self) -> Timestamp:
        self._require_open()
        engine = self._engine
        before = engine.cost.now_us()
        commit_ts = engine.clock.tick()
        engine.wal.append(self._txn_id, WalKind.BEGIN)
        for kind, table, key, row in self._writes:
            wal_kind = {
                "insert": WalKind.INSERT,
                "update": WalKind.UPDATE,
                "delete": WalKind.DELETE,
            }[kind]
            engine.wal.append(self._txn_id, wal_kind, table, key, row, commit_ts)
            target = engine.table(table)
            if kind == "insert":
                target.apply_insert(row, commit_ts)
            elif kind == "update":
                target.apply_update(row, commit_ts)
            else:
                target.apply_delete(key, commit_ts)
        engine.wal.append(self._txn_id, WalKind.COMMIT, commit_ts=commit_ts)
        for table in {t for _kind, t, _key, _row in self._writes}:
            engine.scan_cache.invalidate(table)
        engine.commits += 1
        engine._m_tp_commits.inc()
        self._done = True
        self.finished = True
        engine.ledger.charge(_NODE, engine.cost.now_us() - before)
        return commit_ts

    def abort(self) -> None:
        self._require_open()
        self._engine.wal.append(self._txn_id, WalKind.ABORT)
        self._engine.aborts += 1
        self._engine._m_tp_aborts.inc()
        self._done = True
        self.finished = True


class _HanaTableAccess:
    """TableAccess over the three HANA layers."""

    def __init__(self, engine: ColumnDeltaEngine, table: str):
        self._engine = engine
        self._table = table
        self._stats = StatsCache(self._compute_stats)

    def _target(self) -> HanaTable:
        return self._engine.table(self._table)

    def schema(self) -> Schema:
        return self._target().schema

    def _compute_stats(self) -> TableStats:
        return TableStats.from_rows(self.schema(), self._target().all_latest_rows())

    def stats(self) -> TableStats:
        target = self._target()
        version = len(target.l1) + len(target.l2) + len(target.main)
        return self._stats.get(version)

    def stats_epoch(self) -> int:
        """Plan-cache fence: version of the currently served statistics
        (optional protocol, see access.py)."""
        self.stats()
        return self._stats.epoch

    def available_paths(self) -> set[AccessPath]:
        # The "row path" here is a full materialization — the primary
        # store is columnar, so there is no cheap tuple heap to scan.
        return {AccessPath.ROW_SCAN, AccessPath.INDEX_LOOKUP, AccessPath.COLUMN_SCAN}

    def cache_token(self, path=None):
        """Scan-cache version token: L1 size/high-water commit ts plus
        the merge generations and write versions of L2/Main — any HANA
        write or merge changes at least one component."""
        target = self._target()
        return (
            "latest",
            len(target.l1),
            target.l1.max_commit_ts(),
            target.l1_to_l2_merges,
            target.l2_to_main_merges,
            target.l2.mutations,
            target.main.mutations,
            self._engine.read_fresh,
        )

    def scan_rows(self, predicate: Predicate) -> list[Row]:
        schema = self.schema()
        return [
            r for r in self._target().all_latest_rows() if predicate.matches(r, schema)
        ]

    def scan_columns(self, columns: list[str], predicate: Predicate):
        return self._target().scan_columns(
            columns, predicate, read_fresh=self._engine.read_fresh
        )

    def scan_columns_encoded(self, columns: list[str], predicate: Predicate):
        return self._target().scan_columns_encoded(
            columns, predicate, read_fresh=self._engine.read_fresh
        )

    def code_space_hint(self, columns: list[str]) -> float:
        """Row-weighted encoded fraction across L2 + Main (L1 rows are
        decoded overlay — they dilute the hint like unprunable rows)."""
        target = self._target()
        total = len(target.l1) + len(target.l2) + len(target.main)
        if total == 0:
            return 0.0
        encoded = sum(
            len(store) * store.encoded_column_fraction(columns)
            for store in (target.l2, target.main)
        )
        return encoded / total

    def scan_pruning_hint(self, predicate: Predicate) -> float:
        """Row-weighted prunable fraction across the L2 + Main stores
        (L1 is a row delta — never prunable, so it dilutes the hint)."""
        target = self._target()
        total = len(target.l1) + len(target.l2) + len(target.main)
        if total == 0:
            return 0.0
        prunable = sum(
            len(store) * store.pruned_row_fraction(predicate)
            for store in (target.l2, target.main)
        )
        return prunable / total

    def index_lookup_rows(self, predicate: Predicate) -> list[Row] | None:
        schema = self.schema()
        key = key_equality(predicate, schema.primary_key)
        if key is None:
            return None
        row = self._target().read_latest(key)
        if row is not None and predicate.matches(row, schema):
            return [row]
        return []
