"""Deterministic morsel-driven parallel execution.

Scans fan per-morsel scan+filter+gather tasks out to an
:class:`OrderedSegmentPool` and merge the partial results back in
submission order, so a parallel scan is byte-identical to the serial
one (see :mod:`repro.parallel.pool` for the determinism contract).
Downstream pipeline stages — partial aggregation and join probing over
morsels — live in :mod:`repro.parallel.morsel` under the same exact
ordered-merge discipline.
"""

from .morsel import (
    EXACT_MERGE_KINDS,
    MorselAggregate,
    morsel_probe,
    morsel_ranges,
    partial_group_aggregate,
)
from .pool import (
    DEFAULT_MORSEL_ROWS,
    OrderedSegmentPool,
    get_default_pool,
    scan_parallel,
    set_default_pool,
)

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "EXACT_MERGE_KINDS",
    "MorselAggregate",
    "OrderedSegmentPool",
    "get_default_pool",
    "morsel_probe",
    "morsel_ranges",
    "partial_group_aggregate",
    "scan_parallel",
    "set_default_pool",
]
