"""Deterministic segment-parallel execution.

The column store fans per-segment scan+filter+gather tasks out to an
:class:`OrderedSegmentPool` and merges the partial results back in
segment-id order, so a parallel scan is byte-identical to the serial
one (see :mod:`repro.parallel.pool` for the determinism contract).
"""

from .pool import (
    OrderedSegmentPool,
    get_default_pool,
    scan_parallel,
    set_default_pool,
)

__all__ = [
    "OrderedSegmentPool",
    "get_default_pool",
    "scan_parallel",
    "set_default_pool",
]
