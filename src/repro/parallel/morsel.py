"""Morsel-driven pipeline stages with exact ordered merges.

A *morsel* is a contiguous row range of a larger batch — the unit of
work NUMA-style engines hand to workers.  This module provides the
stages that run per morsel downstream of the scan (partial aggregation,
join probing) under the same discipline as
:class:`~repro.parallel.pool.OrderedSegmentPool`:

* morsel boundaries are a pure function of batch size and granularity
  (`morsel_ranges`), never of worker count or timing;
* per-morsel results merge in submission order;
* only *exactly mergeable* reductions run as morsel partials — COUNT,
  MIN, MAX, and integer/bool SUM, whose merges are associative and
  exact — so the merged output is bit-identical to the single-pass
  kernel no matter how the rows were cut.  Float SUM/AVG are *not*
  mergeable (float addition does not re-associate bit-exactly) and stay
  on the flat kernel by design.

Simulated-cost discipline: nothing here touches the shared clock; the
executor charges aggregation by input row exactly as the flat kernel
does, so morsel and flat runs are cost-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pool import DEFAULT_MORSEL_ROWS, OrderedSegmentPool

#: Reduction kinds whose partials merge exactly (see module docstring).
EXACT_MERGE_KINDS = frozenset({"count", "sum_int", "min", "max"})


def morsel_ranges(
    n_rows: int, morsel_rows: int = DEFAULT_MORSEL_ROWS
) -> list[tuple[int, int]]:
    """Deterministic ``[start, stop)`` cuts of ``n_rows``."""
    if n_rows <= 0:
        return []
    return [
        (start, min(start + morsel_rows, n_rows))
        for start in range(0, n_rows, morsel_rows)
    ]


@dataclass
class MorselAggregate:
    """Merged per-group state, ordered by ascending group code —
    exactly the group order of the flat sort-based kernel."""

    group_codes: np.ndarray   # sorted unique packed group codes
    counts: np.ndarray        # rows per group (int64)
    first_rows: np.ndarray    # first source row index per group
    reduced: list[np.ndarray]  # one array per spec, group-ordered


def _starts_of(sorted_codes: np.ndarray) -> np.ndarray:
    starts = np.empty(len(sorted_codes), dtype=bool)
    starts[0] = True
    np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=starts[1:])
    return np.flatnonzero(starts)


def _reduce_block(
    kind: str, values: np.ndarray, order: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    ordered = values[order]
    if kind == "sum_int":
        return np.add.reduceat(ordered, starts)
    if kind == "min":
        return np.minimum.reduceat(ordered, starts)
    if kind == "max":
        return np.maximum.reduceat(ordered, starts)
    raise ValueError(f"unmergeable reduction kind {kind!r}")


def partial_group_aggregate(
    codes: np.ndarray,
    specs: list[tuple[str, np.ndarray | None]],
    pool: OrderedSegmentPool | None = None,
    morsel_rows: int | None = None,
) -> MorselAggregate:
    """Group-by ``codes`` via per-morsel partials + exact ordered merge.

    ``specs`` lists ``(kind, values)`` reductions with kinds drawn from
    :data:`EXACT_MERGE_KINDS` (``count`` needs no values — it rides on
    the per-group counts).  The result is bit-identical to sorting the
    whole batch and reducing once, for any morsel granularity and any
    worker count — which is what makes it safe to use opportunistically
    whenever a pool is installed.
    """
    rows = len(codes)
    if morsel_rows is None:
        morsel_rows = getattr(pool, "morsel_rows", None) or DEFAULT_MORSEL_ROWS
    if rows == 0:
        empty = np.array([], dtype=np.int64)
        return MorselAggregate(
            empty,
            empty.copy(),
            empty.copy(),
            [
                np.array(
                    [], dtype=values.dtype if values is not None else np.int64
                )
                for _kind, values in specs
            ],
        )
    reductions = [(kind, values) for kind, values in specs if kind != "count"]

    def one_morsel(cut: tuple[int, int]):
        start, stop = cut
        local = codes[start:stop]
        order = np.argsort(local, kind="stable")
        sorted_local = local[order]
        starts = _starts_of(sorted_local)
        uniq = sorted_local[starts]
        counts = np.diff(np.append(starts, len(sorted_local))).astype(np.int64)
        first = start + order[starts].astype(np.int64)
        blocks = [
            _reduce_block(kind, values[start:stop], order, starts)
            for kind, values in reductions
        ]
        return uniq, counts, first, blocks

    cuts = morsel_ranges(rows, morsel_rows)
    if pool is not None and len(cuts) > 1:
        partials = pool.map_ordered(one_morsel, cuts)
    else:
        partials = [one_morsel(cut) for cut in cuts]

    all_uniq = np.concatenate([p[0] for p in partials])
    all_counts = np.concatenate([p[1] for p in partials])
    all_first = np.concatenate([p[2] for p in partials])
    order = np.argsort(all_uniq, kind="stable")
    sorted_uniq = all_uniq[order]
    starts = _starts_of(sorted_uniq)
    group_codes = sorted_uniq[starts]
    counts = np.add.reduceat(all_counts[order], starts)
    first_rows = np.minimum.reduceat(all_first[order], starts)
    reduced = []
    for i, (kind, _values) in enumerate(reductions):
        merge_kind = "sum_int" if kind == "sum_int" else kind
        block = np.concatenate([p[3][i] for p in partials])
        reduced.append(_reduce_block(merge_kind, block, order, starts))
    # Re-expand to the caller's spec order, counts standing in for
    # "count" entries.
    out: list[np.ndarray] = []
    it = iter(reduced)
    for kind, _values in specs:
        out.append(counts.copy() if kind == "count" else next(it))
    return MorselAggregate(group_codes, counts, first_rows, out)


def morsel_probe(
    n_probe: int,
    probe_fn,
    pool: OrderedSegmentPool | None = None,
    morsel_rows: int | None = None,
) -> list:
    """Fan a join probe over probe-side morsels, merged in morsel order.

    ``probe_fn(start, stop)`` probes rows ``[start, stop)`` against the
    (shared, read-only) build side and returns its partial result.  The
    probe-major concatenation of per-morsel outputs equals the flat
    probe because each probe row's matches depend only on that row.
    """
    if morsel_rows is None:
        morsel_rows = getattr(pool, "morsel_rows", None) or DEFAULT_MORSEL_ROWS
    cuts = morsel_ranges(n_probe, morsel_rows)
    task = lambda cut: probe_fn(cut[0], cut[1])  # noqa: E731
    if pool is not None and len(cuts) > 1:
        return pool.map_ordered(task, cuts)
    return [task(cut) for cut in cuts]
