"""A thread pool with a deterministic ordered-merge contract.

Parallel scans must never change *what* a query returns, only how fast
the wall clock says it ran.  The pool enforces the three rules that
make that true:

* tasks are submitted in the caller's order (the column store submits
  per-segment tasks in ascending segment id) and results are yielded
  back in exactly that order, so the merge concatenates partials the
  same way the serial loop does;
* task functions must not touch shared simulated state — in particular
  the shared :class:`~repro.common.clock.SimClock`.  A task *returns*
  its simulated charge and the caller accounts it on the shared clock
  in submission order, which keeps the simulated timeline bit-identical
  to the serial path (the cost-parity discipline, HTL003);
* worker threads never mutate the store they read: scans snapshot the
  segment list up front and segments are sealed/immutable.

Observability: ``parallel.tasks`` counts fanned-out tasks and
``parallel.merge_ns`` records the wall-clock nanoseconds spent waiting
for + merging results (wall time is an *observation* here, it never
feeds back into simulated time or results).
"""

from __future__ import annotations

import time  # htaplint: ignore[HTL001] -- wall clock feeds only the parallel.merge_ns observability histogram, never simulated time or query results
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from ..obs.registry import get_registry

T = TypeVar("T")
R = TypeVar("R")

DEFAULT_WORKERS = 4

#: Rows per morsel when scans split segments into row ranges.  Chosen
#: cache-friendly (a few columns × 4096 values stay L2-resident) and
#: large enough that per-task overhead stays negligible; results and
#: simulated cost are invariant to this number by construction.
DEFAULT_MORSEL_ROWS = 4096


class OrderedSegmentPool:
    """Thread-based fan-out that preserves submission order on merge.

    ``morsel_rows`` is the scan work-unit granularity: segments larger
    than this split into row-range morsels (None: whole segments, the
    pre-morsel behavior).  The granularity affects only scheduling —
    the ordered merge and count-based charge accounting make results
    and simulated cost identical for every split.
    """

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        morsel_rows: int | None = DEFAULT_MORSEL_ROWS,
    ):
        if workers < 1:
            raise ValueError("worker count must be >= 1")
        if morsel_rows is not None and morsel_rows < 1:
            raise ValueError("morsel_rows must be >= 1 (or None)")
        self.workers = workers
        self.morsel_rows = morsel_rows
        self._executor: ThreadPoolExecutor | None = None
        reg = get_registry()
        self._tasks_counter = reg.counter("parallel.tasks")
        self._merge_hist = reg.histogram("parallel.merge_ns")
        self.tasks_run = 0

    # ------------------------------------------------------------- lifecycle

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-scan"
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "OrderedSegmentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- map

    def map_ordered(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Run ``fn`` over ``items``, returning results in input order.

        With one worker (or one item) the tasks run inline on the
        calling thread — same code path, same ordering guarantee.
        """
        work: Sequence[T] = list(items)
        self.tasks_run += len(work)
        self._tasks_counter.inc(len(work))
        if len(work) <= 1 or self.workers == 1:
            start = time.perf_counter_ns()
            results = [fn(item) for item in work]
            self._merge_hist.observe(time.perf_counter_ns() - start)
            return results
        executor = self._ensure_executor()
        start = time.perf_counter_ns()
        # Executor.map yields results in submission order regardless of
        # completion order — the deterministic ordered merge.
        results = list(executor.map(fn, work))
        self._merge_hist.observe(time.perf_counter_ns() - start)
        return results


# ----------------------------------------------------------------- default pool

_default_pool: OrderedSegmentPool | None = None


def get_default_pool() -> OrderedSegmentPool | None:
    """The process-wide pool parallel-enabled scans use, or None."""
    return _default_pool


def set_default_pool(pool: OrderedSegmentPool | None) -> OrderedSegmentPool | None:
    """Install (or clear, with None) the default scan pool; returns the
    previous one so callers can restore it."""
    global _default_pool
    previous = _default_pool
    _default_pool = pool
    return previous


@contextmanager
def scan_parallel(
    workers: int = DEFAULT_WORKERS,
    morsel_rows: int | None = DEFAULT_MORSEL_ROWS,
) -> Iterator[OrderedSegmentPool]:
    """Run the enclosed block with morsel-parallel scans enabled."""
    pool = OrderedSegmentPool(workers, morsel_rows=morsel_rows)
    previous = set_default_pool(pool)
    try:
        yield pool
    finally:
        set_default_pool(previous)
        pool.close()
