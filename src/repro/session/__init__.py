"""The high-concurrency front door (ROADMAP item 2).

Benches used to call engines directly, one operation at a time; the
survey's scheduling critique (§2.2(5)/§2.4) is about what happens when
*thousands of concurrent clients* share one entry point instead.  This
package is that entry point:

* :class:`ClientSession` / :class:`PreparedStatement` — deterministic
  simulated clients; prepared statements go through the engine's
  parameterized plan cache (parse/optimize once per statement shape);
* :class:`AdmissionController` — workload-class admission control and
  backpressure honoring the scheduler's slot splits (delay on pressure,
  shed on overload);
* :class:`GroupCommitTuner` — retunes the WAL group-commit window from
  the observed session arrival rate;
* :class:`FrontDoor` — multiplexes every session's queued operations
  over one engine, round by round, under a scheduler's allocations.

Everything runs on simulated time (the shared CostModel clock); the
tier is fully deterministic and lint-clean under htaplint HTL001.
"""

from .admission import AdmissionController, AdmissionDecision, AdmissionPolicy
from .frontdoor import FrontDoor, FrontDoorConfig, FrontDoorReport
from .group_commit import GroupCommitTuner
from .session import ClientSession, Operation, PreparedStatement

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "ClientSession",
    "FrontDoor",
    "FrontDoorConfig",
    "FrontDoorReport",
    "GroupCommitTuner",
    "Operation",
    "PreparedStatement",
]
