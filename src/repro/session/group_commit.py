"""Arrival-rate-driven WAL group-commit tuning.

A fixed group-commit window is wrong at both ends of the load curve:
size 1 burns one fsync per commit under a burst, a large window makes
a lone commit wait for company that never arrives.  The tuner closes
the loop the way the survey's §2.2 logging discussion implies real
engines do — from the *observed* arrival rate:

    window ≈ smoothed OLTP arrivals per round / target fsyncs per round

clamped to [min_batch, max_batch] and smoothed with a deterministic
EMA so one quiet round does not collapse a window a burst just opened.
Engines without a tunable WAL (the distributed-replica architecture
replicates through consensus instead) simply get a no-op tuner.
"""

from __future__ import annotations

from ..obs import get_registry
from ..txn.wal import WriteAheadLog


class GroupCommitTuner:
    """Maps session arrival rate to a WAL group-commit window."""

    def __init__(
        self,
        wal: WriteAheadLog | None,
        min_batch: int = 1,
        max_batch: int = 64,
        target_fsyncs_per_round: int = 4,
        smoothing: float = 0.5,
        labels: dict[str, str] | None = None,
    ):
        if min_batch < 1 or max_batch < min_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        if target_fsyncs_per_round < 1:
            raise ValueError("target_fsyncs_per_round must be >= 1")
        if not 0.0 <= smoothing < 1.0:
            raise ValueError("smoothing must be in [0, 1)")
        self._wal = wal
        self._min = min_batch
        self._max = max_batch
        self._target_fsyncs = target_fsyncs_per_round
        self._smoothing = smoothing
        self._rate: float | None = None  # EMA of arrivals per round
        self.applied_size = wal.group_commit_size if wal is not None else 0
        self._m_size = get_registry().gauge(
            "session.group_commit_size", **(labels or {})
        )
        if wal is not None:
            self._m_size.set(float(self.applied_size))

    @property
    def smoothed_rate(self) -> float:
        return self._rate if self._rate is not None else 0.0

    def observe_round(self, oltp_arrivals: int) -> int:
        """Fold one round's arrivals in; retune and return the window.

        Returns 0 when the engine has no tunable WAL.
        """
        if oltp_arrivals < 0:
            raise ValueError("arrivals must be >= 0")
        if self._rate is None:
            self._rate = float(oltp_arrivals)
        else:
            self._rate = (
                self._smoothing * self._rate
                + (1.0 - self._smoothing) * oltp_arrivals
            )
        if self._wal is None:
            return 0
        size = max(
            self._min,
            min(self._max, round(self._rate / self._target_fsyncs)),
        )
        if size != self.applied_size:
            self._wal.set_group_commit_size(size)
            self.applied_size = size
            self._m_size.set(float(size))
        return self.applied_size
