"""The front door: multiplex many sessions over one engine.

:class:`FrontDoor` is the glue between the client tier and everything
built in earlier PRs: a scheduler decides the slot split and execution
mode per round (exactly like ``ScheduledWorkloadRunner``), the
:class:`AdmissionController` translates that split into per-class
backpressure, the :class:`GroupCommitTuner` retunes the WAL window from
the observed arrival rate, and queued operations consume their class's
simulated budget when their round comes.

Per-operation latency is measured on the simulated clock from *submit*
to *completion* — queue wait included — so admission control and slot
decisions show up in the tail, not just in throughput.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..common.metrics import LatencyRecorder
from ..distributed.router import Router
from ..engines.base import HTAPEngine
from ..obs import get_registry
from ..scheduler.resources import (
    ExecutionMode,
    ResourceAllocation,
    RoundMetrics,
    Scheduler,
    ScheduleTrace,
)
from ..txn.wal import WriteAheadLog
from .admission import AdmissionController, AdmissionDecision, AdmissionPolicy
from .group_commit import GroupCommitTuner
from .session import ClientSession, Operation


def resolve_wal(engine: HTAPEngine) -> WriteAheadLog | None:
    """Find the engine's tunable WAL, if it has one.

    Architectures (a)/(c)/(d) log locally (``engine.wal`` or
    ``txn_manager.wal``); the distributed-replica architecture (b)
    replicates through consensus instead and has nothing to tune.
    """
    wal = getattr(engine, "wal", None)
    if wal is None:
        wal = getattr(getattr(engine, "txn_manager", None), "wal", None)
    return wal if isinstance(wal, WriteAheadLog) else None


def resolve_router(engine: HTAPEngine) -> Router | None:
    """Mint this front door's own shard-map router, when the engine is
    distributed.

    The distributed-replica architecture (b) routes every keyed
    operation through a stateless router cache; each front door gets its
    *own* router (its own cache, its own staleness) exactly like one
    TiDB-server node.  Single-node architectures route nothing.
    """
    make = getattr(engine, "make_router", None)
    if make is None:
        return None
    router = make(f"frontdoor{next(_FRONTDOOR_IDS)}")
    return router if isinstance(router, Router) else None


_FRONTDOOR_IDS = itertools.count()


@dataclass(frozen=True)
class FrontDoorConfig:
    """Front-door knobs; defaults mirror the scheduled-runner bench."""

    round_slot_us: float = 4_000.0   # simulated budget per slot per round
    use_plan_cache: bool = True      # False = cold parse/optimize per call
    policy: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    group_commit_min: int = 1
    group_commit_max: int = 64
    target_fsyncs_per_round: int = 4


@dataclass
class FrontDoorReport:
    """What the front door saw over a run, per workload class."""

    completed: dict[str, int]
    admitted: dict[str, int]
    delayed: dict[str, int]
    shed: dict[str, int]
    latency_p50_us: dict[str, float]
    latency_p95_us: dict[str, float]
    latency_p99_us: dict[str, float]
    mean_freshness_lag: float
    plan_cache: dict[str, int]
    group_commit_size: int
    trace: ScheduleTrace
    #: Shard-map router cache stats (routes, refreshes, stale retries);
    #: None for single-node engines, which have no router.
    router: dict[str, float] | None = None


class FrontDoor:
    """Session multiplexer: queues in, scheduled rounds out."""

    def __init__(
        self,
        engine: HTAPEngine,
        scheduler: Scheduler,
        config: FrontDoorConfig | None = None,
    ):
        self.engine = engine
        self.scheduler = scheduler
        self.config = config or FrontDoorConfig()
        self.router = resolve_router(engine)
        labels = {"engine": engine.info.name}
        self.admission = AdmissionController(self.config.policy, labels=labels)
        self.tuner = GroupCommitTuner(
            resolve_wal(engine),
            min_batch=self.config.group_commit_min,
            max_batch=self.config.group_commit_max,
            target_fsyncs_per_round=self.config.target_fsyncs_per_round,
            labels=labels,
        )
        self.sessions: list[ClientSession] = []
        self.queues: dict[str, deque[Operation]] = {
            cls: deque() for cls in AdmissionController.WORKLOAD_CLASSES
        }
        self.latency: dict[str, LatencyRecorder] = {
            cls: LatencyRecorder()
            for cls in AdmissionController.WORKLOAD_CLASSES
        }
        self.completed = {
            cls: 0 for cls in AdmissionController.WORKLOAD_CLASSES
        }
        self.trace = ScheduleTrace()
        self._arrivals = {
            cls: 0 for cls in AdmissionController.WORKLOAD_CLASSES
        }
        self._last: RoundMetrics | None = None
        self._lags: list[float] = []
        reg = get_registry()
        self._m_opened = reg.counter("session.opened", **labels)
        self._m_completed = {
            cls: reg.counter("session.completed", workload=cls, **labels)
            for cls in AdmissionController.WORKLOAD_CLASSES
        }
        self._m_depth = {
            cls: reg.gauge("session.queue_depth", workload=cls, **labels)
            for cls in AdmissionController.WORKLOAD_CLASSES
        }
        self._m_latency = {
            cls: reg.histogram("session.latency_us", workload=cls, **labels)
            for cls in AdmissionController.WORKLOAD_CLASSES
        }

    # ----------------------------------------------------------- client side

    def open_session(self, workload_class: str = "oltp") -> ClientSession:
        if workload_class not in self.queues:
            raise ValueError(f"unknown workload class {workload_class!r}")
        session = ClientSession(self, len(self.sessions), workload_class)
        self.sessions.append(session)
        self._m_opened.inc()
        return session

    def submit(
        self,
        session: ClientSession,
        fn: Callable[[], Any],
        kind: str,
    ) -> AdmissionDecision:
        """Admission-checked enqueue; SHED ops never enter the queue."""
        queue = self.queues.get(kind)
        if queue is None:
            raise ValueError(f"unknown workload class {kind!r}")
        session.submitted += 1
        decision = self.admission.admit(kind, len(queue))
        if decision is AdmissionDecision.SHED:
            session.shed += 1
            return decision
        queue.append(
            Operation(
                kind=kind,
                run=fn,
                submitted_at=self.engine.cost.now_us(),
                session_id=session.session_id,
                delayed=decision is AdmissionDecision.DELAY,
            )
        )
        self._arrivals[kind] += 1
        self._m_depth[kind].set(float(len(queue)))
        return decision

    def queue_depth(self, workload_class: str) -> int:
        return len(self.queues[workload_class])

    # ------------------------------------------------------------ scheduling

    def _drain(self, kind: str, budget_us: float) -> tuple[int, float]:
        """Run queued ops of one class until its budget is spent."""
        engine = self.engine
        queue = self.queues[kind]
        recorder = self.latency[kind]
        done = 0
        busy = 0.0
        while queue and busy < budget_us:
            op = queue.popleft()
            before = engine.cost.now_us()
            op.run()
            after = engine.cost.now_us()
            busy += after - before
            recorder.record(after - op.submitted_at)
            self._m_latency[kind].observe(after - op.submitted_at)
            done += 1
        self.completed[kind] += done
        self._m_completed[kind].inc(done)
        self._m_depth[kind].set(float(len(queue)))
        return done, busy

    def run_round(self) -> RoundMetrics:
        """One scheduling round over whatever the sessions queued."""
        cfg = self.config
        engine = self.engine
        alloc: ResourceAllocation = self.scheduler.allocate(self._last)
        self.admission.on_allocation(alloc)
        engine.read_fresh = alloc.mode is ExecutionMode.SHARED
        # Retune group commit from the arrivals the last window saw.
        self.tuner.observe_round(self._arrivals["oltp"])
        self._arrivals = {cls: 0 for cls in self._arrivals}
        if alloc.run_sync:
            engine.force_sync() if hasattr(engine, "force_sync") else engine.sync()
        tp_done, tp_busy = self._drain("oltp", alloc.oltp_slots * cfg.round_slot_us)
        ap_done, ap_busy = self._drain("olap", alloc.olap_slots * cfg.round_slot_us)
        lag = engine.image_freshness_lag()
        self._lags.append(float(lag))
        metrics = RoundMetrics(
            oltp_completed=tp_done,
            olap_completed=ap_done,
            oltp_backlog=len(self.queues["oltp"]),
            olap_backlog=len(self.queues["olap"]),
            freshness_lag=lag,
            oltp_busy_us=tp_busy,
            olap_busy_us=ap_busy,
            sync_ran=alloc.run_sync,
        )
        self.trace.record(alloc, metrics)
        self._last = metrics
        return metrics

    def run_rounds(self, n: int) -> FrontDoorReport:
        for _ in range(n):
            self.run_round()
        return self.report()

    def drain_all(self, max_rounds: int = 1_000) -> int:
        """Keep scheduling until every queue is empty; returns rounds run."""
        rounds = 0
        while any(self.queues.values()) and rounds < max_rounds:
            self.run_round()
            rounds += 1
        return rounds

    def report(self) -> FrontDoorReport:
        classes = AdmissionController.WORKLOAD_CLASSES
        return FrontDoorReport(
            completed=dict(self.completed),
            admitted=dict(self.admission.admitted),
            delayed=dict(self.admission.delayed),
            shed=dict(self.admission.shed),
            latency_p50_us={c: self.latency[c].p50() for c in classes},
            latency_p95_us={c: self.latency[c].p95() for c in classes},
            latency_p99_us={c: self.latency[c].p99() for c in classes},
            mean_freshness_lag=(
                sum(self._lags) / len(self._lags) if self._lags else 0.0
            ),
            plan_cache=dict(self.engine.plan_cache.stats),
            group_commit_size=self.tuner.applied_size,
            trace=self.trace,
            router=self.router.stats if self.router is not None else None,
        )
