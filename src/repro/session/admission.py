"""Workload-class admission control and backpressure.

The scheduler decides the slot split; admission control makes clients
*feel* it.  Each workload class ("oltp" | "olap") owns a queue whose
tolerable depth scales with the slots that class was granted this
round: a class squeezed to few slots backs its clients off sooner,
so queue memory stays bounded and tail latency stays tied to the slot
decision instead of growing without bound.

Two thresholds per class, both proportional to granted slots:

* **delay** — past this depth the submit is still enqueued but the
  client is told to back off (counted in ``session.delayed``);
* **shed** — past this depth the submit is refused outright (counted
  in ``session.shed``; the operation never enters the queue).

Decisions are purely a function of (queue depth, granted slots) —
deterministic, no wall clock, no randomness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from ..obs import get_registry
from ..scheduler.resources import ResourceAllocation


class AdmissionDecision(enum.Enum):
    ADMIT = "admit"
    DELAY = "delay"  # enqueued, but the client should back off
    SHED = "shed"    # refused; not enqueued


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue-depth thresholds, per granted slot."""

    delay_depth_per_slot: int = 16
    shed_depth_per_slot: int = 64

    def __post_init__(self) -> None:
        if self.delay_depth_per_slot < 1 or self.shed_depth_per_slot < 1:
            raise ValueError("admission thresholds must be >= 1")
        if self.shed_depth_per_slot < self.delay_depth_per_slot:
            raise ValueError("shed threshold must be >= delay threshold")


class AdmissionController:
    """Per-class admit/delay/shed decisions from slot-scaled depths."""

    WORKLOAD_CLASSES = ("oltp", "olap")

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        labels: Mapping[str, str] | None = None,
    ):
        self.policy = policy or AdmissionPolicy()
        # Until the first allocation lands, both classes get one slot's
        # worth of tolerance (the scheduler guarantees >= 1 per class).
        self._slots = {cls: 1 for cls in self.WORKLOAD_CLASSES}
        self.admitted = {cls: 0 for cls in self.WORKLOAD_CLASSES}
        self.delayed = {cls: 0 for cls in self.WORKLOAD_CLASSES}
        self.shed = {cls: 0 for cls in self.WORKLOAD_CLASSES}
        labels = dict(labels or {})
        reg = get_registry()
        self._m_admitted = {
            cls: reg.counter("session.admitted", workload=cls, **labels)
            for cls in self.WORKLOAD_CLASSES
        }
        self._m_delayed = {
            cls: reg.counter("session.delayed", workload=cls, **labels)
            for cls in self.WORKLOAD_CLASSES
        }
        self._m_shed = {
            cls: reg.counter("session.shed", workload=cls, **labels)
            for cls in self.WORKLOAD_CLASSES
        }

    def on_allocation(self, allocation: ResourceAllocation) -> None:
        """Adopt this round's slot split as the new depth scale."""
        for cls in self.WORKLOAD_CLASSES:
            self._slots[cls] = max(1, allocation.slots_for(cls))

    def delay_threshold(self, workload_class: str) -> int:
        return self._slots[workload_class] * self.policy.delay_depth_per_slot

    def shed_threshold(self, workload_class: str) -> int:
        return self._slots[workload_class] * self.policy.shed_depth_per_slot

    def admit(self, workload_class: str, queue_depth: int) -> AdmissionDecision:
        """Decide for one submit given the class's current queue depth."""
        if workload_class not in self._slots:
            raise ValueError(f"unknown workload class {workload_class!r}")
        if queue_depth >= self.shed_threshold(workload_class):
            self.shed[workload_class] += 1
            self._m_shed[workload_class].inc()
            return AdmissionDecision.SHED
        if queue_depth >= self.delay_threshold(workload_class):
            self.delayed[workload_class] += 1
            self._m_delayed[workload_class].inc()
            return AdmissionDecision.DELAY
        self.admitted[workload_class] += 1
        self._m_admitted[workload_class].inc()
        return AdmissionDecision.ADMIT
