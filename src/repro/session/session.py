"""Deterministic simulated clients and their prepared statements.

A :class:`ClientSession` is one logical connection to the front door.
It never touches the engine directly: every operation is *submitted*
to the front door's per-class queue and runs when a scheduling round
grants that class budget.  Latency is therefore simulated end-to-end
(queue wait + execution), which is exactly the number the survey's
scheduling discussion cares about.

Prepared statements are client-side handles over the engine's
parameterized plan cache: ``prepare()`` once, then ``execute(params)``
per call.  Sessions keep a handle per statement text, so a client that
re-prepares the same shape reuses the handle (mirroring real drivers'
statement caches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..engines.base import HTAPEngine
from ..query.ast import QueryResult
from .admission import AdmissionDecision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .frontdoor import FrontDoor


class PreparedStatement:
    """A parse-once handle; ``execute`` binds parameters per call.

    With ``use_plan_cache=False`` the handle degrades to the cold path
    (full parse/optimize every call) — the bench's control arm.
    """

    def __init__(
        self, engine: HTAPEngine, statement: str, use_plan_cache: bool = True
    ):
        self.engine = engine
        self.statement = statement
        self.use_plan_cache = use_plan_cache

    def execute(self, params: Sequence[Any] = ()) -> QueryResult:
        if self.use_plan_cache:
            return self.engine.execute_prepared(self.statement, params)
        return self.engine.query(self.statement, params=params)


@dataclass
class Operation:
    """One queued unit of client work."""

    kind: str                    # "oltp" | "olap"
    run: Callable[[], Any]
    submitted_at: float          # simulated us at submission
    session_id: int
    #: True when admission said DELAY — enqueued, but the client was
    #: told to back off before submitting more.
    delayed: bool = False


class ClientSession:
    """One simulated client multiplexed through the front door."""

    def __init__(
        self,
        frontdoor: "FrontDoor",
        session_id: int,
        workload_class: str,
    ):
        self.frontdoor = frontdoor
        self.session_id = session_id
        self.workload_class = workload_class
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self._statements: dict[str, PreparedStatement] = {}

    def prepare(self, statement: str) -> PreparedStatement:
        """Client-side statement cache: one handle per statement text."""
        handle = self._statements.get(statement)
        if handle is None:
            handle = PreparedStatement(
                self.frontdoor.engine,
                statement,
                use_plan_cache=self.frontdoor.config.use_plan_cache,
            )
            self._statements[statement] = handle
        return handle

    def submit(
        self, fn: Callable[[], Any], kind: str | None = None
    ) -> AdmissionDecision:
        """Queue arbitrary work (e.g. one TPC-C transaction closure)."""
        return self.frontdoor.submit(self, fn, kind or self.workload_class)

    def submit_query(
        self, statement: str, params: Sequence[Any] = ()
    ) -> AdmissionDecision:
        """Queue one execution of a (prepared) query."""
        handle = self.prepare(statement)
        return self.frontdoor.submit(
            self, lambda: handle.execute(params), "olap"
        )
