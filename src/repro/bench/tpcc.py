"""TPC-C workload: CH-benCHmark schema, data generator, five transactions.

A faithful-in-shape, scaled-down TPC-C implemented against the uniform
engine-session API, extended with the three relations CH-benCHmark adds
(supplier, nation, region) so the analytical queries have their join
targets.  Scale knobs replace the spec's fixed cardinalities
(10 districts/warehouse, 3000 customers/district, 100k items) so the
same generator drives unit tests and benches.

Deviation from the spec kept deliberately and documented: customer
last-name selection by NURand last-name is replaced by NURand c_id
(no last-name index needed), and stock's s_dist_xx strings are folded
into one s_dist column.  CH's supplier assignment (a derived mod join)
is made explicit with an s_suppkey column on stock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import TransactionAborted
from ..common.rng import ZipfGenerator, make_rng, nurand, random_string
from ..common.types import Column, DataType, Schema
from ..engines.base import HTAPEngine

# --------------------------------------------------------------------- scale


@dataclass(frozen=True)
class TpccScale:
    """Cardinality knobs (spec values in comments)."""

    warehouses: int = 1          # W
    districts: int = 4           # 10 per warehouse
    customers: int = 30          # 3000 per district
    items: int = 100             # 100_000
    initial_orders: int = 20     # 3000 per district
    suppliers: int = 10          # CH: 10_000
    nations: int = 5             # CH: 62
    regions: int = 3             # CH: 5


# --------------------------------------------------------------------- schema

def tpcc_schemas() -> list[Schema]:
    """The nine TPC-C tables plus CH-benCHmark's three additions."""
    I = DataType.INT64
    F = DataType.FLOAT64
    S = DataType.STRING
    return [
        Schema("warehouse", [
            Column("w_id", I), Column("w_name", S), Column("w_state", S),
            Column("w_tax", F), Column("w_ytd", F),
        ], ["w_id"]),
        Schema("district", [
            Column("d_w_id", I), Column("d_id", I), Column("d_name", S),
            Column("d_tax", F), Column("d_ytd", F), Column("d_next_o_id", I),
        ], ["d_w_id", "d_id"]),
        Schema("customer", [
            Column("c_w_id", I), Column("c_d_id", I), Column("c_id", I),
            Column("c_name", S), Column("c_state", S), Column("c_credit", S),
            Column("c_discount", F), Column("c_balance", F),
            Column("c_ytd_payment", F), Column("c_payment_cnt", I),
            Column("c_delivery_cnt", I), Column("c_nationkey", I),
        ], ["c_w_id", "c_d_id", "c_id"]),
        # History has no spec-mandated PK; keying by (customer, h_id)
        # lets placement-aware engines co-locate a customer's history
        # with the customer row (h_id alone stays unique).
        Schema("history", [
            Column("h_id", I), Column("h_c_w_id", I), Column("h_c_d_id", I),
            Column("h_c_id", I), Column("h_date", I), Column("h_amount", F),
        ], ["h_c_w_id", "h_c_d_id", "h_c_id", "h_id"]),
        Schema("orders", [
            Column("o_w_id", I), Column("o_d_id", I), Column("o_id", I),
            Column("o_c_id", I), Column("o_entry_d", I),
            Column("o_carrier_id", I, nullable=True), Column("o_ol_cnt", I),
            Column("o_all_local", I),
        ], ["o_w_id", "o_d_id", "o_id"]),
        Schema("new_order", [
            Column("no_w_id", I), Column("no_d_id", I), Column("no_o_id", I),
        ], ["no_w_id", "no_d_id", "no_o_id"]),
        Schema("order_line", [
            Column("ol_w_id", I), Column("ol_d_id", I), Column("ol_o_id", I),
            Column("ol_number", I), Column("ol_i_id", I),
            Column("ol_supply_w_id", I), Column("ol_delivery_d", I, nullable=True),
            Column("ol_quantity", I), Column("ol_amount", F),
        ], ["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"]),
        Schema("item", [
            Column("i_id", I), Column("i_im_id", I), Column("i_name", S),
            Column("i_price", F), Column("i_data", S),
        ], ["i_id"]),
        Schema("stock", [
            Column("s_w_id", I), Column("s_i_id", I), Column("s_quantity", I),
            Column("s_ytd", F), Column("s_order_cnt", I),
            Column("s_remote_cnt", I), Column("s_suppkey", I),
            Column("s_dist", S),
        ], ["s_w_id", "s_i_id"]),
        # CH-benCHmark additions:
        Schema("supplier", [
            Column("su_suppkey", I), Column("su_name", S),
            Column("su_nationkey", I), Column("su_acctbal", F),
        ], ["su_suppkey"]),
        Schema("nation", [
            Column("n_nationkey", I), Column("n_name", S),
            Column("n_regionkey", I),
        ], ["n_nationkey"]),
        Schema("region", [
            Column("r_regionkey", I), Column("r_name", S),
        ], ["r_regionkey"]),
    ]


# --------------------------------------------------------------------- loader


@dataclass
class TpccLoader:
    """Deterministic initial population per TPC-C §4.3 (scaled)."""

    scale: TpccScale = field(default_factory=TpccScale)
    seed: int = 42

    def load(self, engine: HTAPEngine, create_tables: bool = True) -> None:
        rng = make_rng(self.seed)
        s = self.scale
        if create_tables:
            for schema in tpcc_schemas():
                engine.create_table(schema)
        engine.bulk_load("region", [
            (r, f"region{r}") for r in range(s.regions)
        ])
        engine.bulk_load("nation", [
            (n, f"nation{n}", n % s.regions) for n in range(s.nations)
        ])
        engine.bulk_load("supplier", [
            (su, f"supplier{su}", su % s.nations, round(rng.uniform(-999, 9999), 2))
            for su in range(s.suppliers)
        ])
        engine.bulk_load("item", [
            (
                i,
                rng.randrange(1, 10_000),
                random_string(rng, 6, 14),
                round(rng.uniform(1.0, 100.0), 2),
                "PROMO" if rng.random() < 0.1 else random_string(rng, 6, 10),
            )
            for i in range(1, s.items + 1)
        ])
        for w in range(1, s.warehouses + 1):
            engine.bulk_load("warehouse", [(
                w, f"wh{w}", random_string(rng, 2, 2).upper(),
                round(rng.uniform(0.0, 0.2), 4), 300_000.0,
            )])
            engine.bulk_load("stock", [
                (
                    w, i, rng.randrange(10, 101), 0.0, 0, 0,
                    ((w * i) % s.suppliers),
                    random_string(rng, 12, 24),
                )
                for i in range(1, s.items + 1)
            ])
            for d in range(1, s.districts + 1):
                engine.bulk_load("district", [(
                    w, d, f"dist{d}", round(rng.uniform(0.0, 0.2), 4),
                    30_000.0, s.initial_orders + 1,
                )])
                engine.bulk_load("customer", [
                    (
                        w, d, c,
                        f"cust{w}_{d}_{c}",
                        random_string(rng, 2, 2).upper(),
                        "BC" if rng.random() < 0.1 else "GC",
                        round(rng.uniform(0.0, 0.5), 4),
                        -10.0, 10.0, 1, 0,
                        rng.randrange(s.nations),
                    )
                    for c in range(1, s.customers + 1)
                ])
                self._load_initial_orders(engine, rng, w, d)

    def _load_initial_orders(self, engine, rng, w: int, d: int) -> None:
        s = self.scale
        orders = []
        new_orders = []
        lines = []
        day = 1
        for o in range(1, s.initial_orders + 1):
            c = rng.randrange(1, s.customers + 1)
            ol_cnt = rng.randrange(5, 16)
            delivered = o <= int(s.initial_orders * 0.7)
            orders.append((
                w, d, o, c, day, rng.randrange(1, 11) if delivered else None,
                ol_cnt, 1,
            ))
            if not delivered:
                new_orders.append((w, d, o))
            for n in range(1, ol_cnt + 1):
                i_id = rng.randrange(1, s.items + 1)
                lines.append((
                    w, d, o, n, i_id, w,
                    day if delivered else None,
                    rng.randrange(1, 11),
                    0.0 if delivered else round(rng.uniform(0.01, 9999.99), 2),
                ))
            day += 1
        engine.bulk_load("orders", orders)
        engine.bulk_load("new_order", new_orders)
        engine.bulk_load("order_line", lines)


# --------------------------------------------------------------------- txns


@dataclass
class TxnCounters:
    new_order: int = 0
    payment: int = 0
    order_status: int = 0
    delivery: int = 0
    stock_level: int = 0
    credit_check: int = 0
    rollbacks: int = 0
    aborts: int = 0

    @property
    def total(self) -> int:
        return (
            self.new_order + self.payment + self.order_status
            + self.delivery + self.stock_level + self.credit_check
        )


class TpccWorkload:
    """Drives the five TPC-C transactions against any engine session.

    The standard mix: 45% NewOrder, 43% Payment, 4% each for
    OrderStatus, Delivery, StockLevel.
    """

    MIX = (
        ("new_order", 0.45),
        ("payment", 0.43),
        ("order_status", 0.04),
        ("delivery", 0.04),
        ("stock_level", 0.04),
    )

    def __init__(
        self,
        engine: HTAPEngine,
        scale: TpccScale,
        seed: int = 7,
        item_skew: float | None = None,
        hybrid_fraction: float = 0.0,
    ):
        """Standard TPC-C, plus the §2.4 benchmark-suite extensions:

        ``item_skew``: Zipf theta for item popularity — addresses the
        paper's critique that TPC-H-style uniformity "poses little
        challenge"; hot items concentrate contention and heat.

        ``hybrid_fraction``: probability of drawing a *hybrid
        transaction* (CreditCheck) that runs an analytical aggregation
        inside an OLTP transaction — the Gartner "HTAP transaction
        could contain analytical operations" feature the paper notes
        no existing benchmark covers.
        """
        self.engine = engine
        self.scale = scale
        self.rng = make_rng(seed)
        self.counters = TxnCounters()
        self.hybrid_fraction = hybrid_fraction
        self._zipf = (
            ZipfGenerator(scale.items, item_skew, seed=seed ^ 0xA5)
            if item_skew is not None
            else None
        )
        # The history-id allocator is engine-scoped so several workload
        # instances driving one engine never collide on history keys.
        self._day = 1_000

    def _take_history_id(self) -> int:
        next_id = getattr(self.engine, "_tpcc_next_history_id", None)
        if next_id is None:
            # Cold allocator (fresh or *recovered* engine): resume past
            # whatever the table already holds, like real id recovery.
            top = self.engine.query("SELECT MAX(h_id) FROM history").rows[0][0]
            next_id = 1_000_000 if top is None else int(top) + 1
        self.engine._tpcc_next_history_id = next_id + 1
        return next_id

    # --------------------------------------------------------------- mix

    def run_one(self) -> str:
        """Execute one transaction drawn from the (possibly extended) mix."""
        if self.hybrid_fraction and self.rng.random() < self.hybrid_fraction:
            self.run_named("credit_check")
            return "credit_check"
        u = self.rng.random()
        acc = 0.0
        for name, weight in self.MIX:
            acc += weight
            if u < acc:
                self.run_named(name)
                return name
        self.run_named("stock_level")
        return "stock_level"

    def run_named(self, name: str) -> None:
        fn = getattr(self, f"txn_{name}")
        try:
            fn()
        except TransactionAborted:
            self.counters.aborts += 1

    def run_many(self, n: int) -> TxnCounters:
        for _i in range(n):
            self.run_one()
        return self.counters

    # --------------------------------------------------------------- helpers

    def _pick_wd(self) -> tuple[int, int]:
        w = self.rng.randrange(1, self.scale.warehouses + 1)
        d = self.rng.randrange(1, self.scale.districts + 1)
        return w, d

    def _pick_customer(self) -> int:
        return nurand(self.rng, 1023, 1, self.scale.customers)

    def _pick_item(self) -> int:
        if self._zipf is not None:
            return 1 + self._zipf.draw()
        return nurand(self.rng, 8191, 1, self.scale.items)

    # --------------------------------------------------------------- NewOrder

    def txn_new_order(self) -> None:
        w, d = self._pick_wd()
        c = self._pick_customer()
        ol_cnt = self.rng.randrange(5, 16)
        rollback = self.rng.random() < 0.01  # spec: 1% unused item aborts
        with self.engine.session() as s:
            district = s.read("district", (w, d))
            assert district is not None
            next_o_id = district[5]
            s.update("district", (*district[:5], next_o_id + 1))
            self._day += 1
            s.insert("orders", (w, d, next_o_id, c, self._day, None, ol_cnt, 1))
            s.insert("new_order", (w, d, next_o_id))
            total = 0.0
            for number in range(1, ol_cnt + 1):
                i_id = self._pick_item()
                item = s.read("item", i_id)
                if item is None or (rollback and number == ol_cnt):
                    self.counters.rollbacks += 1
                    s.abort()
                    return
                stock = s.read("stock", (w, i_id))
                qty = self.rng.randrange(1, 11)
                s_quantity = stock[2] - qty
                if s_quantity < 10:
                    s_quantity += 91
                s.update("stock", (
                    stock[0], stock[1], s_quantity, stock[3] + qty,
                    stock[4] + 1, stock[5], stock[6], stock[7],
                ))
                amount = round(qty * item[3], 2)
                total += amount
                s.insert("order_line", (
                    w, d, next_o_id, number, i_id, w, None, qty, amount,
                ))
        self.counters.new_order += 1

    # --------------------------------------------------------------- Payment

    def txn_payment(self) -> None:
        w, d = self._pick_wd()
        c = self._pick_customer()
        amount = round(self.rng.uniform(1.0, 5000.0), 2)
        with self.engine.session() as s:
            warehouse = s.read("warehouse", w)
            s.update("warehouse", (*warehouse[:4], warehouse[4] + amount))
            district = s.read("district", (w, d))
            s.update("district", (*district[:4], district[4] + amount, *district[5:]))
            customer = s.read("customer", (w, d, c))
            s.update("customer", (
                *customer[:7],
                customer[7] - amount,
                customer[8] + amount,
                customer[9] + 1,
                *customer[10:],
            ))
            self._day += 1
            s.insert("history", (
                self._take_history_id(), w, d, c, self._day, amount,
            ))
        self.counters.payment += 1

    # --------------------------------------------------------------- OrderStatus

    def txn_order_status(self) -> None:
        w, d = self._pick_wd()
        c = self._pick_customer()
        with self.engine.session() as s:
            customer = s.read("customer", (w, d, c))
            assert customer is not None
            district = s.read("district", (w, d))
            # Walk back from the newest order id to this customer's last.
            for o_id in range(district[5] - 1, max(0, district[5] - 40), -1):
                order = s.read("orders", (w, d, o_id))
                if order is not None and order[3] == c:
                    for number in range(1, order[6] + 1):
                        s.read("order_line", (w, d, o_id, number))
                    break
            s.abort()  # read-only
        self.counters.order_status += 1

    # --------------------------------------------------------------- Delivery

    def txn_delivery(self) -> None:
        w = self.rng.randrange(1, self.scale.warehouses + 1)
        carrier = self.rng.randrange(1, 11)
        with self.engine.session() as s:
            for d in range(1, self.scale.districts + 1):
                district = s.read("district", (w, d))
                oldest = None
                for o_id in range(1, district[5]):
                    if s.read("new_order", (w, d, o_id)) is not None:
                        oldest = o_id
                        break
                if oldest is None:
                    continue
                s.delete("new_order", (w, d, oldest))
                order = s.read("orders", (w, d, oldest))
                s.update("orders", (*order[:5], carrier, *order[6:]))
                self._day += 1
                total = 0.0
                for number in range(1, order[6] + 1):
                    line = s.read("order_line", (w, d, oldest, number))
                    if line is None:
                        continue
                    total += line[8]
                    s.update("order_line", (*line[:6], self._day, *line[7:]))
                customer = s.read("customer", (w, d, order[3]))
                s.update("customer", (
                    *customer[:7],
                    customer[7] + total,
                    *customer[8:10],
                    customer[10] + 1,
                    *customer[11:],
                ))
        self.counters.delivery += 1

    # --------------------------------------------------------------- StockLevel

    def txn_stock_level(self) -> None:
        w, d = self._pick_wd()
        threshold = self.rng.randrange(10, 21)
        with self.engine.session() as s:
            district = s.read("district", (w, d))
            next_o_id = district[5]
            seen: set[int] = set()
            for o_id in range(max(1, next_o_id - 20), next_o_id):
                order = s.read("orders", (w, d, o_id))
                if order is None:
                    continue
                for number in range(1, order[6] + 1):
                    line = s.read("order_line", (w, d, o_id, number))
                    if line is not None:
                        seen.add(line[4])
            low = 0
            for i_id in sorted(seen):
                stock = s.read("stock", (w, i_id))
                if stock is not None and stock[2] < threshold:
                    low += 1
            s.abort()  # read-only
        self.counters.stock_level += 1

    # ------------------------------------------------------- CreditCheck (hybrid)

    def txn_credit_check(self) -> None:
        """A *hybrid transaction*: analytical aggregation inside OLTP.

        Reads the customer's recent order history, aggregates spend
        (the analytical operation), and — in the same transaction —
        downgrades the customer's credit if spend exceeds a limit.
        This is the §2.4 "insert analytical operations to TPC-C"
        extension the paper calls for.
        """
        w, d = self._pick_wd()
        c = self._pick_customer()
        limit = 40_000.0
        with self.engine.session() as s:
            district = s.read("district", (w, d))
            spend = 0.0
            orders_seen = 0
            for o_id in range(district[5] - 1, 0, -1):
                order = s.read("orders", (w, d, o_id))
                if order is None or order[3] != c:
                    continue
                orders_seen += 1
                for number in range(1, order[6] + 1):
                    line = s.read("order_line", (w, d, o_id, number))
                    if line is not None:
                        spend += line[8]
                if orders_seen >= 10:
                    break
            customer = s.read("customer", (w, d, c))
            new_credit = "BC" if spend > limit else customer[5]
            if new_credit != customer[5]:
                s.update(
                    "customer",
                    (*customer[:5], new_credit, *customer[6:]),
                )
        self.counters.credit_check += 1
