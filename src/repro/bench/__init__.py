"""Benchmarks: TPC-C, CH-benCHmark, HTAPBench, ADAPT & HAP micro-benches."""

from .adapt import AdaptCell, adapt_schema, build_fixture, run_adapt
from .chbenchmark import (
    CH_QUERIES,
    QUERY_IDS,
    ChBenchmarkDriver,
    ChQuery,
    ChRunResult,
    get_query,
)
from .cluster_scaleout import (
    ClusterScaleoutConfig,
    ClusterScaleoutDriver,
    ScaleoutArm,
    ScaleoutResult,
    SplitCheck,
)
from .frontdoor import (
    PREPARED_STATEMENTS,
    FrontDoorBenchConfig,
    FrontDoorBenchDriver,
    FrontDoorBenchResult,
)
from .hap import HapCell, hap_schema, run_hap_cell, run_hap_grid
from .htapbench import HTAPBenchDriver, HtapBenchResult, HtapBenchStep
from .metrics import (
    HtapRunMetrics,
    degradation,
    isolation_score,
    per_hour,
    per_minute,
    per_second,
    qphpw,
    rank_label,
)
from .tpcc import TpccLoader, TpccScale, TpccWorkload, TxnCounters, tpcc_schemas
from .workload import (
    MixedRunConfig,
    MixedWorkloadRunner,
    ScheduledRunConfig,
    ScheduledRunResult,
    ScheduledWorkloadRunner,
)

__all__ = [
    "AdaptCell",
    "CH_QUERIES",
    "ChBenchmarkDriver",
    "ChQuery",
    "ChRunResult",
    "ClusterScaleoutConfig",
    "ClusterScaleoutDriver",
    "FrontDoorBenchConfig",
    "FrontDoorBenchDriver",
    "FrontDoorBenchResult",
    "HTAPBenchDriver",
    "HapCell",
    "HtapBenchResult",
    "HtapBenchStep",
    "HtapRunMetrics",
    "MixedRunConfig",
    "MixedWorkloadRunner",
    "PREPARED_STATEMENTS",
    "QUERY_IDS",
    "ScaleoutArm",
    "ScaleoutResult",
    "ScheduledRunConfig",
    "ScheduledRunResult",
    "ScheduledWorkloadRunner",
    "SplitCheck",
    "TpccLoader",
    "TpccScale",
    "TpccWorkload",
    "TxnCounters",
    "adapt_schema",
    "build_fixture",
    "degradation",
    "get_query",
    "hap_schema",
    "isolation_score",
    "per_hour",
    "per_minute",
    "per_second",
    "qphpw",
    "rank_label",
    "run_adapt",
    "run_hap_cell",
    "run_hap_grid",
    "tpcc_schemas",
]
