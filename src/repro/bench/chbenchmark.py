"""CH-benCHmark: TPC-H-style analytical queries over the TPC-C schema.

The mixed-workload benchmark of Cole et al. (2011) that the survey
presents as the standard end-to-end HTAP benchmark: TPC-C transactions
provide the write stream, and a TPC-H-derived query suite runs against
the same (live) data.  Twelve representative queries are implemented
against the testbed's SQL subset; where the original uses features we
deliberately left out (CASE, EXISTS, LIKE, non-equi join predicates),
the adaptation is noted per query and preserves the query's shape
(same tables, same join graph, same aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..common.metrics import LatencyRecorder
from ..engines.base import HTAPEngine
from ..query.ast import QueryResult


@dataclass(frozen=True)
class ChQuery:
    query_id: str
    description: str
    sql: str
    adaptation: str = ""


#: Time constants aligned with TpccLoader/TpccWorkload day counters.
_EARLY_DAY = 5
_MID_DAY = 10

CH_QUERIES: list[ChQuery] = [
    ChQuery(
        "Q1",
        "pricing summary per order-line number over delivered lines",
        f"""
        SELECT ol_number, SUM(ol_quantity) AS sum_qty, SUM(ol_amount) AS sum_amount,
               AVG(ol_quantity) AS avg_qty, AVG(ol_amount) AS avg_amount, COUNT(*) AS count_order
        FROM order_line
        WHERE ol_delivery_d > {_EARLY_DAY}
        GROUP BY ol_number ORDER BY ol_number
        """,
    ),
    ChQuery(
        "Q3",
        "unshipped-order revenue for good-credit customers",
        """
        SELECT ol_o_id, SUM(ol_amount) AS revenue
        FROM customer JOIN orders ON o_c_id = c_id
                      JOIN order_line ON ol_o_id = o_id
        WHERE c_w_id = o_w_id AND c_d_id = o_d_id
          AND ol_w_id = o_w_id AND ol_d_id = o_d_id
          AND c_credit = 'GC'
        GROUP BY ol_o_id ORDER BY revenue DESC LIMIT 10
        """,
        adaptation="credit filter replaces c_state range; no o_entry_d cut",
    ),
    ChQuery(
        "Q4",
        "order-priority checking: orders per line count in a date range",
        f"""
        SELECT o_ol_cnt, COUNT(*) AS order_count
        FROM orders
        WHERE o_entry_d BETWEEN 1 AND {_MID_DAY * 10}
        GROUP BY o_ol_cnt ORDER BY o_ol_cnt
        """,
        adaptation="EXISTS(order_line ...) dropped: every order has lines",
    ),
    ChQuery(
        "Q5",
        "local supplier volume per nation within one region",
        """
        SELECT n_name, SUM(ol_amount) AS revenue
        FROM customer JOIN orders ON o_c_id = c_id
                      JOIN order_line ON ol_o_id = o_id
                      JOIN stock ON s_i_id = ol_i_id
                      JOIN supplier ON su_suppkey = s_suppkey
                      JOIN nation ON n_nationkey = su_nationkey
                      JOIN region ON r_regionkey = n_regionkey
        WHERE c_w_id = o_w_id AND c_d_id = o_d_id
          AND ol_w_id = o_w_id AND ol_d_id = o_d_id
          AND s_w_id = ol_supply_w_id
          AND r_name = 'region0'
        GROUP BY n_name ORDER BY revenue DESC
        """,
        adaptation="CH's mod-derived supplier key is materialized as stock.s_suppkey",
    ),
    ChQuery(
        "Q6",
        "forecasted revenue change from small-quantity lines",
        f"""
        SELECT SUM(ol_amount) AS revenue
        FROM order_line
        WHERE ol_delivery_d >= {_EARLY_DAY} AND ol_quantity BETWEEN 1 AND 5
        """,
    ),
    ChQuery(
        "Q7",
        "volume shipped per supplier nation",
        """
        SELECT su_nationkey, SUM(ol_amount) AS volume
        FROM order_line JOIN stock ON s_i_id = ol_i_id
                        JOIN supplier ON su_suppkey = s_suppkey
        WHERE s_w_id = ol_supply_w_id
        GROUP BY su_nationkey ORDER BY volume DESC
        """,
        adaptation="nation-pair matrix reduced to supplier-nation totals",
    ),
    ChQuery(
        "Q12",
        "shipping-mode style split: delivered orders per line count",
        f"""
        SELECT o_ol_cnt, COUNT(*) AS delivered_orders
        FROM orders JOIN order_line ON ol_o_id = o_id
        WHERE o_w_id = ol_w_id AND o_d_id = ol_d_id
          AND ol_delivery_d >= {_EARLY_DAY} AND o_carrier_id >= 1
        GROUP BY o_ol_cnt ORDER BY o_ol_cnt
        """,
        adaptation="ol_delivery_d >= o_entry_d (non-equi) replaced by constants",
    ),
    ChQuery(
        "Q14a",
        "promotion revenue (numerator: PROMO items only)",
        """
        SELECT SUM(ol_amount) AS promo_revenue
        FROM order_line JOIN item ON i_id = ol_i_id
        WHERE i_data = 'PROMO' AND ol_amount > 0
        """,
        adaptation="CASE WHEN i_data LIKE 'PR%' folded into an equality filter",
    ),
    ChQuery(
        "Q14b",
        "promotion revenue (denominator: all items)",
        """
        SELECT SUM(ol_amount) AS total_revenue
        FROM order_line JOIN item ON i_id = ol_i_id
        WHERE ol_amount > 0
        """,
    ),
    ChQuery(
        "Q18",
        "large-volume customers by total spend",
        """
        SELECT c_w_id, c_d_id, c_id, SUM(ol_amount) AS spend
        FROM customer JOIN orders ON o_c_id = c_id
                      JOIN order_line ON ol_o_id = o_id
        WHERE c_w_id = o_w_id AND c_d_id = o_d_id
          AND ol_w_id = o_w_id AND ol_d_id = o_d_id
        GROUP BY c_w_id, c_d_id, c_id HAVING SUM(ol_amount) > 100.0
        ORDER BY spend DESC LIMIT 10
        """,
    ),
    ChQuery(
        "Q19",
        "discounted revenue for small-quantity, mid-priced items",
        """
        SELECT SUM(ol_amount) AS revenue
        FROM order_line JOIN item ON i_id = ol_i_id
        WHERE i_price BETWEEN 1 AND 50 AND ol_quantity BETWEEN 1 AND 7 AND ol_amount > 0
        """,
        adaptation="OR-of-brackets collapsed to one bracket",
    ),
    ChQuery(
        "Q22",
        "customer balance distribution per state",
        """
        SELECT c_state, COUNT(*) AS numcust, SUM(c_balance) AS totacctbal
        FROM customer
        WHERE c_balance > 0.0
        GROUP BY c_state ORDER BY c_state
        """,
        adaptation="phone-prefix filter replaced by state grouping",
    ),
]

QUERY_IDS = [q.query_id for q in CH_QUERIES]


def get_query(query_id: str) -> ChQuery:
    for q in CH_QUERIES:
        if q.query_id == query_id:
            return q
    raise KeyError(f"no CH query {query_id!r}")


@dataclass
class ChRunResult:
    results: dict[str, QueryResult] = field(default_factory=dict)
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    queries_run: int = 0

    def promo_ratio(self) -> float | None:
        """The Q14 metric assembled from its two halves."""
        a = self.results.get("Q14a")
        b = self.results.get("Q14b")
        if not a or not b:
            return None
        promo = a.rows[0][0] or 0.0
        total = b.rows[0][0] or 0.0
        return 100.0 * promo / total if total else None


class ChBenchmarkDriver:
    """Runs the CH query suite against an engine, recording latency."""

    def __init__(self, engine: HTAPEngine, on_query: Callable[[str], None] | None = None):
        self.engine = engine
        self._on_query = on_query

    def run_query(self, query_id: str) -> QueryResult:
        ch = get_query(query_id)
        if self._on_query is not None:
            self._on_query(query_id)
        return self.engine.query(ch.sql)

    def run_suite(self, query_ids: list[str] | None = None) -> ChRunResult:
        out = ChRunResult()
        for query_id in query_ids or QUERY_IDS:
            before = self.engine.cost.now_us()
            result = self.run_query(query_id)
            out.latency.record(self.engine.cost.now_us() - before)
            out.results[query_id] = result
            out.queries_run += 1
        return out
