"""Workload runners: OLTP-only, OLAP-only, mixed, and scheduler-driven.

The measurement methodology behind every architecture bench:

* *latency* is simulated-clock delta per operation;
* *throughput* is ops / busy-ledger makespan over the nodes that serve
  the workload class (so scale-out and interference both show up);
* *freshness* is sampled at every analytical query;
* *isolation* compares a workload's throughput alone vs co-running
  (the §2.3(2) "performance degradation paid" practice).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engines.base import HTAPEngine
from ..scheduler.resources import (
    ExecutionMode,
    RoundMetrics,
    Scheduler,
    ScheduleTrace,
)
from .chbenchmark import QUERY_IDS, ChBenchmarkDriver
from .metrics import HtapRunMetrics
from .tpcc import TpccScale, TpccWorkload


@dataclass
class MixedRunConfig:
    n_transactions: int = 200
    n_queries: int = 12
    sync_every_txns: int = 50
    query_ids: list[str] = field(default_factory=lambda: list(QUERY_IDS))
    seed: int = 7


class MixedWorkloadRunner:
    """Interleaves TPC-C transactions with CH queries on one engine."""

    def __init__(self, engine: HTAPEngine, scale: TpccScale, config: MixedRunConfig | None = None):
        self.engine = engine
        self.scale = scale
        self.config = config or MixedRunConfig()
        self.workload = TpccWorkload(engine, scale, seed=self.config.seed)
        self.driver = ChBenchmarkDriver(engine)
        # Warm start: fold the initial load into the columnar side so the
        # first measured window reflects steady state, not load shape.
        engine.force_sync() if hasattr(engine, "force_sync") else engine.sync()

    # --------------------------------------------------------------- pure

    def run_oltp_only(self, n: int | None = None) -> HtapRunMetrics:
        n = n if n is not None else self.config.n_transactions
        engine = self.engine
        before = {node: engine.ledger.busy(node) for node in engine.tp_nodes()}
        new_orders_before = self.workload.counters.new_order
        synced = 0
        for i in range(n):
            self.workload.run_one()
            if (i + 1) % self.config.sync_every_txns == 0:
                engine.sync()
                synced += 1
        makespan = max(
            engine.ledger.busy(node) - before[node] for node in engine.tp_nodes()
        )
        return HtapRunMetrics(
            label=f"{engine.info.name}/oltp-only",
            tp_ops=n,
            tp_makespan_us=makespan,
            new_orders=self.workload.counters.new_order - new_orders_before,
        )

    def run_olap_only(self, n: int | None = None) -> HtapRunMetrics:
        n = n if n is not None else self.config.n_queries
        engine = self.engine
        before = {node: engine.ledger.busy(node) for node in engine.ap_nodes()}
        metrics = HtapRunMetrics(label=f"{engine.info.name}/olap-only")
        ids = self.config.query_ids
        for i in range(n):
            self.driver.run_query(ids[i % len(ids)])
            metrics.freshness_lags.append(engine.freshness_lag())
            metrics.ap_ops += 1
        metrics.ap_makespan_us = max(
            engine.ledger.busy(node) - before[node] for node in engine.ap_nodes()
        )
        return metrics

    # --------------------------------------------------------------- mixed

    def run_mixed(
        self,
        n_transactions: int | None = None,
        n_queries: int | None = None,
    ) -> HtapRunMetrics:
        """Interleave queries evenly through the transaction stream."""
        n_txn = n_transactions if n_transactions is not None else self.config.n_transactions
        n_q = n_queries if n_queries is not None else self.config.n_queries
        engine = self.engine
        nodes = set(engine.tp_nodes()) | set(engine.ap_nodes())
        before = {node: engine.ledger.busy(node) for node in nodes}
        new_orders_before = self.workload.counters.new_order
        metrics = HtapRunMetrics(label=f"{engine.info.name}/mixed")
        ids = self.config.query_ids
        query_every = max(1, n_txn // max(n_q, 1))
        q_done = 0
        for i in range(n_txn):
            self.workload.run_one()
            metrics.tp_ops += 1
            if (i + 1) % self.config.sync_every_txns == 0:
                engine.sync()
            if (i + 1) % query_every == 0 and q_done < n_q:
                self.driver.run_query(ids[q_done % len(ids)])
                metrics.freshness_lags.append(engine.freshness_lag())
                metrics.ap_ops += 1
                q_done += 1
        while q_done < n_q:
            self.driver.run_query(ids[q_done % len(ids)])
            metrics.freshness_lags.append(engine.freshness_lag())
            metrics.ap_ops += 1
            q_done += 1
        metrics.tp_makespan_us = max(
            engine.ledger.busy(node) - before.get(node, 0.0)
            for node in engine.tp_nodes()
        )
        metrics.ap_makespan_us = max(
            engine.ledger.busy(node) - before.get(node, 0.0)
            for node in engine.ap_nodes()
        )
        metrics.new_orders = self.workload.counters.new_order - new_orders_before
        return metrics


# ------------------------------------------------------------------ scheduled


@dataclass
class ScheduledRunConfig:
    rounds: int = 20
    round_slot_us: float = 4_000.0      # simulated budget per slot per round
    tp_arrivals_per_round: int = 40
    ap_arrivals_per_round: int = 2
    seed: int = 11


@dataclass
class ScheduledRunResult:
    trace: ScheduleTrace
    tp_completed: int = 0
    ap_completed: int = 0
    mean_lag: float = 0.0

    def combined_score(self, lag_target: float) -> float:
        """The adaptive objective: throughputs minus lag penalty."""
        lag_penalty = max(0.0, self.mean_lag / max(lag_target, 1.0) - 1.0)
        return self.tp_completed / 100.0 + self.ap_completed - lag_penalty


class ScheduledWorkloadRunner:
    """Drives an engine under a scheduler's allocations, in rounds.

    Each round the scheduler splits CPU slots between OLTP and OLAP;
    queued arrivals consume their side's simulated budget until it runs
    out (unfinished work stays in the backlog).  The scheduler also
    picks the execution mode (isolated/shared) and whether to sync.
    """

    def __init__(
        self,
        engine: HTAPEngine,
        scheduler: Scheduler,
        scale: TpccScale,
        config: ScheduledRunConfig | None = None,
    ):
        self.engine = engine
        self.scheduler = scheduler
        self.config = config or ScheduledRunConfig()
        self.workload = TpccWorkload(engine, scale, seed=self.config.seed)
        self.driver = ChBenchmarkDriver(engine)

    def run(self) -> ScheduledRunResult:
        cfg = self.config
        engine = self.engine
        trace = ScheduleTrace()
        tp_queue = 0
        ap_queue = 0
        last: RoundMetrics | None = None
        total_tp = 0
        total_ap = 0
        lags: list[float] = []
        q_index = 0
        for _round in range(cfg.rounds):
            alloc = self.scheduler.allocate(last)
            engine.read_fresh = alloc.mode is ExecutionMode.SHARED
            tp_queue += cfg.tp_arrivals_per_round
            ap_queue += cfg.ap_arrivals_per_round
            if alloc.run_sync:
                engine.force_sync()
            # OLTP side: consume the budget.
            tp_budget = alloc.oltp_slots * cfg.round_slot_us
            tp_done = 0
            tp_busy = 0.0
            while tp_queue > 0 and tp_busy < tp_budget:
                before = engine.cost.now_us()
                self.workload.run_one()
                tp_busy += engine.cost.now_us() - before
                tp_queue -= 1
                tp_done += 1
            # OLAP side.
            ap_budget = alloc.olap_slots * cfg.round_slot_us
            ap_done = 0
            ap_busy = 0.0
            while ap_queue > 0 and ap_busy < ap_budget:
                before = engine.cost.now_us()
                self.driver.run_query(QUERY_IDS[q_index % len(QUERY_IDS)])
                ap_busy += engine.cost.now_us() - before
                q_index += 1
                ap_queue -= 1
                ap_done += 1
            lag = engine.image_freshness_lag()
            lags.append(lag)
            last = RoundMetrics(
                oltp_completed=tp_done,
                olap_completed=ap_done,
                oltp_backlog=tp_queue,
                olap_backlog=ap_queue,
                freshness_lag=lag,
                oltp_busy_us=tp_busy,
                olap_busy_us=ap_busy,
                sync_ran=alloc.run_sync,
            )
            trace.record(alloc, last)
            total_tp += tp_done
            total_ap += ap_done
        engine.read_fresh = True
        return ScheduledRunResult(
            trace=trace,
            tp_completed=total_tp,
            ap_completed=total_ap,
            mean_lag=sum(lags) / len(lags) if lags else 0.0,
        )
