"""The front-door bench: 1k+ sessions of mixed CH-benCHmark/TPC-C.

Every other bench in this package calls the engine directly; this one
drives it the way a deployment would — thousands of client sessions
multiplexed through :class:`~repro.session.FrontDoor`, OLTP sessions
running TPC-C transactions and OLAP sessions re-executing a fixed set
of *parameterized* CH-flavored statements through prepared handles.

The driver is deterministic and runs entirely on simulated time
(htaplint HTL001 applies here: ``benchmarks/test_perf_frontdoor.py``
owns the wall clock).  The one knob the perf gate flips is
``use_plan_cache``: with it off, every analytical execution re-parses
and re-optimizes its statement — the pre-PR front door.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..common.rng import make_rng
from ..engines.base import HTAPEngine
from ..scheduler.workload_driven import WorkloadDrivenScheduler
from ..session import AdmissionPolicy, FrontDoor, FrontDoorConfig, FrontDoorReport
from .tpcc import TpccLoader, TpccScale, TpccWorkload

#: Parameterized CH-flavored statements over the TPC-C schema.  Each
#: entry is (name, weight, sql, param factory drawing from the bench
#: rng).  Point/one-district shapes dominate deliberately (weights) and
#: parameters draw from hot-spot ranges, nurand-style: prepared-statement
#: traffic in practice is skewed point reads and small point joins,
#: which is the workload the plan cache exists for — execution is
#: cheap, so the parse/optimize work (join ordering included) the
#: cache removes is a large share of each call.
PREPARED_STATEMENTS: list[tuple[str, int, str, Callable]] = [
    (
        "customer_profile",
        3,
        "SELECT c_id, c_balance, c_credit, c_discount FROM customer "
        "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
        lambda rng, s: (
            1,
            rng.randrange(1, s.districts + 1),
            _hot(rng, s.customers),
        ),
    ),
    (
        "order_status",
        2,
        "SELECT o_c_id, o_entry_d, o_carrier_id, o_ol_cnt FROM orders "
        "WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
        lambda rng, s: (
            1,
            rng.randrange(1, s.districts + 1),
            _hot(rng, s.initial_orders),
        ),
    ),
    (
        "customer_orders",
        3,
        "SELECT c_id, c_balance, o_id, o_entry_d FROM customer "
        "JOIN orders ON o_c_id = c_id "
        "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
        lambda rng, s: (
            1,
            rng.randrange(1, s.districts + 1),
            _hot(rng, s.customers),
        ),
    ),
    (
        "order_lines_join",
        2,
        "SELECT o_id, o_entry_d, ol_number, ol_amount FROM orders "
        "JOIN order_line ON ol_o_id = o_id "
        "WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
        lambda rng, s: (
            1,
            rng.randrange(1, s.districts + 1),
            _hot(rng, s.initial_orders),
        ),
    ),
    (
        "order_line_item",
        2,
        "SELECT ol_i_id, ol_quantity, ol_amount FROM order_line "
        "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ? AND ol_number = ?",
        lambda rng, s: (
            1,
            rng.randrange(1, s.districts + 1),
            _hot(rng, s.initial_orders),
            rng.randrange(1, 4),
        ),
    ),
    (
        "item_price",
        3,
        "SELECT i_name, i_price FROM item WHERE i_id = ?",
        lambda rng, s: (_hot(rng, s.items),),
    ),
    (
        "stock_pressure",
        1,
        "SELECT COUNT(*) AS low_stock FROM stock "
        "WHERE s_w_id = ? AND s_quantity < ?",
        lambda rng, s: (1, rng.randrange(10, 25)),
    ),
    (
        "order_priority",
        1,
        "SELECT o_ol_cnt, COUNT(*) AS order_count FROM orders "
        "WHERE o_entry_d BETWEEN ? AND ? "
        "GROUP BY o_ol_cnt ORDER BY o_ol_cnt",
        lambda rng, s: (1, rng.randrange(50, 150)),
    ),
    (
        "district_pricing",
        1,
        "SELECT ol_number, SUM(ol_quantity) AS sum_qty, SUM(ol_amount) AS sum_amount "
        "FROM order_line WHERE ol_w_id = ? AND ol_d_id = ? AND ol_delivery_d > ? "
        "GROUP BY ol_number ORDER BY ol_number",
        lambda rng, s: (1, rng.randrange(1, s.districts + 1), rng.randrange(1, 10)),
    ),
]


def _hot(rng, n: int) -> int:
    """Hot-spot draw over 1..n: 75% of traffic hits the top quarter of
    the key space (nurand-flavored skew without the full formula)."""
    if rng.random() < 0.75:
        return rng.randrange(1, max(2, n // 4 + 1))
    return rng.randrange(1, n + 1)


#: Draw table expanded by weight, so one randrange picks a statement.
_STATEMENT_DRAWS: list[tuple[str, Callable]] = [
    (sql, make_params)
    for _name, weight, sql, make_params in PREPARED_STATEMENTS
    for _ in range(weight)
]


@dataclass(frozen=True)
class FrontDoorBenchConfig:
    """Scale knobs; defaults are the full 1k-session shape the perf
    gate measures (CI shrinks via environment, see the perf test)."""

    n_sessions: int = 1024
    #: One OLTP client per this many sessions: 1024 sessions -> 32 TPC-C
    #: writers driving invalidation pressure while analytics dominates
    #: the session count (the CH-benCHmark shape at the session tier).
    oltp_every: int = 32
    rounds: int = 12
    total_slots: int = 8
    min_slots: int = 3           # floor per class: admission scales with slots
    round_slot_us: float = 4_000.0
    #: Queue-depth tolerance per granted slot; 1k sessions need deeper
    #: queues than the AdmissionPolicy defaults (sized for tens).
    delay_depth_per_slot: int = 64
    shed_depth_per_slot: int = 256
    use_plan_cache: bool = True
    seed: int = 23
    scale: TpccScale = field(default_factory=TpccScale)


@dataclass
class FrontDoorBenchResult:
    config: FrontDoorBenchConfig
    report: FrontDoorReport
    submitted: int
    sim_makespan_us: float

    @property
    def completed(self) -> int:
        return sum(self.report.completed.values())

    @property
    def shed(self) -> int:
        return sum(self.report.shed.values())

    def sim_ops_per_s(self) -> float:
        if self.sim_makespan_us <= 0:
            return 0.0
        return self.completed / (self.sim_makespan_us / 1e6)


class FrontDoorBenchDriver:
    """Loads TPC-C, opens ``n_sessions`` clients, runs rounds."""

    def __init__(self, engine: HTAPEngine, config: FrontDoorBenchConfig | None = None):
        self.engine = engine
        self.config = config or FrontDoorBenchConfig()
        cfg = self.config
        TpccLoader(cfg.scale, seed=cfg.seed).load(engine)
        engine.sync()
        self.workload = TpccWorkload(engine, cfg.scale, seed=cfg.seed)
        self.frontdoor = FrontDoor(
            engine,
            WorkloadDrivenScheduler(
                total_slots=cfg.total_slots, min_slots=cfg.min_slots
            ),
            FrontDoorConfig(
                round_slot_us=cfg.round_slot_us,
                use_plan_cache=cfg.use_plan_cache,
                policy=AdmissionPolicy(
                    delay_depth_per_slot=cfg.delay_depth_per_slot,
                    shed_depth_per_slot=cfg.shed_depth_per_slot,
                ),
            ),
        )
        self.rng = make_rng(cfg.seed ^ 0x5E55)
        self.sessions = [
            self.frontdoor.open_session(
                "oltp" if i % cfg.oltp_every == 0 else "olap"
            )
            for i in range(cfg.n_sessions)
        ]
        self.submitted = 0

    def submit_wave(self) -> None:
        """One submission per session: OLTP clients queue a TPC-C
        transaction, OLAP clients a parameterized prepared statement."""
        cfg = self.config
        for session in self.sessions:
            self.submitted += 1
            if session.workload_class == "oltp":
                session.submit(self.workload.run_one)
            else:
                sql, make_params = _STATEMENT_DRAWS[
                    self.rng.randrange(len(_STATEMENT_DRAWS))
                ]
                session.submit_query(sql, make_params(self.rng, cfg.scale))

    def run(self, on_round: Callable[[int], None] | None = None) -> FrontDoorBenchResult:
        """Submit a wave then schedule a round, ``rounds`` times.

        ``on_round`` (if given) fires after each round — the perf
        harness uses it to wall-clock individual rounds without this
        module touching the wall clock itself.
        """
        start = self.engine.cost.now_us()
        for i in range(self.config.rounds):
            self.submit_wave()
            self.frontdoor.run_round()
            if on_round is not None:
                on_round(i)
        return FrontDoorBenchResult(
            config=self.config,
            report=self.frontdoor.report(),
            submitted=self.submitted,
            sim_makespan_us=self.engine.cost.now_us() - start,
        )
