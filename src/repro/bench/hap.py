"""The HAP micro-benchmark (Athanassoulis, Bøgh, Idreos — VLDB 2019).

The second micro-benchmark the survey names (§2.3): *optimal column
layout for hybrid workloads*.  HAP mixes point updates with range scans
over one column and asks how the physical layout (here: the encoding of
the sealed segments and how often deltas merge) should change as the
update fraction and the read pattern change.

The testbed version sweeps

* update fraction u in the operation mix,
* scan selectivity, and
* the segment encoding (plain / dictionary / RLE / bit-packed),

measuring total simulated time of the mixed sequence.  The expected
shape from the paper: compressed, scan-optimized layouts win read-heavy
mixes; as u grows, the merge/maintenance cost of the compressed layouts
erodes their advantage until plainer layouts win — a crossover in u.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.cost import CostModel
from ..common.predicate import Between
from ..common.rng import make_rng
from ..common.types import Column, DataType, Schema, rows_to_columns
from ..storage.column_store import ColumnStore
from ..storage.delta_store import InMemoryDeltaStore
from ..sync.delta_merge import InMemoryDeltaMerger


def hap_schema() -> Schema:
    return Schema(
        "hap",
        [
            Column("id", DataType.INT64),
            Column("val", DataType.INT64),
            Column("grp", DataType.INT64),
        ],
        ["id"],
    )


@dataclass
class HapCell:
    encoding: str
    update_fraction: float
    selectivity: float
    total_us: float
    scan_us: float
    update_us: float
    merge_us: float
    memory_bytes: int


def run_hap_cell(
    encoding: str,
    update_fraction: float,
    selectivity: float,
    n_rows: int = 4_000,
    n_ops: int = 200,
    merge_threshold: int = 64,
    seed: int = 5,
) -> HapCell:
    """One (encoding, u, selectivity) cell of the HAP grid."""
    rng = make_rng(seed)
    schema = hap_schema()
    cost = CostModel()
    # grp is low-cardinality (RLE/dict-friendly); val is wide-range.
    rows = [(i, rng.randrange(0, 1_000_000), i % 8) for i in range(n_rows)]
    store = ColumnStore(schema, cost, forced_encoding=encoding)
    store.append_batch(
        rows_to_columns(schema, rows),
        [schema.key_of(r) for r in rows],
        commit_ts=1,
    )
    delta = InMemoryDeltaStore(schema, cost)
    merger = InMemoryDeltaMerger(delta, store, cost, threshold_rows=merge_threshold)
    scan_us = update_us = merge_us = 0.0
    ts = 1
    span = max(1, int(n_rows * selectivity))
    for _op in range(n_ops):
        if rng.random() < update_fraction:
            ts += 1
            key = rng.randrange(0, n_rows)
            before = cost.now_us()
            delta.record_update((key, rng.randrange(0, 1_000_000), key % 8), ts)
            maybe = merger.maybe_merge()
            after = cost.now_us()
            if maybe:
                merge_us += after - before
            else:
                update_us += after - before
        else:
            low = rng.randrange(0, n_rows - span + 1)
            predicate = Between("id", low, low + span - 1)
            before = cost.now_us()
            result = store.scan(["val"], predicate)
            # Scans must also consult the unmerged delta (HTAP reads
            # are fresh); charge its scan too.
            delta.effective_rows(ts, predicate)
            scan_us += cost.now_us() - before
            assert len(result) <= span
    return HapCell(
        encoding=encoding,
        update_fraction=update_fraction,
        selectivity=selectivity,
        total_us=scan_us + update_us + merge_us,
        scan_us=scan_us,
        update_us=update_us,
        merge_us=merge_us,
        memory_bytes=store.memory_bytes(),
    )


def run_hap_grid(
    encodings: tuple = ("plain", "dictionary", "rle", "bitpack"),
    update_fractions: tuple = (0.0, 0.2, 0.5, 0.8),
    selectivity: float = 0.1,
    **kwargs,
) -> list[HapCell]:
    cells = []
    for encoding in encodings:
        for u in update_fractions:
            cells.append(
                run_hap_cell(encoding, u, selectivity, **kwargs)
            )
    return cells
