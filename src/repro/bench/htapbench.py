"""HTAPBench driver (Coelho et al. 2017).

The survey contrasts HTAPBench with CH-benCHmark on three axes:

* *data generation* — same TPC-C generator, but the analytical stream
  is admitted only while OLTP holds a target rate;
* *execution rule* — a Client Balancer adds analytical workers one at a
  time and stops when the OLTP throughput drops below a tolerance of
  its baseline tpmC;
* *metric* — QpHpW: analytical queries per hour *per worker*, reported
  at the largest worker count that still preserved the OLTP target.

The driver reproduces that protocol on any engine: measure baseline
tpmC alone, then sweep analytical workers (modelled as proportionally
denser query interleave) until the degradation budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engines.base import HTAPEngine
from .chbenchmark import QUERY_IDS, ChBenchmarkDriver
from .metrics import per_hour, per_minute, qphpw
from .tpcc import TpccScale, TpccWorkload


@dataclass
class HtapBenchStep:
    workers: int
    tpmc: float
    qph: float
    qphpw: float
    tp_kept_fraction: float


@dataclass
class HtapBenchResult:
    baseline_tpmc: float
    tolerance: float
    steps: list[HtapBenchStep] = field(default_factory=list)

    @property
    def sustainable_workers(self) -> int:
        ok = [s.workers for s in self.steps if s.tp_kept_fraction >= 1 - self.tolerance]
        return max(ok, default=0)

    @property
    def final_qphpw(self) -> float:
        for step in reversed(self.steps):
            if step.tp_kept_fraction >= 1 - self.tolerance:
                return step.qphpw
        return 0.0


class HTAPBenchDriver:
    """Client-Balancer protocol over the shared TPC-C + CH workload."""

    def __init__(
        self,
        engine: HTAPEngine,
        scale: TpccScale,
        txns_per_step: int = 120,
        queries_per_worker: int = 4,
        tolerance: float = 0.20,
        seed: int = 13,
    ):
        self.engine = engine
        self.scale = scale
        self.txns_per_step = txns_per_step
        self.queries_per_worker = queries_per_worker
        self.tolerance = tolerance
        self.workload = TpccWorkload(engine, scale, seed=seed)
        self.driver = ChBenchmarkDriver(engine)

    def _run_step(self, workers: int) -> tuple[float, float, int]:
        """One step: txns_per_step transactions with workers' queries
        interleaved; returns (tp makespan, ap makespan, new orders)."""
        engine = self.engine
        tp_nodes = engine.tp_nodes()
        ap_nodes = engine.ap_nodes()
        all_nodes = set(tp_nodes) | set(ap_nodes)
        before = {n: engine.ledger.busy(n) for n in all_nodes}
        new_orders_before = self.workload.counters.new_order
        n_queries = workers * self.queries_per_worker
        query_every = max(1, self.txns_per_step // max(n_queries, 1))
        q = 0
        for i in range(self.txns_per_step):
            self.workload.run_one()
            if workers and (i + 1) % query_every == 0 and q < n_queries:
                self.driver.run_query(QUERY_IDS[q % len(QUERY_IDS)])
                q += 1
            if (i + 1) % 60 == 0:
                engine.sync()
        while q < n_queries:
            self.driver.run_query(QUERY_IDS[q % len(QUERY_IDS)])
            q += 1
        tp_makespan = max(engine.ledger.busy(n) - before[n] for n in tp_nodes)
        ap_makespan = max(engine.ledger.busy(n) - before[n] for n in ap_nodes)
        return tp_makespan, ap_makespan, self.workload.counters.new_order - new_orders_before

    def run(self, max_workers: int = 6) -> HtapBenchResult:
        # Baseline: OLTP alone.
        tp_makespan, _ap, new_orders = self._run_step(workers=0)
        baseline = per_minute(new_orders, tp_makespan)
        result = HtapBenchResult(baseline_tpmc=baseline, tolerance=self.tolerance)
        for workers in range(1, max_workers + 1):
            tp_makespan, ap_makespan, new_orders = self._run_step(workers)
            tpmc = per_minute(new_orders, tp_makespan)
            n_queries = workers * self.queries_per_worker
            step = HtapBenchStep(
                workers=workers,
                tpmc=tpmc,
                qph=per_hour(n_queries, ap_makespan),
                qphpw=qphpw(n_queries, ap_makespan, workers),
                tp_kept_fraction=tpmc / baseline if baseline else 0.0,
            )
            result.steps.append(step)
            if step.tp_kept_fraction < 1 - self.tolerance:
                break
        return result
