"""The ADAPT micro-benchmark (Arulraj, Pavlo, Menon — SIGMOD 2016).

One of the two HTAP micro-benchmarks the survey presents (§2.3).  ADAPT
stresses the row-vs-column layout decision with a single wide table and
two query families:

* **narrow scans** project one attribute over a selective range —
  column layouts win (read 1 of k columns);
* **wide scans** project most attributes — row layouts close the gap
  (full-tuple materialization dominates);
* **point lookups / updates** touch whole tuples by key — row layouts
  win outright.

The bench runs each operation against the same data through a forced
row path, a forced column path, and the cost-based hybrid, measuring
simulated time, and reports the crossover that motivated tile-based
hybrid storage in the original paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..common.cost import CostModel
from ..common.predicate import Between
from ..common.rng import make_rng
from ..common.types import Column, DataType, Schema, rows_to_columns
from ..query.access import AccessPath
from ..query.adapters import DualStoreTableAccess
from ..query.ast import Aggregate, AggFunc, ColumnRef, Query, SelectItem
from ..query.executor import Executor
from ..query.optimizer import Planner
from ..storage.column_store import ColumnStore
from ..storage.row_store import MVCCRowStore

N_ATTRIBUTES = 10


def adapt_schema(n_attributes: int = N_ATTRIBUTES) -> Schema:
    columns = [Column("id", DataType.INT64)]
    columns += [Column(f"a{i}", DataType.INT64) for i in range(n_attributes)]
    return Schema("adapt", columns, ["id"])


@dataclass
class AdaptFixture:
    """The populated dual-store table plus per-path planners."""

    cost: CostModel
    access: DualStoreTableAccess
    executor: Executor
    planners: dict[str, Planner]
    n_rows: int

    def run(self, path: str, query: Query) -> float:
        """Execute via the named path; returns simulated microseconds."""
        plan = self.planners[path].plan(query)
        before = self.cost.now_us()
        self.executor.execute(plan)
        return self.cost.now_us() - before


def build_fixture(
    n_rows: int = 5_000, seed: int = 21, n_attributes: int = N_ATTRIBUTES
) -> AdaptFixture:
    rng = make_rng(seed)
    schema = adapt_schema(n_attributes)
    cost = CostModel()
    rows = MVCCRowStore(schema, cost)
    data = []
    for i in range(n_rows):
        data.append((i, *(rng.randrange(0, 1_000) for _ in range(n_attributes))))
    for row in data:
        rows.install_insert(row, commit_ts=1)
    columns = ColumnStore(schema, cost)
    columns.append_batch(
        rows_to_columns(schema, data),
        [schema.key_of(r) for r in data],
        commit_ts=1,
    )
    access = DualStoreTableAccess(rows, columns, cost)
    catalog = {"adapt": access}
    planners = {
        "row": Planner(catalog, cost, force_path=AccessPath.ROW_SCAN),
        "index": Planner(catalog, cost, force_path=AccessPath.INDEX_LOOKUP),
        "column": Planner(catalog, cost, force_path=AccessPath.COLUMN_SCAN),
        "hybrid": Planner(catalog, cost),
    }
    return AdaptFixture(
        cost=cost,
        access=access,
        executor=Executor(catalog, cost),
        planners=planners,
        n_rows=n_rows,
    )


def narrow_scan_query(selectivity: float, n_rows: int) -> Query:
    """SUM over one attribute for an id range covering ``selectivity``."""
    high = int(n_rows * selectivity)
    return Query(
        tables=["adapt"],
        select=[SelectItem(Aggregate(AggFunc.SUM, ColumnRef("a0")), alias="s")],
        where=Between("id", 0, max(high - 1, 0)),
    )


def wide_scan_query(projectivity: int, n_rows: int) -> Query:
    """Aggregate over ``projectivity`` attributes, full table."""
    items = [
        SelectItem(Aggregate(AggFunc.SUM, ColumnRef(f"a{i}")), alias=f"s{i}")
        for i in range(projectivity)
    ]
    return Query(tables=["adapt"], select=items, where=Between("id", 0, n_rows))


@dataclass
class AdaptCell:
    operation: str
    row_us: float
    column_us: float
    hybrid_us: float

    @property
    def winner(self) -> str:
        best = min(("row", self.row_us), ("column", self.column_us), key=lambda p: p[1])
        return best[0]


def run_adapt(
    n_rows: int = 5_000,
    narrow_selectivities: tuple = (0.01, 0.1, 1.0),
    wide_projectivities: tuple = (1, 5, 10),
    seed: int = 21,
    n_attributes: int = N_ATTRIBUTES,
) -> list[AdaptCell]:
    """The full grid; returns one cell per operation."""
    fixture = build_fixture(n_rows=n_rows, seed=seed, n_attributes=n_attributes)
    cells: list[AdaptCell] = []
    for sel in narrow_selectivities:
        q = narrow_scan_query(sel, n_rows)
        cells.append(
            AdaptCell(
                operation=f"narrow sel={sel}",
                row_us=fixture.run("row", q),
                column_us=fixture.run("column", q),
                hybrid_us=fixture.run("hybrid", q),
            )
        )
    for proj in wide_projectivities:
        q = wide_scan_query(proj, n_rows)
        cells.append(
            AdaptCell(
                operation=f"wide proj={proj}",
                row_us=fixture.run("row", q),
                column_us=fixture.run("column", q),
                hybrid_us=fixture.run("hybrid", q),
            )
        )
    # Point lookups by primary key: the "row side" of ADAPT is the
    # B+-tree/index path, which column layouts lack.
    from ..common.predicate import Comparison

    point = Query(
        tables=["adapt"],
        select=[SelectItem(ColumnRef("a0"))],
        where=Comparison("id", "=", n_rows // 2),
    )
    row_us = col_us = hyb_us = 0.0
    for _i in range(20):
        row_us += fixture.run("index", point)
        col_us += fixture.run("column", point)
        hyb_us += fixture.run("hybrid", point)
    cells.append(
        AdaptCell(
            operation="point x20",
            row_us=row_us,
            column_us=col_us,
            hybrid_us=hyb_us,
        )
    )
    return cells
