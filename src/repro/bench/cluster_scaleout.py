"""Elastic scale-out bench: fixed HTAP work on 4 -> 16 -> 64 nodes.

Each *arm* builds a fresh distributed-replica engine with N storage
nodes and N Raft shards, loads TPC-C, and drives the **same fixed
operation count** through the FrontDoor/session tier: TPC-C
transactions (the key-skewed write mix) on the OLTP sessions and
parameterized CH-flavored statements on the OLAP sessions.  Throughput
is makespan-based — committed transactions divided by the busiest *row
node's* BusyLedger time — so scaling efficiency at N nodes vs the
4-node base is

    efficiency(N) = (tp_N / tp_base) / (N / base)

and near-linear scale-out means efficiency stays close to 1.0 as the
same work spreads over more shard leaders.

Placement-driven co-location is on by default: customer rows co-locate
with their history appends (group "cust") and orders with their lines
(group "order"), so the dominant mix commits on the single-shard 1PC
fast path; each arm reports its ``single_shard_fraction``.  A
*protocol comparison* runs the base arm twice — optimized fast paths
vs the classic two-round 2PC with co-location off — at identical
simulated-cost parity, which is the fan-out tax in one number.

Strong scaling (fixed work over more nodes) under-reports the large
arms: 64 shards sharing a fixed transaction count measure workload
discretization, not the architecture.  The *weak-scaling* arms scale
work proportionally to nodes (work per node constant); their
efficiency is tp_N / tp_base directly.

A separate *split arm* proves elasticity is safe, not just fast: keyed
audit writes flow through the front door's router while a
:class:`~repro.distributed.resharding.ShardSplit` runs one phase per
scheduling round, CH reads keep executing mid-split, and afterwards
every acknowledged write must be present exactly once (zero lost, zero
duplicated) on both the row path and the re-homed columnar replica —
with the 1PC and piggybacked commit paths live throughout.

Deterministic, simulated-time only (HTL001):
``benchmarks/test_perf_cluster.py`` owns the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common import Column, DataType, Schema
from ..common.rng import make_rng
from ..distributed.cluster import WriteKind, WriteOp
from ..distributed.metadata import RING_SIZE
from ..distributed.partitioner import placement_point
from ..distributed.resharding import ShardSplit
from ..engines.distributed_replica import DistributedReplicaEngine
from ..scheduler.workload_driven import WorkloadDrivenScheduler
from ..session import AdmissionPolicy, FrontDoor, FrontDoorConfig
from .frontdoor import PREPARED_STATEMENTS
from .tpcc import TpccLoader, TpccScale

#: Weight-expanded CH statement draw table (same shapes the front-door
#: bench executes; one randrange picks a statement).
CH_DRAWS = [
    (sql, make_params)
    for _name, weight, sql, make_params in PREPARED_STATEMENTS
    for _ in range(weight)
]


class SkewedWriteMix:
    """TPC-C-style key-skewed write transactions, payment-dominant.

    70% single-row balance updates, 20% payment (customer update +
    history insert), 10% order entry (order + two order lines) — hot
    customers drawn nurand-style.  With the placement policy on, every
    shape is a placement-group transaction (a customer's history lands
    with the customer, an order's lines with the order), so the whole
    mix rides the single-shard 1PC fast path — exactly how TPC-C keeps
    a warehouse's traffic local in real systems.  With placement off,
    the hash ring scatters the 2-3 row shapes across shards and the
    2PC fan-out tax shows up instead.
    """

    def __init__(self, cluster, router, scale: TpccScale, seed: int):
        self.cluster = cluster
        self.router = router
        self.scale = scale
        self.rng = make_rng(seed ^ 0xA111)
        # Fresh key ranges, disjoint from the loader's.
        self._history_id = 1_000_000
        self._order_id = 1_000_000
        self.committed = 0

    def _hot(self, n: int) -> int:
        """75% of draws hit the top quarter of the key space."""
        if self.rng.random() < 0.75:
            return self.rng.randrange(1, max(2, n // 4 + 1))
        return self.rng.randrange(1, n + 1)

    def _pick_customer(self) -> tuple[int, int, int]:
        d = self.rng.randrange(1, self.scale.districts + 1)
        return 1, d, self._hot(self.scale.customers)

    def _commit(self, writes: list[WriteOp]) -> None:
        self.cluster.execute_transaction(writes, router=self.router)
        self.committed += 1

    def run_one(self) -> None:
        draw = self.rng.random()
        if draw < 0.70:
            self.txn_balance()
        elif draw < 0.90:
            self.txn_payment()
        else:
            self.txn_order_entry()

    def txn_balance(self) -> None:
        """Single-row hot-customer balance update (1 shard)."""
        key = self._pick_customer()
        amount = round(self.rng.uniform(1.0, 5000.0), 2)
        row = self.cluster.read("customer", key, router=self.router)
        updated = (*row[:7], row[7] - amount, *row[8:])
        self._commit([WriteOp(WriteKind.UPDATE, "customer", key, updated)])

    def txn_payment(self) -> None:
        """Customer debit + history append (1 shard with placement on,
        else <= 2)."""
        key = self._pick_customer()
        amount = round(self.rng.uniform(1.0, 5000.0), 2)
        row = self.cluster.read("customer", key, router=self.router)
        updated = (
            *row[:7],
            row[7] - amount,
            row[8] + amount,
            row[9] + 1,
            *row[10:],
        )
        self._history_id += 1
        history = (self._history_id, *key, self._history_id, amount)
        self._commit([
            WriteOp(WriteKind.UPDATE, "customer", key, updated),
            WriteOp(
                WriteKind.INSERT,
                "history",
                (*key, self._history_id),
                history,
            ),
        ])

    def txn_order_entry(self) -> None:
        """Order header + two lines (1 shard with placement on,
        else <= 3)."""
        w, d, c = self._pick_customer()
        self._order_id += 1
        o_id = self._order_id
        order = (w, d, o_id, c, o_id, None, 2, 1)
        writes = [WriteOp(WriteKind.INSERT, "orders", (w, d, o_id), order)]
        for number in (1, 2):
            item = self._hot(self.scale.items)
            line = (w, d, o_id, number, item, w, None, 5, 99.5)
            writes.append(
                WriteOp(
                    WriteKind.INSERT, "order_line", (w, d, o_id, number), line
                )
            )
        self._commit(writes)


@dataclass(frozen=True)
class ClusterScaleoutConfig:
    """Scale knobs; the fixed work totals are identical across arms."""

    node_counts: tuple[int, ...] = (4, 16, 64)
    n_sessions: int = 24
    #: Every ``olap_every``-th session is an OLAP client.
    olap_every: int = 3
    #: Fixed total TPC-C transactions per arm.  Sized so the largest
    #: strong arm (64 shards) gets enough transactions per shard that
    #: sampling discretization, not the commit path, stops being the
    #: visible ceiling (the load-quantile boot boundaries already
    #: remove the fixed assignment imbalance).
    write_txns: int = 600
    #: Fixed total CH statement executions per arm.
    ch_reads: int = 150
    #: Per-4-nodes work unit for the weak-scaling arms (work ∝ nodes,
    #: so the largest arm runs ``weak_write_txns * nodes / base``
    #: transactions; kept smaller than ``write_txns`` to bound cost).
    weak_write_txns: int = 75
    #: Generous round budget: the bench measures the cluster, not the
    #: scheduler's slot split, so rounds should drain what they get.
    round_slot_us: float = 200_000.0
    total_slots: int = 8
    min_slots: int = 3
    #: Audit writes in the split arm (acknowledged-exactly-once check).
    split_writes: int = 90
    seed: int = 7
    #: Co-locate customer/history and orders/order_line placement
    #: groups (the co-location arm; off measures the raw hash ring).
    placement: bool = True
    #: "fast" = 1PC + piggybacked paths; "baseline" = classic 2PC.
    commit_protocol: str = "fast"
    #: Weak-scaling arms: work scales with nodes (work/node constant),
    #: so the large arms measure the architecture rather than workload
    #: discretization.  Run alongside the fixed-work strong arms.
    weak_scaling: bool = True
    #: Wider-than-default key space: the hot-key pool must comfortably
    #: exceed the largest shard count or popularity skew (not the
    #: architecture) caps the busiest leader's share.
    scale: TpccScale = field(
        default_factory=lambda: TpccScale(districts=8, customers=120)
    )


@dataclass
class ScaleoutArm:
    """One node-count measurement."""

    nodes: int
    shards: int
    committed: int
    aborted: int
    ch_reads: int
    tp_makespan_us: float        # busiest row node (the TP bottleneck)
    makespan_us: float           # busiest node overall (AP included)
    total_busy_us: float
    router: dict[str, float]
    #: Commit-path split: how the mix actually committed.
    single_shard: int = 0
    piggybacked: int = 0
    two_phase: int = 0
    #: Work multiplier vs the base arm (1 for strong scaling).
    work_factor: int = 1

    @property
    def tp_per_sim_s(self) -> float:
        if self.tp_makespan_us <= 0:
            return 0.0
        return self.committed / (self.tp_makespan_us / 1e6)

    @property
    def single_shard_fraction(self) -> float:
        total = self.single_shard + self.piggybacked + self.two_phase
        if total == 0:
            return 0.0
        return self.single_shard / total


@dataclass
class SplitCheck:
    """Mid-bench shard split: every acknowledged write, exactly once."""

    expected: int                # acknowledged audit writes
    present: int                 # distinct audit keys on the row path
    duplicates: int              # keys seen on more than one shard
    lost: int                    # acknowledged keys missing
    columnar_rows: int           # audit rows on the re-homed AP replica
    ch_reads_during_split: int
    rows_moved: int
    tail_writes: int
    stale_retries: float
    retries_exhausted: float
    epoch: int                   # epochs advanced by the split itself

    @property
    def exactly_once(self) -> bool:
        return self.lost == 0 and self.duplicates == 0


@dataclass
class ProtocolComparison:
    """Base arm, optimized vs baseline, identical work and cost model."""

    fast_tp_per_sim_s: float
    baseline_tp_per_sim_s: float
    fast_single_shard_fraction: float

    @property
    def speedup(self) -> float:
        if self.baseline_tp_per_sim_s <= 0:
            return 0.0
        return self.fast_tp_per_sim_s / self.baseline_tp_per_sim_s


@dataclass
class ScaleoutResult:
    config: ClusterScaleoutConfig
    arms: list[ScaleoutArm]
    #: nodes -> throughput-scaling efficiency vs the smallest arm.
    efficiency: dict[int, float]
    split: SplitCheck
    #: Weak-scaling arms (work ∝ nodes) and their efficiency — the
    #: makespan ratio T_base/T_N (throughput ratio over node ratio).
    weak_arms: list[ScaleoutArm] = field(default_factory=list)
    weak_efficiency: dict[int, float] = field(default_factory=dict)
    protocols: ProtocolComparison | None = None


class ClusterScaleoutDriver:
    """Runs every arm plus the mid-bench split, returns the result."""

    def __init__(self, config: ClusterScaleoutConfig | None = None):
        self.config = config or ClusterScaleoutConfig()

    # ------------------------------------------------------------- plumbing

    def _build(
        self, n_nodes: int, audit: bool = False
    ) -> tuple[DistributedReplicaEngine, FrontDoor]:
        cfg = self.config
        engine = DistributedReplicaEngine(
            n_storage_nodes=n_nodes,
            n_regions=n_nodes,      # one shard leader per row node
            seed=cfg.seed,
            commit_protocol=cfg.commit_protocol,
        )
        if cfg.placement:
            # DDL-time co-location: a customer's history rides with the
            # customer row, an order's lines with the order header.
            engine.declare_placement("customer", "cust", 3)
            engine.declare_placement("history", "cust", 3)
            engine.declare_placement("orders", "order", 3)
            engine.declare_placement("order_line", "order", 3)
            # Co-location concentrates each transaction on one placement
            # point, so equal ring spans leave a fixed busiest-shard
            # excess; cut the boot map at expected-load quantiles
            # instead (what a placement driver converges to online).
            engine.install_boundaries(self._load_sample())
        if audit:
            # DDL must precede the first commit (the TPC-C load).
            engine.create_table(
                Schema(
                    "audit",
                    [
                        Column("id", DataType.INT64),
                        Column("val", DataType.FLOAT64),
                    ],
                    ["id"],
                )
            )
        TpccLoader(cfg.scale, seed=cfg.seed).load(engine)
        engine.sync()
        frontdoor = FrontDoor(
            engine,
            WorkloadDrivenScheduler(
                total_slots=cfg.total_slots, min_slots=cfg.min_slots
            ),
            FrontDoorConfig(
                round_slot_us=cfg.round_slot_us,
                # Fixed work: nothing may be shed, only delayed.
                policy=AdmissionPolicy(
                    delay_depth_per_slot=10_000, shed_depth_per_slot=1_000_000
                ),
            ),
        )
        return engine, frontdoor

    def _load_sample(self) -> list[int]:
        """Expected-load placement-point sample for boundary quantiles.

        Mirrors :class:`SkewedWriteMix`: hot customers (the top quarter,
        nurand-style 75/25) draw 13x the cold ones — per draw, a hot
        pair gets ``0.75 / (D*C/4) + 0.25 / (D*C)`` vs a cold pair's
        ``0.25 / (D*C)``.  Order entries use fresh ids that hash
        uniformly, so their ~10% traffic share enters as an even stripe
        across the whole ring.
        """
        s = self.config.scale
        hot = max(1, s.customers // 4)
        pts: list[int] = []
        for d in range(1, s.districts + 1):
            for c in range(1, s.customers + 1):
                weight = 13 if c <= hot else 1
                pts.extend([placement_point("cust", (1, d, c))] * weight)
        n_uniform = max(1, len(pts) // 9)
        pts.extend((i * RING_SIZE) // n_uniform for i in range(n_uniform))
        return pts

    @staticmethod
    def _sessions(frontdoor: FrontDoor, cfg: ClusterScaleoutConfig):
        sessions = [
            frontdoor.open_session(
                "olap" if i % cfg.olap_every == 0 else "oltp"
            )
            for i in range(cfg.n_sessions)
        ]
        oltp = [s for s in sessions if s.workload_class == "oltp"]
        olap = [s for s in sessions if s.workload_class == "olap"]
        return oltp, olap

    @staticmethod
    def _tp_makespan(engine: DistributedReplicaEngine) -> float:
        busy = engine.ledger.snapshot()
        return max(
            (t for node, t in busy.items() if node.startswith("n")),
            default=0.0,
        )

    # ------------------------------------------------------------- one arm

    def run_arm(
        self,
        n_nodes: int,
        work_factor: int = 1,
        base_writes: int | None = None,
        base_reads: int | None = None,
    ) -> ScaleoutArm:
        """One measurement: fixed work (strong scaling) when
        ``work_factor`` is 1, work ∝ nodes (weak scaling) otherwise;
        ``base_writes``/``base_reads`` override the per-unit work."""
        cfg = self.config
        engine, frontdoor = self._build(n_nodes)
        cluster = engine.cluster
        workload = SkewedWriteMix(
            cluster, frontdoor.router, cfg.scale, seed=cfg.seed
        )
        oltp, olap = self._sessions(frontdoor, cfg)
        rng = make_rng(cfg.seed ^ 0xC105)

        # Loading/sync busy time is setup, not measured work.
        engine.ledger.reset()
        commits0, aborts0 = cluster.commits, cluster.aborts
        paths0 = (
            cluster.commits_single_shard,
            cluster.commits_piggybacked,
            cluster.commits_two_phase,
        )

        writes_left = (
            base_writes if base_writes is not None else cfg.write_txns
        ) * work_factor
        reads_left = (
            base_reads if base_reads is not None else cfg.ch_reads
        ) * work_factor
        while writes_left or reads_left:
            for session in oltp:
                if writes_left:
                    session.submit(workload.run_one)
                    writes_left -= 1
            for session in olap:
                if reads_left:
                    sql, make_params = CH_DRAWS[rng.randrange(len(CH_DRAWS))]
                    session.submit_query(sql, make_params(rng, cfg.scale))
                    reads_left -= 1
            frontdoor.run_round()
        frontdoor.drain_all()

        return ScaleoutArm(
            nodes=n_nodes,
            shards=cluster.n_regions,
            committed=cluster.commits - commits0,
            aborted=cluster.aborts - aborts0,
            ch_reads=frontdoor.completed["olap"],
            tp_makespan_us=self._tp_makespan(engine),
            makespan_us=engine.ledger.makespan_us(),
            total_busy_us=engine.ledger.total_us(),
            router=dict(frontdoor.router.stats),
            single_shard=cluster.commits_single_shard - paths0[0],
            piggybacked=cluster.commits_piggybacked - paths0[1],
            two_phase=cluster.commits_two_phase - paths0[2],
            work_factor=work_factor,
        )

    # ------------------------------------------------------------- split arm

    def run_split(self) -> SplitCheck:
        """Smallest arm again, with a shard split mid-traffic."""
        cfg = self.config
        engine, frontdoor = self._build(cfg.node_counts[0], audit=True)
        cluster = engine.cluster
        oltp, olap = self._sessions(frontdoor, cfg)
        rng = make_rng(cfg.seed ^ 0x5917)
        acked: list[int] = []
        next_id = 0

        def audit_write(i: int):
            # Through the front door's own router cache — the component
            # the split will make stale.
            def run():
                cluster.execute_transaction(
                    [WriteOp(WriteKind.INSERT, "audit", i, (i, float(i)))],
                    router=frontdoor.router,
                )
                acked.append(i)

            return run

        def submit_wave(n_writes: int, n_reads: int) -> None:
            nonlocal next_id
            for k in range(n_writes):
                oltp[k % len(oltp)].submit(audit_write(next_id))
                next_id += 1
            for k in range(n_reads):
                sql, make_params = CH_DRAWS[rng.randrange(len(CH_DRAWS))]
                olap[k % len(olap)].submit_query(
                    sql, make_params(rng, cfg.scale)
                )

        third = cfg.split_writes // 3
        # Boundary installation may already have consumed an epoch;
        # the check below is about the split's own transitions.
        epoch_before = cluster.metadata.epoch
        # Phase 1: steady state before the split.
        submit_wave(third, 4)
        frontdoor.drain_all()

        # Phase 2: split the shard owning audit key 0, one resharding
        # phase per scheduling round, traffic never pausing.
        split = ShardSplit(cluster, cluster.region_of("audit", 0))
        reads_before_split = frontdoor.completed["olap"]
        while not split.done:
            split.step()
            submit_wave(max(1, third // 4), 2)
            frontdoor.run_round()
        ch_during = frontdoor.completed["olap"] - reads_before_split

        # Phase 3: the rest of the fixed work on the post-split map.
        submit_wave(cfg.split_writes - next_id, 4)
        frontdoor.drain_all()

        # Every acknowledged write: present exactly once, both tiers.
        rows = cluster.row_scan("audit")
        ids = [r[0] for r in rows]
        present = set(ids)
        engine.force_sync()
        columnar = len(cluster.analytic_scan("audit", ["id"]))
        return SplitCheck(
            expected=len(acked),
            present=len(present),
            duplicates=len(ids) - len(present),
            lost=len(set(acked) - present),
            columnar_rows=columnar,
            ch_reads_during_split=ch_during,
            rows_moved=split.rows_moved,
            tail_writes=split.tail_writes,
            stale_retries=frontdoor.router.stats["stale_retries"]
            + cluster.router.stats["stale_retries"],
            retries_exhausted=frontdoor.router.stats["retries_exhausted"]
            + cluster.router.stats["retries_exhausted"],
            epoch=cluster.metadata.epoch - epoch_before,
        )

    # ------------------------------------------------------------- all arms

    def run_protocol_comparison(self) -> ProtocolComparison:
        """The fan-out tax in one number: the base arm with the fast
        paths + co-location vs classic 2PC on the raw hash ring, at
        identical work and simulated-cost parity."""
        from dataclasses import replace

        base_nodes = self.config.node_counts[0]
        fast = self.run_arm(base_nodes)
        baseline_driver = ClusterScaleoutDriver(
            replace(self.config, placement=False, commit_protocol="baseline")
        )
        baseline = baseline_driver.run_arm(base_nodes)
        return ProtocolComparison(
            fast_tp_per_sim_s=fast.tp_per_sim_s,
            baseline_tp_per_sim_s=baseline.tp_per_sim_s,
            fast_single_shard_fraction=fast.single_shard_fraction,
        )

    def run(self, on_arm=None) -> ScaleoutResult:
        arms = []
        for n_nodes in self.config.node_counts:
            arms.append(self.run_arm(n_nodes))
            if on_arm is not None:
                on_arm(arms[-1])
        base = arms[0]
        efficiency = {
            arm.nodes: (
                (arm.tp_per_sim_s / base.tp_per_sim_s)
                / (arm.nodes / base.nodes)
                if base.tp_per_sim_s > 0
                else 0.0
            )
            for arm in arms
        }
        weak_arms: list[ScaleoutArm] = []
        weak_efficiency: dict[int, float] = {}
        if self.config.weak_scaling:
            cfg = self.config
            base_nodes = cfg.node_counts[0]
            weak_reads = max(
                1, cfg.weak_write_txns * cfg.ch_reads // cfg.write_txns
            )
            for n_nodes in cfg.node_counts:
                factor = max(1, n_nodes // base_nodes)
                weak_arms.append(
                    self.run_arm(
                        n_nodes,
                        work_factor=factor,
                        base_writes=cfg.weak_write_txns,
                        base_reads=weak_reads,
                    )
                )
                if on_arm is not None:
                    on_arm(weak_arms[-1])
            weak_base = weak_arms[0]
            # Work/node is constant, so ideal throughput grows with the
            # node ratio; efficiency is the makespan ratio T_base/T_N.
            weak_efficiency = {
                arm.nodes: (
                    (arm.tp_per_sim_s / weak_base.tp_per_sim_s)
                    / (arm.nodes / weak_base.nodes)
                    if weak_base.tp_per_sim_s > 0
                    else 0.0
                )
                for arm in weak_arms
            }
        protocols = self.run_protocol_comparison()
        split = self.run_split()
        if on_arm is not None:
            on_arm(split)
        return ScaleoutResult(
            config=self.config,
            arms=arms,
            efficiency=efficiency,
            split=split,
            weak_arms=weak_arms,
            weak_efficiency=weak_efficiency,
            protocols=protocols,
        )
