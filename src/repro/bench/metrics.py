"""HTAP benchmark metrics (§2.3 of the survey).

tpmC (TPC-C NewOrder transactions per minute), QphH (analytical queries
per hour), HTAPBench's QpHpW (queries per hour *per analytical worker*
while OLTP holds its target), freshness score, and the isolation
degradation the survey's evaluation practices quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def per_minute(ops: int, makespan_us: float) -> float:
    if makespan_us <= 0:
        return 0.0
    return ops / (makespan_us / 60e6)


def per_hour(ops: int, makespan_us: float) -> float:
    if makespan_us <= 0:
        return 0.0
    return ops / (makespan_us / 3600e6)


def per_second(ops: int, makespan_us: float) -> float:
    if makespan_us <= 0:
        return 0.0
    return ops / (makespan_us / 1e6)


@dataclass
class HtapRunMetrics:
    """One mixed-workload run, fully reduced."""

    label: str
    tp_ops: int = 0
    ap_ops: int = 0
    tp_makespan_us: float = 0.0
    ap_makespan_us: float = 0.0
    new_orders: int = 0
    freshness_lags: list[int] = field(default_factory=list)

    @property
    def tpmc(self) -> float:
        return per_minute(self.new_orders, self.tp_makespan_us)

    @property
    def tp_per_sec(self) -> float:
        return per_second(self.tp_ops, self.tp_makespan_us)

    @property
    def qph(self) -> float:
        return per_hour(self.ap_ops, self.ap_makespan_us)

    @property
    def ap_per_sec(self) -> float:
        return per_second(self.ap_ops, self.ap_makespan_us)

    def mean_freshness_lag(self) -> float:
        if not self.freshness_lags:
            return 0.0
        return sum(self.freshness_lags) / len(self.freshness_lags)

    def freshness_score(self) -> float:
        return 1.0 / (1.0 + self.mean_freshness_lag())


def qphpw(ap_ops: int, makespan_us: float, workers: int) -> float:
    """HTAPBench's unified metric: QphH per analytical worker."""
    if workers <= 0:
        return 0.0
    return per_hour(ap_ops, makespan_us) / workers


def degradation(alone: float, mixed: float) -> float:
    """Fraction of throughput lost to the co-running workload."""
    if alone <= 0:
        return 0.0
    return max(0.0, 1.0 - mixed / alone)


def isolation_score(alone: float, mixed: float) -> float:
    """1.0 = perfectly isolated, 0.0 = fully starved."""
    return 1.0 - degradation(alone, mixed)


def rank_label(value: float, thresholds: tuple[float, float]) -> str:
    """Map a measured value onto the paper's High/Medium/Low scale."""
    low_cut, high_cut = thresholds
    if value >= high_cut:
        return "High"
    if value >= low_cut:
        return "Medium"
    return "Low"
