"""Resource-scheduling primitives.

The survey frames HTAP resource scheduling as "dynamically allocating
resources, e.g. CPU and memory" between OLTP and OLAP and switching
*execution modes* (isolated vs shared).  This module defines the
vocabulary every scheduler speaks: an allocation of CPU slots plus an
execution mode, and the per-round metrics schedulers react to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..obs import get_registry


class ExecutionMode(enum.Enum):
    """How OLTP and OLAP share data (RDE-style modes, §2.2(5)).

    ISOLATED: queries read only the synced columnar image (fast, stale);
    data moves in periodic sync steps.
    SHARED: queries additionally merge the live delta at query time
    (fresh, slower, interferes with OLTP).
    """

    ISOLATED = "isolated"
    SHARED = "shared"


@dataclass
class ResourceAllocation:
    """One round's decision: slot split, mode, and whether to sync now."""

    oltp_slots: int
    olap_slots: int
    mode: ExecutionMode = ExecutionMode.ISOLATED
    run_sync: bool = False

    def __post_init__(self) -> None:
        if self.oltp_slots < 0 or self.olap_slots < 0:
            raise ValueError("slot counts must be non-negative")
        if self.oltp_slots + self.olap_slots == 0:
            raise ValueError("allocation needs at least one slot")

    @property
    def total_slots(self) -> int:
        return self.oltp_slots + self.olap_slots

    def slots_for(self, workload_class: str) -> int:
        """Slots granted to one workload class ("oltp" | "olap") —
        what the session tier's admission controller consumes."""
        if workload_class == "oltp":
            return self.oltp_slots
        if workload_class == "olap":
            return self.olap_slots
        raise ValueError(f"unknown workload class {workload_class!r}")


@dataclass
class RoundMetrics:
    """What the runner observed during the last scheduling round."""

    oltp_completed: int = 0
    olap_completed: int = 0
    oltp_backlog: int = 0
    olap_backlog: int = 0
    freshness_lag: int = 0
    oltp_busy_us: float = 0.0
    olap_busy_us: float = 0.0
    sync_ran: bool = False


@dataclass
class ScheduleTrace:
    """History of allocations + metrics, for benches and tests."""

    allocations: list[ResourceAllocation] = field(default_factory=list)
    metrics: list[RoundMetrics] = field(default_factory=list)

    def record(self, allocation: ResourceAllocation, metrics: RoundMetrics) -> None:
        self.allocations.append(allocation)
        self.metrics.append(metrics)
        registry = get_registry()
        registry.inc("scheduler.rounds", mode=allocation.mode.value)
        if metrics.sync_ran:
            registry.inc("scheduler.syncs")
        registry.set_gauge("scheduler.oltp_slots", float(allocation.oltp_slots))
        registry.set_gauge("scheduler.olap_slots", float(allocation.olap_slots))
        registry.observe(
            "scheduler.freshness_lag", float(metrics.freshness_lag)
        )

    def total_oltp(self) -> int:
        return sum(m.oltp_completed for m in self.metrics)

    def total_olap(self) -> int:
        return sum(m.olap_completed for m in self.metrics)

    def mean_freshness_lag(self) -> float:
        if not self.metrics:
            return 0.0
        return sum(m.freshness_lag for m in self.metrics) / len(self.metrics)

    def mode_fractions(self) -> dict[str, float]:
        if not self.allocations:
            return {}
        out: dict[str, float] = {}
        for alloc in self.allocations:
            out[alloc.mode.value] = out.get(alloc.mode.value, 0.0) + 1.0
        return {k: v / len(self.allocations) for k, v in out.items()}


class Scheduler:
    """Base class: decide the next round's allocation from history."""

    name = "base"

    def __init__(self, total_slots: int):
        if total_slots < 2:
            raise ValueError("need at least 2 CPU slots to split")
        self.total_slots = total_slots

    def allocate(self, last: RoundMetrics | None) -> ResourceAllocation:
        raise NotImplementedError


class StaticScheduler(Scheduler):
    """Fixed split, fixed mode — the no-scheduling baseline."""

    name = "static"

    def __init__(
        self,
        total_slots: int,
        oltp_fraction: float = 0.5,
        mode: ExecutionMode = ExecutionMode.ISOLATED,
        sync_every: int = 4,
    ):
        super().__init__(total_slots)
        if not 0.0 < oltp_fraction < 1.0:
            raise ValueError("oltp_fraction must be in (0, 1)")
        self._fraction = oltp_fraction
        self._mode = mode
        self._sync_every = max(1, sync_every)
        self._round = 0

    def allocate(self, last: RoundMetrics | None) -> ResourceAllocation:
        self._round += 1
        oltp = max(1, round(self.total_slots * self._fraction))
        oltp = min(oltp, self.total_slots - 1)
        return ResourceAllocation(
            oltp_slots=oltp,
            olap_slots=self.total_slots - oltp,
            mode=self._mode,
            run_sync=(self._round % self._sync_every == 0),
        )
