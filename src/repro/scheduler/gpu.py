"""A simulated GPU device for heterogeneous HTAP (Caldera/RateupDB).

Table 2's third QO row: "CPU/GPU Acceleration for HTAP ... utilizes the
task-parallel nature of CPUs and the data-parallel nature of GPUs for
handling OLTP and OLAP, respectively", with the documented trade-off
"High AP Throughput / Low TP Throughput".

The model: columnar data must be *resident* on the device before a
kernel can scan it.  Transfers pay a per-value PCIe cost; every OLTP
commit invalidates the affected table's resident columns, so a
write-heavy workload keeps re-paying transfers — which is exactly where
the low TP throughput of GPU-centric HTAP designs comes from.
Kernels themselves scan an order of magnitude faster per value than
the CPU path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.cost import CostModel
from ..common.predicate import ALWAYS_TRUE, Predicate


@dataclass
class GpuStats:
    kernels_launched: int = 0
    values_scanned: int = 0
    values_transferred: int = 0
    invalidations: int = 0
    transfer_time_us: float = 0.0
    kernel_time_us: float = 0.0


@dataclass
class _ResidentColumn:
    array: np.ndarray
    version: int


class GPUDevice:
    """Device memory + transfer accounting + vectorized kernels."""

    def __init__(self, cost: CostModel | None = None, memory_budget_bytes: int = 1 << 30):
        self._cost = cost or CostModel()
        self.memory_budget_bytes = memory_budget_bytes
        self._resident: dict[tuple[str, str], _ResidentColumn] = {}
        self._table_versions: dict[str, int] = {}
        self.stats = GpuStats()

    # ------------------------------------------------------------- residency

    def _version(self, table: str) -> int:
        return self._table_versions.get(table, 0)

    def invalidate_table(self, table: str) -> None:
        """Called on every OLTP commit touching ``table``."""
        self._table_versions[table] = self._version(table) + 1
        self.stats.invalidations += 1

    def resident_bytes(self) -> int:
        return sum(col.array.nbytes for col in self._resident.values())

    def _ensure_resident(self, table: str, name: str, array: np.ndarray) -> np.ndarray:
        key = (table, name)
        version = self._version(table)
        cached = self._resident.get(key)
        if cached is not None and cached.version == version:
            return cached.array
        # Transfer over PCIe (evicting LRU-ish if over budget).
        start = self._cost.now_us()
        self._cost.charge(
            self._cost.gpu_transfer_per_value_us * max(len(array), 1)
        )
        self.stats.transfer_time_us += self._cost.now_us() - start
        self.stats.values_transferred += len(array)
        self._resident[key] = _ResidentColumn(array=array, version=version)
        while self.resident_bytes() > self.memory_budget_bytes and self._resident:
            evict_key = next(iter(self._resident))
            if evict_key == key and len(self._resident) == 1:
                break
            if evict_key == key:
                evict_key = next(k for k in self._resident if k != key)
            del self._resident[evict_key]
        return array

    # ------------------------------------------------------------- kernels

    def filtered_aggregate(
        self,
        table: str,
        arrays: dict[str, np.ndarray],
        predicate: Predicate = ALWAYS_TRUE,
        agg_column: str | None = None,
    ) -> tuple[float, int]:
        """Device-side filter + sum kernel; returns (sum, match count).

        ``arrays`` is the host columnar image; columns are uploaded
        lazily and reused while their table version is unchanged.
        """
        device_arrays = {
            name: self._ensure_resident(table, name, arr)
            for name, arr in arrays.items()
        }
        start = self._cost.now_us()
        n = len(next(iter(device_arrays.values()))) if device_arrays else 0
        self._cost.charge(self._cost.gpu_kernel_launch_us)
        self._cost.charge(
            self._cost.gpu_scan_per_value_us * n * max(len(device_arrays), 1)
        )
        mask = predicate.mask(device_arrays) if device_arrays else np.array([], bool)
        matched = int(mask.sum())
        total = 0.0
        if agg_column is not None and matched:
            total = float(device_arrays[agg_column][mask].sum())
        self.stats.kernels_launched += 1
        self.stats.values_scanned += n * max(len(device_arrays), 1)
        self.stats.kernel_time_us += self._cost.now_us() - start
        return total, matched
