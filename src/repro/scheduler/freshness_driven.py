"""Freshness-driven scheduling (RDE style, Table 2).

"The scheduler controls the execution of OLTP and OLAP in isolation for
high throughput, then periodically synchronizes the data. Once the data
freshness becomes low, it switches to an execution mode with shared
CPU, memory and data." (§2.2(5))

A rule-based controller: below the staleness threshold it runs the
isolated, throughput-favoring mode; when lag exceeds the threshold it
switches to SHARED (queries merge live deltas) and forces a sync —
restoring freshness at a throughput price (its documented con).
"""

from __future__ import annotations

from .resources import (
    ExecutionMode,
    ResourceAllocation,
    RoundMetrics,
    Scheduler,
)


class FreshnessDrivenScheduler(Scheduler):
    """Threshold rule on freshness lag; fixed half/half slot split."""

    name = "freshness-driven"

    def __init__(
        self,
        total_slots: int,
        lag_threshold: int = 50,
        recover_threshold: int | None = None,
    ):
        super().__init__(total_slots)
        if lag_threshold < 1:
            raise ValueError("lag_threshold must be >= 1")
        self.lag_threshold = lag_threshold
        # Hysteresis: switch back to ISOLATED only once lag has dropped
        # well below the trigger.
        self.recover_threshold = (
            recover_threshold if recover_threshold is not None else lag_threshold // 4
        )
        self._mode = ExecutionMode.ISOLATED

    def allocate(self, last: RoundMetrics | None) -> ResourceAllocation:
        run_sync = False
        if last is not None:
            if last.freshness_lag >= self.lag_threshold:
                self._mode = ExecutionMode.SHARED
                run_sync = True
            elif (
                self._mode is ExecutionMode.SHARED
                and last.freshness_lag <= self.recover_threshold
            ):
                self._mode = ExecutionMode.ISOLATED
        oltp = self.total_slots // 2
        oltp = max(1, min(self.total_slots - 1, oltp))
        return ResourceAllocation(
            oltp_slots=oltp,
            olap_slots=self.total_slots - oltp,
            mode=self._mode,
            run_sync=run_sync,
        )
