"""Workload-driven scheduling (SAP HANA / Siper style, Table 2).

Adjusts the OLTP/OLAP thread split from the observed execution status:
"when CPU resource is saturated by OLAP threads, the task scheduler can
decrease the parallelism of OLAP while enlarging the OLTP threads"
(§2.2(5)).  Freshness is *not* an input — the technique's documented
con ("High Throughput / Low Freshness"): it happily starves
synchronization as long as both queues drain.
"""

from __future__ import annotations

from .resources import (
    ExecutionMode,
    ResourceAllocation,
    RoundMetrics,
    Scheduler,
)


class WorkloadDrivenScheduler(Scheduler):
    """Backlog-proportional slot balancing with hysteresis."""

    name = "workload-driven"

    def __init__(
        self,
        total_slots: int,
        min_slots: int = 1,
        smoothing: float = 0.5,
        sync_every: int = 8,
    ):
        super().__init__(total_slots)
        if min_slots < 1:
            raise ValueError("min_slots must be >= 1")
        if 2 * min_slots > total_slots:
            # The clamp below is max(min, min(total - min, x)); with
            # 2*min > total it inverts (lower bound above upper bound)
            # and would return min_slots for OLTP while leaving OLAP
            # total - min_slots < min_slots — or zero slots outright.
            raise ValueError(
                f"min_slots={min_slots} needs 2*min_slots <= total_slots="
                f"{total_slots} so both workload classes keep their floor"
            )
        self.min_slots = min_slots
        self.smoothing = smoothing
        self._sync_every = max(1, sync_every)
        self._round = 0
        self._oltp_share = 0.5

    def allocate(self, last: RoundMetrics | None) -> ResourceAllocation:
        self._round += 1
        if last is not None:
            backlog_total = last.oltp_backlog + last.olap_backlog
            if backlog_total > 0:
                target = last.oltp_backlog / backlog_total
            else:
                # Balanced when both queues are empty; lean on busy time.
                busy_total = last.oltp_busy_us + last.olap_busy_us
                target = (
                    last.oltp_busy_us / busy_total if busy_total > 0 else 0.5
                )
            self._oltp_share = (
                self.smoothing * self._oltp_share + (1 - self.smoothing) * target
            )
        oltp = round(self.total_slots * self._oltp_share)
        oltp = max(self.min_slots, min(self.total_slots - self.min_slots, oltp))
        # Syncs run rarely and only on the fixed cadence: the scheduler
        # never looks at freshness (its documented blind spot).
        return ResourceAllocation(
            oltp_slots=oltp,
            olap_slots=self.total_slots - oltp,
            mode=ExecutionMode.ISOLATED,
            run_sync=(self._round % self._sync_every == 0),
        )
