"""Resource scheduling: workload-driven, freshness-driven, adaptive, GPU."""

from .adaptive import AdaptiveHTAPScheduler, AdaptiveWeights
from .freshness_driven import FreshnessDrivenScheduler
from .gpu import GPUDevice, GpuStats
from .resources import (
    ExecutionMode,
    ResourceAllocation,
    RoundMetrics,
    Scheduler,
    ScheduleTrace,
    StaticScheduler,
)
from .workload_driven import WorkloadDrivenScheduler

__all__ = [
    "AdaptiveHTAPScheduler",
    "AdaptiveWeights",
    "ExecutionMode",
    "FreshnessDrivenScheduler",
    "GPUDevice",
    "GpuStats",
    "ResourceAllocation",
    "RoundMetrics",
    "ScheduleTrace",
    "Scheduler",
    "StaticScheduler",
    "WorkloadDrivenScheduler",
]
