"""Adaptive scheduling — the §2.4 open-problem prototype.

The paper's critique: the freshness-driven rule "neglects the workload
pattern" and the workload-driven approach "does not consider the
freshness"; it calls for a lightweight adaptive method that does both.

This scheduler optimizes a combined objective per round

    score = w_tp * tp_rate + w_ap * ap_rate - w_fresh * lag_penalty

with two decisions: the slot split (workload axis) and the
mode/sync choice (freshness axis).  The split is tuned by online
hill-climbing on the observed score (keep moving in the direction that
improved it, reverse otherwise); the freshness axis uses a *predictive*
trigger — it estimates next-round lag from the current lag plus the
observed commit rate and syncs just before the lag would cross the
target, instead of reacting after it already has.
"""

from __future__ import annotations

from dataclasses import dataclass

from .resources import (
    ExecutionMode,
    ResourceAllocation,
    RoundMetrics,
    Scheduler,
)


@dataclass
class AdaptiveWeights:
    tp: float = 1.0
    ap: float = 1.0
    freshness: float = 1.0


class AdaptiveHTAPScheduler(Scheduler):
    """Hill-climbing slot split + predictive freshness control."""

    name = "adaptive"

    def __init__(
        self,
        total_slots: int,
        lag_target: int = 50,
        weights: AdaptiveWeights | None = None,
        step: int = 1,
    ):
        super().__init__(total_slots)
        self.lag_target = lag_target
        self.weights = weights or AdaptiveWeights()
        self._step = max(1, step)
        self._oltp_slots = max(1, min(total_slots - 1, total_slots // 2))
        self._direction = 1
        #: Slot delta actually applied by the previous round's move —
        #: zero when the clamp swallowed the proposal.  Score changes
        #: are only attributed to moves that really happened.
        self._last_move = 0
        self._last_score: float | None = None
        self._lag_history: list[int] = []
        self._tp_scale: float | None = None
        self._ap_scale: float | None = None

    # ------------------------------------------------------------- scoring

    def _score(self, metrics: RoundMetrics) -> float:
        # Normalize throughput terms by their first observed magnitude so
        # the weights mean the same thing across workloads.
        if self._tp_scale is None and metrics.oltp_completed > 0:
            self._tp_scale = float(metrics.oltp_completed)
        if self._ap_scale is None and metrics.olap_completed > 0:
            self._ap_scale = float(metrics.olap_completed)
        tp_rate = metrics.oltp_completed / (self._tp_scale or 1.0)
        ap_rate = metrics.olap_completed / (self._ap_scale or 1.0)
        lag_penalty = max(0.0, metrics.freshness_lag / max(self.lag_target, 1) - 1.0)
        return (
            self.weights.tp * tp_rate
            + self.weights.ap * ap_rate
            - self.weights.freshness * lag_penalty
        )

    def _predicted_lag(self, current_lag: int) -> float:
        """First-order prediction: lag + recent per-round lag growth."""
        history = self._lag_history[-3:]
        if len(history) >= 2:
            growth = (history[-1] - history[0]) / max(len(history) - 1, 1)
        else:
            growth = 0.0
        return current_lag + max(0.0, growth)

    # ------------------------------------------------------------- allocate

    def allocate(self, last: RoundMetrics | None) -> ResourceAllocation:
        run_sync = False
        mode = ExecutionMode.ISOLATED
        if last is not None:
            self._lag_history.append(last.freshness_lag)
            score = self._score(last)
            if self._last_score is not None:
                # Attribute the score change to the move that was
                # *applied*, not the one proposed: at a slot boundary
                # the clamp can swallow a move entirely, and reversing
                # on such a phantom move lets score noise flip the
                # climb direction spuriously.
                if self._last_move != 0 and score < self._last_score:
                    self._direction = -self._direction  # that move hurt
                proposed = self._oltp_slots + self._direction * self._step
                applied = max(1, min(self.total_slots - 1, proposed))
                if applied == self._oltp_slots and proposed != applied:
                    # The climb ran into the clamp: that direction is
                    # exhausted, so turn around deterministically
                    # instead of waiting for a noisy score to do it.
                    self._direction = -self._direction
                    proposed = self._oltp_slots + self._direction * self._step
                    applied = max(1, min(self.total_slots - 1, proposed))
                self._last_move = applied - self._oltp_slots
                self._oltp_slots = applied
            self._last_score = score
            # Predictive freshness control: sync *before* the lag target
            # is crossed rather than after.
            if self._predicted_lag(last.freshness_lag) >= self.lag_target:
                run_sync = True
            # If lag is already far beyond target (e.g. after a burst),
            # fall back to shared mode until a sync lands.
            if last.freshness_lag >= 2 * self.lag_target:
                mode = ExecutionMode.SHARED
        self._oltp_slots = max(1, min(self.total_slots - 1, self._oltp_slots))
        return ResourceAllocation(
            oltp_slots=self._oltp_slots,
            olap_slots=self.total_slots - self._oltp_slots,
            mode=mode,
            run_sync=run_sync,
        )
