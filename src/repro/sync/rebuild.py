"""Rebuild-from-primary-row-store (Table 2, DS technique (iii)).

SingleStore/Oracle style: instead of merging individual deltas, throw
the columnar image away and repopulate it wholesale from a row-store
snapshot.  The survey notes this wins when "the delta updates exceed a
certain threshold" — small steady-state memory (no delta retained) at
the price of a high load cost per rebuild.  The benches compare this
directly against incremental merging.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.types import rows_to_columns
from ..obs import get_registry
from ..storage.column_store import ColumnStore
from ..storage.row_store import MVCCRowStore


@dataclass
class RebuildStats:
    rebuilds: int = 0
    rows_loaded: int = 0
    rebuild_time_us: float = 0.0


class ColumnStoreRebuilder:
    """Repopulates a column store from an MVCC row-store snapshot."""

    def __init__(
        self,
        rows: MVCCRowStore,
        main: ColumnStore,
        cost: CostModel | None = None,
        staleness_threshold: float = 0.2,
        on_advance=None,
        vectorized: bool = True,
    ):
        if not 0.0 < staleness_threshold <= 1.0:
            raise ValueError("staleness_threshold must be in (0, 1]")
        self.rows = rows
        self.main = main
        self._cost = cost or CostModel()
        self.staleness_threshold = staleness_threshold
        #: Called (no args) after a rebuild replaces the AP image — scan
        #: caches over ``main`` hook invalidation here.
        self.on_advance = on_advance
        self.vectorized = vectorized
        self.stats = RebuildStats()
        self._changes_since_rebuild = 0
        self._rows_at_rebuild = 0
        registry = get_registry()
        self._m_rebuilds = registry.counter("sync.rebuild.events")
        self._m_rows = registry.counter("sync.rebuild.rows")
        self._h_batch = registry.histogram(
            "sync.batch_rows", technique="rebuild"
        )
        self._h_latency = registry.histogram(
            "sync.merge_latency_us", technique="rebuild"
        )

    def on_change(self) -> None:
        """Count a committed change against the staleness budget."""
        self._changes_since_rebuild += 1

    def staleness(self) -> float:
        base = max(self._rows_at_rebuild, 1)
        return self._changes_since_rebuild / base

    def should_rebuild(self) -> bool:
        if self._rows_at_rebuild == 0 and self._changes_since_rebuild > 0:
            return True
        return self.staleness() >= self.staleness_threshold

    def maybe_rebuild(self, snapshot_ts: Timestamp) -> int:
        if not self.should_rebuild():
            return 0
        return self.rebuild(snapshot_ts)

    def rebuild(self, snapshot_ts: Timestamp) -> int:
        """Full repopulation at ``snapshot_ts``; returns rows loaded.

        Both paths keep the same shape — drop the snapshot's keys from
        the old image, compact the remainder, reload the snapshot — so
        rows absent from the snapshot survive either way.  Vectorized
        pivots the snapshot once and seals it via ``append_batch``.
        """
        start = self._cost.now_us()
        rows = self.rows.snapshot_rows(snapshot_ts)
        self._cost.charge_rows(self._cost.rebuild_per_row_us, max(len(rows), 1))
        key_of = self.main.schema.key_of
        stale_keys = [key_of(r) for r in rows]
        if self.vectorized:
            self.main.delete_batch(stale_keys)
            self.main.compact(vectorized=True)  # drop dead space
            if rows:
                arrays = rows_to_columns(self.main.schema, rows)
                self.main.append_batch(arrays, stale_keys, commit_ts=snapshot_ts)
        else:
            self.main.delete_keys(stale_keys)
            self.main.compact()  # drop dead space from previous image
            if rows:
                self.main.append_rows(rows, commit_ts=snapshot_ts)
        self.main.advance_sync_ts(snapshot_ts)
        self._changes_since_rebuild = 0
        self._rows_at_rebuild = len(rows)
        elapsed = self._cost.now_us() - start
        self.stats.rebuilds += 1
        self.stats.rows_loaded += len(rows)
        self.stats.rebuild_time_us += elapsed
        self._m_rebuilds.inc()
        self._m_rows.inc(len(rows))
        self._h_batch.observe(len(rows))
        self._h_latency.observe(elapsed)
        if self.on_advance is not None:
            self.on_advance()
        return len(rows)
