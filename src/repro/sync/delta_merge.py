"""In-memory delta merge (Table 2, DS technique (i)).

Periodically folds the in-memory delta store into the main column
store.  Implements the survey's two optimizations:

* **threshold-based change propagation** — merge fires only once the
  delta exceeds a row-count threshold (Oracle/Heatwave/BLU style);
* **two-phase transaction-based data migration** (SQL Server style) —
  phase 1 snapshots the delta up to a cut timestamp while new commits
  keep landing in the (remaining) delta; phase 2 atomically applies
  deletes and appends the collapsed rows as a new segment.  Readers
  never observe a half-merged store: until phase 2 completes they see
  main + full delta, afterwards main' + residual delta.

The default merge is *batch-vectorized*: the delta drains as a
columnar :class:`~repro.storage.delta_batch.DeltaBatch`, collapses
with one NumPy scatter, and lands via the column store's bulk
``append_batch``/``delete_batch`` path.  ``vectorized=False`` keeps
the original entry-at-a-time loop as a differential reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.types import rows_to_columns
from ..obs import get_registry
from ..storage.column_store import ColumnStore
from ..storage.delta_store import InMemoryDeltaStore, collapse_entries


@dataclass
class MergeStats:
    merges: int = 0
    rows_merged: int = 0
    tombstones_applied: int = 0
    merge_time_us: float = 0.0

    def record(self, rows: int, tombstones: int, elapsed_us: float) -> None:
        self.merges += 1
        self.rows_merged += rows
        self.tombstones_applied += tombstones
        self.merge_time_us += elapsed_us


class InMemoryDeltaMerger:
    """Threshold-driven merge of one table's delta into its column store."""

    def __init__(
        self,
        delta: InMemoryDeltaStore,
        main: ColumnStore,
        cost: CostModel | None = None,
        threshold_rows: int = 1024,
        on_advance=None,
        vectorized: bool = True,
    ):
        if threshold_rows < 1:
            raise ValueError("threshold_rows must be >= 1")
        self.delta = delta
        self.main = main
        self._cost = cost or CostModel()
        self.threshold_rows = threshold_rows
        #: Called (no args) after a merge advances the AP image — scan
        #: caches over ``main`` hook invalidation here.
        self.on_advance = on_advance
        self.vectorized = vectorized
        self.stats = MergeStats()
        registry = get_registry()
        self._m_merges = registry.counter("sync.delta_merge.events")
        self._m_rows = registry.counter("sync.delta_merge.rows")
        self._h_batch = registry.histogram(
            "sync.batch_rows", technique="delta_merge"
        )
        self._h_latency = registry.histogram(
            "sync.merge_latency_us", technique="delta_merge"
        )

    def should_merge(self) -> bool:
        return len(self.delta) >= self.threshold_rows

    def maybe_merge(self, up_to_ts: Timestamp | None = None) -> int:
        """Merge if over threshold; returns rows merged (0 if skipped)."""
        if not self.should_merge():
            return 0
        return self.merge(up_to_ts)

    def merge(self, up_to_ts: Timestamp | None = None) -> int:
        """Run the two-phase migration; returns rows moved into main."""
        start = self._cost.now_us()
        cut = up_to_ts if up_to_ts is not None else self.delta.max_commit_ts()
        moved = (
            self._merge_vectorized(cut)
            if self.vectorized
            else self._merge_scalar(cut)
        )
        if moved is None:
            return 0
        rows, tombstones, drained = moved
        elapsed = self._cost.now_us() - start
        self.stats.record(rows, tombstones, elapsed)
        self._m_merges.inc()
        self._m_rows.inc(rows)
        self._h_batch.observe(drained)
        self._h_latency.observe(elapsed)
        if self.on_advance is not None:
            self.on_advance()
        return rows

    def _merge_scalar(self, cut: Timestamp):
        # Phase 1: detach the prefix of the delta up to the cut.
        batch = self.delta.drain_up_to(cut)
        if not batch:
            return None
        live, tombstones = collapse_entries(batch)
        # Phase 2: apply atomically to the main store.
        stale = set(live) | tombstones
        self.main.delete_keys(stale)
        if live:
            rows = list(live.values())
            self._cost.charge_rows(self._cost.merge_per_row_us, len(rows))
            self.main.append_rows(rows, commit_ts=cut)
        self.main.advance_sync_ts(cut)
        return len(live), len(tombstones), len(batch)

    def _merge_vectorized(self, cut: Timestamp):
        # Phase 1: detach the prefix columnar — no DeltaEntry objects.
        batch = self.delta.drain_batch_up_to(cut)
        n = len(batch)
        if n == 0:
            return None
        collapsed = batch.collapse()
        # Phase 2: one bulk delete + one bulk seal.
        self.main.delete_batch(collapsed.touched_keys())
        if collapsed.live_keys:
            self._cost.charge_rows(
                self._cost.merge_per_row_us, len(collapsed.live_keys)
            )
            arrays = rows_to_columns(self.delta.schema, collapsed.live_rows)
            self.main.append_batch(arrays, collapsed.live_keys, commit_ts=cut)
        self.main.advance_sync_ts(cut)
        return len(collapsed.live_keys), len(collapsed.tombstones), n
