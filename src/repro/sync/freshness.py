"""Freshness tracking.

Data freshness — how stale the analytical view is relative to committed
OLTP truth — is one of the two axes of the paper's central trade-off
(workload isolation vs freshness).  We measure it as the *commit
timestamp distance* between the newest committed transaction and the
newest transaction visible to analytical reads, plus (optionally) the
simulated age of that gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..common.clock import Timestamp
from ..common.metrics import FreshnessRecorder


@dataclass
class FreshnessProbe:
    """One observation: how far behind the AP view was at query time."""

    query_ts: Timestamp
    visible_ts: Timestamp

    @property
    def lag(self) -> int:
        return max(0, self.query_ts - self.visible_ts)


class FreshnessTracker:
    """Samples freshness by comparing two timestamp providers.

    ``latest_commit_ts`` yields the newest committed transaction ts;
    ``visible_ts`` yields the newest ts reflected in the analytical
    read path (column store max ts, sealed delta ts, ... depending on
    the architecture).
    """

    def __init__(
        self,
        latest_commit_ts: Callable[[], Timestamp],
        visible_ts: Callable[[], Timestamp],
    ):
        self._latest = latest_commit_ts
        self._visible = visible_ts
        self.recorder = FreshnessRecorder()
        self.probes: list[FreshnessProbe] = []

    def current_lag(self) -> int:
        return max(0, self._latest() - self._visible())

    def probe(self) -> FreshnessProbe:
        """Record and return a freshness observation."""
        sample = FreshnessProbe(query_ts=self._latest(), visible_ts=self._visible())
        self.probes.append(sample)
        self.recorder.record(lag_ts=sample.lag)
        return sample

    def mean_lag(self) -> float:
        return self.recorder.mean_lag_ts()

    def score(self) -> float:
        """1.0 = always perfectly fresh; decays with mean version lag."""
        return self.recorder.freshness_score()
