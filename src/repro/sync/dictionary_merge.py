"""Dictionary-encoded sorting merge (SAP HANA style, §2.2(3)).

HANA's main store keeps every column dictionary *sorted*; the L2 delta
arrives with its own unsorted dictionary.  The merge rebuilds a single
sorted dictionary over the union of values and remaps both code
vectors — the "dictionary-encoded sorting merge" the survey names as a
DS optimization.  The function is pure so the HANA-style engine and
the ablation benches can use it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.cost import CostModel
from ..storage.compression import DictionaryEncoding


@dataclass
class DictionaryMergeResult:
    merged: DictionaryEncoding
    old_dictionary_size: int
    new_dictionary_size: int
    values_remapped: int


def sorted_dictionary_merge(
    main: DictionaryEncoding,
    delta_values: np.ndarray,
    cost: CostModel | None = None,
) -> DictionaryMergeResult:
    """Merge ``delta_values`` into dictionary-encoded ``main``.

    Builds the union dictionary (sorted, deduplicated), remaps the main
    codes through an old->new code translation table (cheap: one gather
    per value), and encodes the delta against the new dictionary.
    """
    cost = cost or CostModel()
    old_dict = main.dictionary
    if len(delta_values):
        union = np.unique(np.concatenate([old_dict, delta_values]))
    else:
        union = old_dict
    # Translation table: position of each old dictionary entry in the union.
    translate = np.searchsorted(union, old_dict)
    new_main_codes = translate[main.codes].astype(np.int32)
    delta_codes = np.searchsorted(union, delta_values).astype(np.int32)
    merged_codes = np.concatenate([new_main_codes, delta_codes])
    total = len(merged_codes)
    cost.charge(cost.dict_rebuild_per_value_us * (len(union) + total))
    merged = DictionaryEncoding(dictionary=union, codes=merged_codes)
    return DictionaryMergeResult(
        merged=merged,
        old_dictionary_size=len(old_dict),
        new_dictionary_size=len(union),
        values_remapped=total,
    )


def sorted_dictionary_merge_many(
    mains: dict[str, DictionaryEncoding],
    delta_arrays: dict[str, np.ndarray],
    cost: CostModel | None = None,
) -> dict[str, DictionaryMergeResult]:
    """Batched variant: merge a whole delta batch into every
    dictionary-encoded column of a table in one call.

    Each column still performs one union + two ``searchsorted`` remaps
    (those are already vectorized); batching here means the engine-side
    merge makes one call per table instead of one per column per row
    group, so the per-call simulated overhead is charged once.
    """
    cost = cost or CostModel()
    results: dict[str, DictionaryMergeResult] = {}
    for name, main in mains.items():
        delta = delta_arrays.get(name)
        if delta is None:
            delta = np.empty(0, dtype=main.dictionary.dtype)
        results[name] = sorted_dictionary_merge(main, delta, cost)
    return results
