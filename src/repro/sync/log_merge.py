"""Log-based (disk) delta merge (Table 2, DS technique (ii)).

TiDB-style: committed changes accumulate as sealed delta log files on
the columnar side; the merger periodically reads them back (paying page
I/O — the technique's "High Merge Cost") and folds the collapsed images
into the column store.  Each file's B+-tree key index lets the merger
drop superseded entries without decoding whole files when a newer file
already rewrote the key.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.cost import CostModel
from ..obs import get_registry
from ..storage.column_store import ColumnStore
from ..storage.delta_log import DeltaLogFile, LogDeltaManager
from ..storage.delta_store import DeltaEntry, DeltaKind


@dataclass
class LogMergeStats:
    merges: int = 0
    files_merged: int = 0
    entries_read: int = 0
    entries_superseded: int = 0
    rows_merged: int = 0
    pages_read: int = 0
    merge_time_us: float = 0.0


class LogDeltaMerger:
    """Folds sealed delta-log files into one table's column store."""

    def __init__(
        self,
        log: LogDeltaManager,
        main: ColumnStore,
        cost: CostModel | None = None,
        threshold_files: int = 4,
        on_advance=None,
    ):
        self.log = log
        self.main = main
        self._cost = cost or CostModel()
        self.threshold_files = threshold_files
        #: Called (no args) after a merge advances the AP image — scan
        #: caches over ``main`` hook invalidation here.
        self.on_advance = on_advance
        self.stats = LogMergeStats()
        registry = get_registry()
        self._m_merges = registry.counter("sync.log_merge.events")
        self._m_rows = registry.counter("sync.log_merge.rows")

    def should_merge(self) -> bool:
        return len(self.log.files) >= self.threshold_files

    def maybe_merge(self, seal_first: bool = False) -> int:
        if seal_first:
            self.log.seal()
        if not self.should_merge():
            return 0
        return self.merge()

    def merge(self, seal_first: bool = False) -> int:
        """Merge every sealed file; returns rows installed into main."""
        start = self._cost.now_us()
        if seal_first:
            self.log.seal()
        files = self.log.drain_files()
        if not files:
            return 0
        rows_merged = self._merge_files(files)
        self.stats.merges += 1
        self.stats.merge_time_us += self._cost.now_us() - start
        self._m_merges.inc()
        self._m_rows.inc(rows_merged)
        if self.on_advance is not None:
            self.on_advance()
        return rows_merged

    def _merge_files(self, files: list[DeltaLogFile]) -> int:
        # Newest-file-wins: walk files newest-first and use each file's
        # B+-tree index to skip keys already superseded.
        winners: dict[object, DeltaEntry] = {}
        max_ts = 0
        for file in reversed(files):
            self._cost.charge(self._cost.page_read_us * file.page_count())
            self.stats.pages_read += file.page_count()
            self.stats.files_merged += 1
            max_ts = max(max_ts, file.max_commit_ts)
            for key in file.key_index.keys():
                self._cost.charge(self._cost.index_lookup_us)
                if key in winners:
                    self.stats.entries_superseded += 1
                    continue
                entry = file.lookup(_untuple(key))
                assert entry is not None
                winners[key] = entry
            self.stats.entries_read += len(file)
        tombstones = [
            _untuple(k) for k, e in winners.items() if e.kind is DeltaKind.DELETE
        ]
        live = {
            _untuple(k): e.row for k, e in winners.items() if e.kind is not DeltaKind.DELETE
        }
        if tombstones:
            self.main.delete_keys(tombstones)
        rows = list(live.values())
        if rows:
            self._cost.charge_rows(self._cost.merge_per_row_us, len(rows))
            self.main.append_rows(rows, commit_ts=max_ts)
        if max_ts:
            self.main.advance_sync_ts(max_ts)
        self.stats.rows_merged += len(rows)
        return len(rows)


def _untuple(index_key):
    """Delta-log indexes wrap scalar keys in 1-tuples; unwrap them."""
    if isinstance(index_key, tuple) and len(index_key) == 1:
        return index_key[0]
    return index_key
