"""Log-based (disk) delta merge (Table 2, DS technique (ii)).

TiDB-style: committed changes accumulate as sealed delta log files on
the columnar side; the merger periodically reads them back (paying page
I/O — the technique's "High Merge Cost") and folds the collapsed images
into the column store.  Each file's B+-tree key index lets the merger
drop superseded entries without decoding whole files when a newer file
already rewrote the key.

The default merge is *batch-vectorized*: all drained files concatenate
into one columnar :class:`~repro.storage.delta_batch.DeltaBatch` whose
last-writer-wins collapse picks exactly the entries the scalar
newest-file-first index walk would (files are commit-ordered, and each
file's index already keeps only the newest position per key), then the
survivors land via ``delete_batch``/``append_batch``.  The simulated
page-I/O and index-probe charges are kept identical to the scalar
reference (``vectorized=False``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.cost import CostModel
from ..common.types import rows_to_columns
from ..obs import get_registry
from ..storage.column_store import ColumnStore
from ..storage.delta_batch import DeltaBatch
from ..storage.delta_log import DeltaLogFile, LogDeltaManager
from ..storage.delta_store import DeltaEntry, DeltaKind


@dataclass
class LogMergeStats:
    merges: int = 0
    files_merged: int = 0
    entries_read: int = 0
    entries_superseded: int = 0
    rows_merged: int = 0
    pages_read: int = 0
    merge_time_us: float = 0.0


class LogDeltaMerger:
    """Folds sealed delta-log files into one table's column store."""

    def __init__(
        self,
        log: LogDeltaManager,
        main: ColumnStore,
        cost: CostModel | None = None,
        threshold_files: int = 4,
        on_advance=None,
        vectorized: bool = True,
    ):
        self.log = log
        self.main = main
        self._cost = cost or CostModel()
        self.threshold_files = threshold_files
        #: Called (no args) after a merge advances the AP image — scan
        #: caches over ``main`` hook invalidation here.
        self.on_advance = on_advance
        self.vectorized = vectorized
        self.stats = LogMergeStats()
        registry = get_registry()
        self._m_merges = registry.counter("sync.log_merge.events")
        self._m_rows = registry.counter("sync.log_merge.rows")
        self._h_batch = registry.histogram(
            "sync.batch_rows", technique="log_merge"
        )
        self._h_latency = registry.histogram(
            "sync.merge_latency_us", technique="log_merge"
        )

    def should_merge(self) -> bool:
        return len(self.log.files) >= self.threshold_files

    def maybe_merge(self, seal_first: bool = False) -> int:
        if seal_first:
            self.log.seal()
        if not self.should_merge():
            return 0
        return self.merge()

    def merge(self, seal_first: bool = False) -> int:
        """Merge every sealed file; returns rows installed into main."""
        start = self._cost.now_us()
        if seal_first:
            self.log.seal()
        files = self.log.drain_files()
        if not files:
            return 0
        entries_total = sum(len(f) for f in files)
        rows_merged = (
            self._merge_files_vectorized(files)
            if self.vectorized
            else self._merge_files(files)
        )
        elapsed = self._cost.now_us() - start
        self.stats.merges += 1
        self.stats.merge_time_us += elapsed
        self._m_merges.inc()
        self._m_rows.inc(rows_merged)
        self._h_batch.observe(entries_total)
        self._h_latency.observe(elapsed)
        if self.on_advance is not None:
            self.on_advance()
        return rows_merged

    def _merge_files(self, files: list[DeltaLogFile]) -> int:
        # Newest-file-wins: walk files newest-first and use each file's
        # B+-tree index to skip keys already superseded.
        winners: dict[object, DeltaEntry] = {}
        max_ts = 0
        for file in reversed(files):
            self._cost.charge(self._cost.page_read_us * file.page_count())
            self.stats.pages_read += file.page_count()
            self.stats.files_merged += 1
            max_ts = max(max_ts, file.max_commit_ts)
            for key in file.key_index.keys():
                self._cost.charge(self._cost.index_lookup_us)
                if key in winners:
                    self.stats.entries_superseded += 1
                    continue
                entry = file.lookup(_untuple(key))
                assert entry is not None
                winners[key] = entry
            self.stats.entries_read += len(file)
        tombstones = [
            _untuple(k) for k, e in winners.items() if e.kind is DeltaKind.DELETE
        ]
        live = {
            _untuple(k): e.row for k, e in winners.items() if e.kind is not DeltaKind.DELETE
        }
        if tombstones:
            self.main.delete_keys(tombstones)
        rows = list(live.values())
        if rows:
            self._cost.charge_rows(self._cost.merge_per_row_us, len(rows))
            self.main.append_rows(rows, commit_ts=max_ts)
        if max_ts:
            self.main.advance_sync_ts(max_ts)
        self.stats.rows_merged += len(rows)
        return len(rows)

    def _merge_files_vectorized(self, files: list[DeltaLogFile]) -> int:
        # Charge the same page reads and index probes as the scalar walk.
        max_ts = 0
        index_probes = 0
        kinds: list[int] = []
        keys: list = []
        rows: list = []
        ts: list = []
        for file in files:
            self._cost.charge(self._cost.page_read_us * file.page_count())
            self.stats.pages_read += file.page_count()
            self.stats.files_merged += 1
            max_ts = max(max_ts, file.max_commit_ts)
            index_probes += file.indexed_key_count()
            f_kinds, f_keys, f_rows, f_ts = file.columns()
            kinds.extend(f_kinds)
            keys.extend(f_keys)
            rows.extend(f_rows)
            ts.extend(f_ts)
            self.stats.entries_read += len(file)
        self._cost.charge_rows(self._cost.index_lookup_us, max(index_probes, 1))
        batch = DeltaBatch.from_columns(kinds, keys, rows, ts)
        collapsed = batch.collapse()
        self.stats.entries_superseded += index_probes - (
            len(collapsed.live_keys) + len(collapsed.tombstones)
        )
        if collapsed.tombstones:
            self.main.delete_batch(collapsed.tombstones)
        if collapsed.live_keys:
            self._cost.charge_rows(
                self._cost.merge_per_row_us, len(collapsed.live_keys)
            )
            arrays = rows_to_columns(self.main.schema, collapsed.live_rows)
            self.main.append_batch(arrays, collapsed.live_keys, commit_ts=max_ts)
        if max_ts:
            self.main.advance_sync_ts(max_ts)
        self.stats.rows_merged += len(collapsed.live_keys)
        return len(collapsed.live_keys)


def _untuple(index_key):
    """Delta-log indexes wrap scalar keys in 1-tuples; unwrap them."""
    if isinstance(index_key, tuple) and len(index_key) == 1:
        return index_key[0]
    return index_key
