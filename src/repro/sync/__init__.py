"""Data synchronization (DS) techniques from Table 2 of the survey."""

from .delta_merge import InMemoryDeltaMerger, MergeStats
from .dictionary_merge import (
    DictionaryMergeResult,
    sorted_dictionary_merge,
    sorted_dictionary_merge_many,
)
from .freshness import FreshnessProbe, FreshnessTracker
from .log_merge import LogDeltaMerger, LogMergeStats
from .rebuild import ColumnStoreRebuilder, RebuildStats

__all__ = [
    "ColumnStoreRebuilder",
    "DictionaryMergeResult",
    "FreshnessProbe",
    "FreshnessTracker",
    "InMemoryDeltaMerger",
    "LogDeltaMerger",
    "LogMergeStats",
    "MergeStats",
    "RebuildStats",
    "sorted_dictionary_merge",
    "sorted_dictionary_merge_many",
]
