"""Storage substrates: row stores, column store, delta stores, B+-tree."""

from .btree import BPlusTree
from .column_store import (
    ColumnScanResult,
    ColumnStore,
    Segment,
    ZoneMap,
    build_zone_map,
    scan_mode,
)
from .compression import (
    BitPackedEncoding,
    DictionaryEncoding,
    Encoding,
    PlainEncoding,
    RunLengthEncoding,
    choose_encoding,
    encoding_for_name,
)
from .delta_batch import CollapseResult, DeltaBatch, collapse_batch, encode_keys
from .delta_log import DeltaLogFile, LogDeltaManager
from .delta_store import DeltaEntry, DeltaKind, InMemoryDeltaStore, collapse_entries
from .disk_row_store import DiskRowStore
from .imcu import InMemoryColumnUnit, SnapshotMetadataUnit
from .mv_index import MultiVersionIndex
from .pages import PAGE_CAPACITY, BufferPool, Page
from .row_store import MVCCRowStore, RowVersion

__all__ = [
    "BPlusTree",
    "BitPackedEncoding",
    "BufferPool",
    "CollapseResult",
    "ColumnScanResult",
    "ColumnStore",
    "DeltaBatch",
    "DeltaEntry",
    "DeltaKind",
    "DeltaLogFile",
    "DictionaryEncoding",
    "DiskRowStore",
    "Encoding",
    "InMemoryColumnUnit",
    "InMemoryDeltaStore",
    "LogDeltaManager",
    "MVCCRowStore",
    "MultiVersionIndex",
    "PAGE_CAPACITY",
    "Page",
    "PlainEncoding",
    "RowVersion",
    "RunLengthEncoding",
    "Segment",
    "SnapshotMetadataUnit",
    "ZoneMap",
    "build_zone_map",
    "choose_encoding",
    "collapse_batch",
    "collapse_entries",
    "encode_keys",
    "encoding_for_name",
    "scan_mode",
]
