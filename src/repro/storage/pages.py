"""Slotted pages and an LRU buffer pool.

The substrate for the "Disk Row Store" of architecture (c): a classic
disk-based RDBMS layout where rows live in fixed-capacity slotted pages,
reads go through a buffer pool, and a miss costs two orders of magnitude
more than any in-memory operation.  That cost gap is the entire reason
Heatwave-style systems bolt a distributed in-memory column store on top.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..common.cost import CostModel
from ..common.types import Row

PAGE_CAPACITY = 64  # rows per page


@dataclass
class Page:
    """A slotted heap page; ``None`` slots are free."""

    page_id: int
    slots: list[Row | None] = field(default_factory=lambda: [None] * PAGE_CAPACITY)
    dirty: bool = False

    def free_slot(self) -> int | None:
        for i, slot in enumerate(self.slots):
            if slot is None:
                return i
        return None

    def live_rows(self) -> int:
        return sum(1 for s in self.slots if s is not None)


class BufferPool:
    """LRU cache of pages over a simulated disk, with cost accounting."""

    def __init__(self, disk: dict[int, Page], capacity: int, cost: CostModel):
        if capacity < 1:
            raise ValueError("buffer pool needs capacity >= 1")
        self._disk = disk
        self._capacity = capacity
        self._cost = cost
        self._resident: OrderedDict[int, Page] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def fetch(self, page_id: int) -> Page:
        """Pin ``page_id`` resident, paying hit or miss cost."""
        page = self._resident.get(page_id)
        if page is not None:
            self._resident.move_to_end(page_id)
            self._cost.charge(self._cost.buffer_hit_us)
            self.hits += 1
            return page
        self.misses += 1
        self._cost.charge(self._cost.page_read_us)
        page = self._disk[page_id]
        self._admit(page)
        return page

    def _admit(self, page: Page) -> None:
        self._resident[page.page_id] = page
        self._resident.move_to_end(page.page_id)
        while len(self._resident) > self._capacity:
            evicted_id, evicted = self._resident.popitem(last=False)
            self.evictions += 1
            if evicted.dirty:
                self._cost.charge(self._cost.page_write_us)
                evicted.dirty = False

    def flush_all(self) -> int:
        """Write back every dirty resident page; returns pages written."""
        written = 0
        for page in self._resident.values():
            if page.dirty:
                self._cost.charge(self._cost.page_write_us)
                page.dirty = False
                written += 1
        return written

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resident_pages(self) -> int:
        return len(self._resident)
