"""A multi-version secondary index (MV-PBT style).

§2.2's "other HTAP-related techniques" points at new HTAP indexing
work (MV-PBT, multi-versioned indexes for snapshot isolation).  The
plain secondary index in :mod:`repro.storage.row_store` reflects only
the *latest* state, so an old snapshot probing it must re-verify every
hit; analytical queries at older snapshots lose index usability
entirely once data churns.

This index versions its entries instead: each (value, key) posting
carries a ``[begin_ts, end_ts)`` lifetime, so a lookup *at a snapshot*
returns exactly the keys whose indexed column held the value at that
time — no verification reads needed.  Old postings are garbage
collected once no snapshot can see them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.clock import INFINITY_TS, Timestamp
from ..common.cost import CostModel
from ..common.errors import StorageError
from ..common.types import Key
from .btree import BPlusTree


@dataclass
class _Posting:
    """One lifetime of (value -> key)."""

    key: Key
    begin_ts: Timestamp
    end_ts: Timestamp = INFINITY_TS

    def visible_at(self, snapshot_ts: Timestamp) -> bool:
        return self.begin_ts <= snapshot_ts < self.end_ts


class MultiVersionIndex:
    """B+-tree of (value,) -> list of versioned postings."""

    def __init__(self, column: str, cost: CostModel | None = None):
        self.column = column
        self._cost = cost or CostModel()
        self._tree = BPlusTree()
        self._postings = 0

    # ------------------------------------------------------------- maintenance

    def _bucket(self, value) -> list[_Posting]:
        bucket = self._tree.get((value,))
        if bucket is None:
            bucket = []
            self._tree.insert((value,), bucket)
        return bucket

    def on_insert(self, key: Key, value, commit_ts: Timestamp) -> None:
        """The row for ``key`` now has ``value`` as of ``commit_ts``."""
        self._cost.charge(self._cost.index_lookup_us)
        self._bucket(value).append(_Posting(key=key, begin_ts=commit_ts))
        self._postings += 1

    def on_update(
        self, key: Key, old_value, new_value, commit_ts: Timestamp
    ) -> None:
        """Close the old posting's lifetime, open a new one."""
        if old_value == new_value:
            return
        self.on_delete(key, old_value, commit_ts)
        self.on_insert(key, new_value, commit_ts)

    def on_delete(self, key: Key, value, commit_ts: Timestamp) -> None:
        self._cost.charge(self._cost.index_lookup_us)
        bucket = self._tree.get((value,))
        if not bucket:
            raise StorageError(
                f"mv-index on {self.column!r}: no posting for {value!r}/{key!r}"
            )
        for posting in reversed(bucket):
            if posting.key == key and posting.end_ts == INFINITY_TS:
                posting.end_ts = commit_ts
                return
        raise StorageError(
            f"mv-index on {self.column!r}: no live posting for {value!r}/{key!r}"
        )

    # ------------------------------------------------------------- reads

    def lookup(self, value, snapshot_ts: Timestamp) -> list[Key]:
        """Keys whose column equalled ``value`` at ``snapshot_ts``."""
        self._cost.charge(self._cost.index_lookup_us)
        bucket = self._tree.get((value,)) or []
        hits = [p.key for p in bucket if p.visible_at(snapshot_ts)]
        self._cost.charge_rows(self._cost.index_scan_per_row_us, max(len(bucket), 1))
        return hits

    def range(self, low, high, snapshot_ts: Timestamp) -> list[tuple]:
        """(value, key) pairs with low <= value <= high at the snapshot."""
        self._cost.charge(self._cost.index_lookup_us)
        out: list[tuple] = []
        scanned = 0
        low_key = None if low is None else (low,)
        high_key = None if high is None else (high, _TOP)
        for (value,), bucket in self._tree.range(low_key, high_key):
            for posting in bucket:
                scanned += 1
                if posting.visible_at(snapshot_ts):
                    out.append((value, posting.key))
        self._cost.charge_rows(self._cost.index_scan_per_row_us, max(scanned, 1))
        return out

    # ------------------------------------------------------------- GC / stats

    def vacuum(self, oldest_active_ts: Timestamp) -> int:
        """Drop postings invisible to every snapshot >= the horizon."""
        reclaimed = 0
        dead_values = []
        for index_key, bucket in self._tree.items():
            keep = [p for p in bucket if p.end_ts > oldest_active_ts]
            reclaimed += len(bucket) - len(keep)
            bucket[:] = keep
            if not keep:
                dead_values.append(index_key)
        for index_key in dead_values:
            self._tree.delete(index_key)
        self._postings -= reclaimed
        return reclaimed

    def posting_count(self) -> int:
        return self._postings

    def value_count(self) -> int:
        return len(self._tree)


class _Top:
    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, _Top)

    def __hash__(self) -> int:
        return hash("_Top")


_TOP = _Top()
