"""Columnar compression codecs.

The survey's column stores all compress their main data (dictionary
encoding in HANA, IMCU compression in Oracle, RLE everywhere).  We
implement the three classics plus plain storage, with a heuristic
chooser.  Every codec round-trips exactly (property-tested) and reports
its encoded size so the benches can measure memory footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np


def _object_bytes(data: np.ndarray) -> int:
    """Footprint estimate for object columns: payload length + 8 bytes
    of pointer per cell.  ``map(len, ...)`` covers the all-string case
    at C speed; anything else falls back to stringification."""
    try:
        return int(sum(map(len, data))) + 8 * len(data)
    except TypeError:
        return int(sum(len(str(v)) + 8 for v in data))


class Encoding:
    """A sealed, immutable encoded column segment."""

    name: str = "base"

    def __len__(self) -> int:
        raise NotImplementedError

    def decode(self) -> np.ndarray:
        """Materialize the full column as a NumPy array."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Approximate encoded footprint in bytes."""
        raise NotImplementedError

    def take(self, positions: np.ndarray) -> np.ndarray:
        """Gather specific positions (default: decode then take)."""
        return self.decode()[positions]

    def slice(self, start: int, stop: int) -> "Encoding":
        """A view-like encoding over rows ``[start, stop)``.

        Morsel-driven scans evaluate predicates per row range; every
        codec can cut itself without decoding, so per-morsel work (and
        its simulated charge) stays proportional to the morsel, not the
        segment.
        """
        raise NotImplementedError


@dataclass
class PlainEncoding(Encoding):
    """Raw array storage; the fallback for incompressible data."""

    data: np.ndarray
    name = "plain"

    def __len__(self) -> int:
        return len(self.data)

    def decode(self) -> np.ndarray:
        # Zero-copy, but sealed: decode() results feed kernels that
        # must never write back into the stored segment.
        view = self.data.view()
        view.flags.writeable = False
        return view

    def size_bytes(self) -> int:
        if self.data.dtype == object:
            return _object_bytes(self.data)
        return int(self.data.nbytes)

    def take(self, positions: np.ndarray) -> np.ndarray:
        return self.data[positions]

    def slice(self, start: int, stop: int) -> "PlainEncoding":
        return PlainEncoding(data=self.data[start:stop])


@dataclass
class DictionaryEncoding(Encoding):
    """Sorted dictionary + integer codes — HANA's main-store format.

    The dictionary is kept sorted so that merges can be performed as
    the "dictionary-encoded sorting merge" of §2.2(3) and so range
    predicates can be answered on codes.
    """

    dictionary: np.ndarray   # sorted unique values
    codes: np.ndarray        # int32 positions into the dictionary
    name = "dictionary"

    @classmethod
    def encode(cls, values: np.ndarray) -> "DictionaryEncoding":
        if values.dtype == object:
            # np.unique on object arrays argsorts with Python-level
            # comparisons; a set + dict lookup builds the same sorted
            # dictionary and codes in one linear pass.
            try:
                ordered = sorted(set(values.tolist()))
            except TypeError:  # incomparable mixed types
                ordered = None
            if ordered is not None:
                code_of = {v: i for i, v in enumerate(ordered)}
                codes = np.fromiter(
                    map(code_of.__getitem__, values.tolist()),
                    dtype=np.int32,
                    count=len(values),
                )
                return cls(
                    dictionary=np.array(ordered, dtype=object), codes=codes
                )
        dictionary, codes = np.unique(values, return_inverse=True)
        return cls(dictionary=dictionary, codes=codes.astype(np.int32))

    def __len__(self) -> int:
        return len(self.codes)

    def decode(self) -> np.ndarray:
        return self.dictionary[self.codes]

    def size_bytes(self) -> int:
        if self.dictionary.dtype == object:
            dict_bytes = _object_bytes(self.dictionary)
        else:
            dict_bytes = int(self.dictionary.nbytes)
        return dict_bytes + int(self.codes.nbytes)

    def take(self, positions: np.ndarray) -> np.ndarray:
        return self.dictionary[self.codes[positions]]

    def cardinality(self) -> int:
        return len(self.dictionary)

    def slice(self, start: int, stop: int) -> "DictionaryEncoding":
        # The dictionary object is shared, so morsels of one segment
        # keep code spaces that merge by identity (no remap).
        return DictionaryEncoding(
            dictionary=self.dictionary, codes=self.codes[start:stop]
        )

    # --------------------------------------------------- code-space predicates
    #
    # The dictionary is sorted, so codes order exactly like values and
    # value comparisons rewrite to integer comparisons on the codes —
    # filters run on the encoded segment without decompressing it.

    def code_space_safe(self) -> bool:
        """Whether code-space evaluation is exact for this dictionary.

        NaN sorts to the end of the dictionary but compares False to
        everything, so range rewrites would wrongly include NaN rows;
        callers must fall back to decoded evaluation in that case.
        """
        d = self.dictionary
        return not (d.dtype.kind == "f" and bool(np.isnan(d).any()))

    def code_cut(self, value, side: str) -> int:
        """The code-space boundary for ``value`` (``np.searchsorted``).

        May raise TypeError for values incomparable with the dictionary
        dtype — callers treat that as "not evaluable in code space".
        """
        return int(np.searchsorted(self.dictionary, value, side=side))

    def code_for(self, value) -> int | None:
        """The exact code of ``value``, or None when absent."""
        i = self.code_cut(value, "left")
        if i < len(self.dictionary) and bool(self.dictionary[i] == value):
            return i
        return None

    def codes_for_values(self, values) -> np.ndarray:
        """Codes of the ``values`` present in the dictionary.

        Values are coerced to the dictionary dtype first — the same
        cast ``np.isin`` applies on decoded data, so IN-list semantics
        match the decoded path exactly.
        """
        vals = np.asarray(list(values), dtype=self.dictionary.dtype)
        if len(vals) == 0 or len(self.dictionary) == 0:
            return np.array([], dtype=np.int32)
        idx = np.searchsorted(self.dictionary, vals, side="left")
        idx = np.minimum(idx, len(self.dictionary) - 1)
        present = np.asarray(self.dictionary[idx] == vals, dtype=bool)
        return idx[present].astype(np.int32)


@dataclass
class RunLengthEncoding(Encoding):
    """(value, run length) pairs; wins on sorted or low-churn columns."""

    values: np.ndarray
    run_ends: np.ndarray  # cumulative ends, run i covers [run_ends[i-1], run_ends[i])
    name = "rle"

    @classmethod
    def encode(cls, values: np.ndarray) -> "RunLengthEncoding":
        if len(values) == 0:
            return cls(values=values[:0], run_ends=np.array([], dtype=np.int64))
        if values.dtype == object:
            change = np.array(
                [True, *(values[i] != values[i - 1] for i in range(1, len(values)))]
            )
        else:
            change = np.empty(len(values), dtype=bool)
            change[0] = True
            np.not_equal(values[1:], values[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        run_values = values[starts]
        run_ends = np.append(starts[1:], len(values)).astype(np.int64)
        return cls(values=run_values, run_ends=run_ends)

    def __len__(self) -> int:
        return int(self.run_ends[-1]) if len(self.run_ends) else 0

    def lengths(self) -> np.ndarray:
        """Per-run lengths; with :attr:`values` this is enough to
        evaluate a predicate per *run* and ``np.repeat`` the run mask —
        run-space filtering without materializing the column."""
        if len(self.run_ends) == 0:
            return np.array([], dtype=np.int64)
        return np.diff(np.concatenate(([0], self.run_ends)))

    def decode(self) -> np.ndarray:
        if len(self.run_ends) == 0:
            return self.values[:0].copy()
        return np.repeat(self.values, self.lengths())

    def size_bytes(self) -> int:
        if self.values.dtype == object:
            value_bytes = int(sum(len(str(v)) + 8 for v in self.values))
        else:
            value_bytes = int(self.values.nbytes)
        return value_bytes + int(self.run_ends.nbytes)

    def n_runs(self) -> int:
        return len(self.values)

    def slice(self, start: int, stop: int) -> "RunLengthEncoding":
        if start >= stop or len(self.run_ends) == 0:
            return RunLengthEncoding(
                values=self.values[:0], run_ends=np.array([], dtype=np.int64)
            )
        # Runs overlapping [start, stop): first run whose end exceeds
        # start through the run containing stop-1.
        first = int(np.searchsorted(self.run_ends, start, side="right"))
        last = int(np.searchsorted(self.run_ends, stop - 1, side="right"))
        ends = self.run_ends[first : last + 1] - start
        ends[-1] = min(int(ends[-1]), stop - start)
        return RunLengthEncoding(
            values=self.values[first : last + 1], run_ends=ends
        )


@dataclass
class BitPackedEncoding(Encoding):
    """Frame-of-reference + narrow dtype for small-range integers."""

    base: int
    offsets: np.ndarray
    name = "bitpack"

    @classmethod
    def encode(cls, values: np.ndarray) -> "BitPackedEncoding":
        if len(values) == 0:
            return cls(base=0, offsets=np.array([], dtype=np.uint8))
        base = int(values.min())
        span = int(values.max()) - base
        if span < 2**8:
            dtype = np.uint8
        elif span < 2**16:
            dtype = np.uint16
        elif span < 2**32:
            dtype = np.uint32
        else:
            dtype = np.uint64
        return cls(base=base, offsets=(values - base).astype(dtype))

    def __len__(self) -> int:
        return len(self.offsets)

    def decode(self) -> np.ndarray:
        return self.offsets.astype(np.int64) + self.base

    def size_bytes(self) -> int:
        return int(self.offsets.nbytes) + 8

    def take(self, positions: np.ndarray) -> np.ndarray:
        return self.offsets[positions].astype(np.int64) + self.base

    def slice(self, start: int, stop: int) -> "BitPackedEncoding":
        return BitPackedEncoding(base=self.base, offsets=self.offsets[start:stop])


def choose_encoding(values: np.ndarray) -> Encoding:
    """Pick the cheapest codec for ``values`` by estimated size.

    Mirrors what real column stores do at segment-seal time: strings
    get dictionaries when repetitive, integers get FOR/bit-packing,
    runs get RLE, everything else stays plain.
    """
    n = len(values)
    if n == 0:
        return PlainEncoding(data=values)
    candidates: list[Encoding] = [PlainEncoding(data=values)]
    if values.dtype == object:
        unique = len(set(values.tolist()))
        if unique <= max(1, n // 2):
            candidates.append(DictionaryEncoding.encode(values))
    else:
        if np.issubdtype(values.dtype, np.integer):
            candidates.append(BitPackedEncoding.encode(values))
        # Count runs before building the encoding — high-churn columns
        # (runs > n/3) never qualify, so don't pay the full RLE build.
        n_runs = 1 + int(np.count_nonzero(values[1:] != values[:-1]))
        if n_runs <= n // 3:
            candidates.append(RunLengthEncoding.encode(values))
        unique_count = len(np.unique(values))
        if unique_count <= n // 4:
            candidates.append(DictionaryEncoding.encode(values))
    return min(candidates, key=lambda e: e.size_bytes())


def encoding_for_name(name: str, values: np.ndarray) -> Encoding:
    """Force a specific codec; used by ablation benches."""
    if name == "plain":
        return PlainEncoding(data=values)
    if name == "dictionary":
        return DictionaryEncoding.encode(values)
    if name == "rle":
        return RunLengthEncoding.encode(values)
    if name == "bitpack":
        return BitPackedEncoding.encode(values)
    raise ValueError(f"unknown encoding {name!r}")
