"""Oracle-style In-Memory Compression Units with Snapshot Metadata Units.

Architecture (a)'s analytical side (Oracle Database In-Memory in the
survey): the primary row store stays authoritative, while selected
tables are *populated* into columnar IMCUs.  Changes made after
population are not applied in place — the SMU merely records which keys
went stale, and queries patch those rows from the row store at scan
time.  When staleness crosses a threshold the unit is repopulated
(the survey's "rebuild from primary row store" DS technique).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.predicate import ALWAYS_TRUE, Predicate
from ..common.types import Key, Row, Schema, rows_to_columns
from .column_store import ColumnScanResult
from .compression import Encoding, choose_encoding
from .row_store import MVCCRowStore


@dataclass
class SnapshotMetadataUnit:
    """Tracks which populated keys have changed since population."""

    populate_ts: Timestamp = 0
    stale_keys: set = field(default_factory=set)
    new_keys: set = field(default_factory=set)

    def record_change(self, key: Key, populated: bool) -> None:
        if populated:
            self.stale_keys.add(key)
        else:
            self.new_keys.add(key)

    def staleness(self, populated_rows: int) -> float:
        if populated_rows == 0:
            return 1.0 if (self.stale_keys or self.new_keys) else 0.0
        return (len(self.stale_keys) + len(self.new_keys)) / populated_rows


class InMemoryColumnUnit:
    """One populated columnar image of a table, patched through its SMU."""

    def __init__(self, schema: Schema, row_store: MVCCRowStore, cost: CostModel):
        self.schema = schema
        self._rows = row_store
        self._cost = cost
        self._encodings: dict[str, Encoding] = {}
        self._keys: list[Key] = []
        self._key_set: set = set()
        self.smu = SnapshotMetadataUnit()
        self.populations = 0

    # ------------------------------------------------------------- populate

    def populate(self, snapshot_ts: Timestamp) -> int:
        """(Re)build the unit from the row store at ``snapshot_ts``."""
        rows = self._rows.snapshot_rows(snapshot_ts)
        self._keys = [self.schema.key_of(r) for r in rows]
        self._key_set = set(self._keys)
        if rows:
            arrays = rows_to_columns(self.schema, rows)
            self._encodings = {
                name: choose_encoding(arr) for name, arr in arrays.items()
            }
        else:
            self._encodings = {}
        self.smu = SnapshotMetadataUnit(populate_ts=snapshot_ts)
        self.populations += 1
        self._cost.charge_rows(self._cost.rebuild_per_row_us, max(len(rows), 1))
        return len(rows)

    @property
    def populated(self) -> bool:
        return self.populations > 0

    def populated_rows(self) -> int:
        return len(self._keys)

    def memory_bytes(self) -> int:
        return sum(e.size_bytes() for e in self._encodings.values())

    # ------------------------------------------------------------- change feed

    def on_change(self, key: Key) -> None:
        """Row-store change hook: mark the key stale (or new)."""
        self.smu.record_change(key, populated=key in self._key_set)

    def staleness(self) -> float:
        return self.smu.staleness(self.populated_rows())

    # ------------------------------------------------------------- scan

    def scan(
        self,
        snapshot_ts: Timestamp,
        columns: list[str] | None = None,
        predicate: Predicate = ALWAYS_TRUE,
        patch: bool = True,
    ) -> ColumnScanResult:
        """Columnar scan patched with current row-store truth.

        Populated-and-clean rows are answered from the IMCU; stale and
        new keys are re-read from the row store at ``snapshot_ts`` —
        which is why this architecture's freshness is High in Table 1
        (at the cost of per-stale-row patch reads).
        """
        wanted = list(columns) if columns is not None else self.schema.column_names
        needed = set(wanted) | predicate.referenced_columns()
        n = len(self._keys)
        arrays: dict[str, np.ndarray] = {}
        out_keys: list[Key] = []
        if n and self._encodings:
            decoded = {name: self._encodings[name].decode() for name in needed}
            self._cost.charge(
                self._cost.column_scan_per_value_us * n * max(len(needed), 1)
            )
            stale = self.smu.stale_keys
            if stale:
                clean_mask = np.array([k not in stale for k in self._keys], dtype=bool)
            else:
                clean_mask = np.ones(n, dtype=bool)
            mask = predicate.mask(decoded) & clean_mask
            positions = np.flatnonzero(mask)
            for name in wanted:
                source = decoded.get(name)
                if source is None:
                    source = self._encodings[name].decode()
                arrays[name] = source[positions]
            out_keys = [self._keys[p] for p in positions]
        else:
            for name in wanted:
                arrays[name] = np.array(
                    [], dtype=self.schema.column(name).dtype.numpy_dtype
                )
        if not patch:
            # Isolated mode: stale keys were dropped above and no patch
            # reads happen — the scan is cheaper but the image is stale.
            return ColumnScanResult(arrays=arrays, keys=out_keys, segments_scanned=1)
        # Patch stale + brand-new keys from the row store.
        patch_keys = self.smu.stale_keys | self.smu.new_keys
        patch_rows: list[Row] = []
        patched_keys: list[Key] = []
        for key in patch_keys:
            row = self._rows.read(key, snapshot_ts)
            if row is not None and predicate.matches(row, self.schema):
                patch_rows.append(row)
                patched_keys.append(key)
        if patch_rows:
            patch_arrays = rows_to_columns(self.schema, patch_rows)
            for name in wanted:
                arrays[name] = np.concatenate([arrays[name], patch_arrays[name]])
            out_keys.extend(patched_keys)
        return ColumnScanResult(arrays=arrays, keys=out_keys, segments_scanned=1)
