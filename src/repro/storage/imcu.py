"""Oracle-style In-Memory Compression Units with Snapshot Metadata Units.

Architecture (a)'s analytical side (Oracle Database In-Memory in the
survey): the primary row store stays authoritative, while selected
tables are *populated* into columnar IMCUs.  Changes made after
population are not applied in place — the SMU merely records which keys
went stale, and queries patch those rows from the row store at scan
time.  When staleness crosses a threshold the unit is repopulated
(the survey's "rebuild from primary row store" DS technique).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.predicate import ALWAYS_TRUE, Predicate
from ..common.types import Key, Row, Schema, rows_to_columns
from ..obs.registry import get_registry
from .code_batch import CodeColumn, concat_code_parts, encode_against
from .column_store import (
    _SCAN_DEFAULTS,
    ColumnScanResult,
    ZoneMap,
    build_zone_map,
    zones_may_match,
)
from .compression import DictionaryEncoding, Encoding, choose_encoding
from .row_store import MVCCRowStore
from .segment_filter import EncodedColumns, predicate_mask


@dataclass
class SnapshotMetadataUnit:
    """Tracks which populated keys have changed since population."""

    populate_ts: Timestamp = 0
    stale_keys: set = field(default_factory=set)
    new_keys: set = field(default_factory=set)

    def record_change(self, key: Key, populated: bool) -> None:
        if populated:
            self.stale_keys.add(key)
        else:
            self.new_keys.add(key)

    def staleness(self, populated_rows: int) -> float:
        if populated_rows == 0:
            return 1.0 if (self.stale_keys or self.new_keys) else 0.0
        return (len(self.stale_keys) + len(self.new_keys)) / populated_rows


class InMemoryColumnUnit:
    """One populated columnar image of a table, patched through its SMU."""

    def __init__(self, schema: Schema, row_store: MVCCRowStore, cost: CostModel):
        self.schema = schema
        self._rows = row_store
        self._cost = cost
        self._encodings: dict[str, Encoding] = {}
        self._keys: list[Key] = []
        self._key_set: set = set()
        self.zone_maps: dict[str, ZoneMap] = {}
        self.smu = SnapshotMetadataUnit()
        self.populations = 0
        reg = get_registry()
        self._scanned_counter = reg.counter("scan.segments_scanned")
        self._pruned_counter = reg.counter("scan.segments_pruned")
        self._code_filter_counter = reg.counter("scan.code_space_filters")
        self._morsel_counter = reg.counter("parallel.morsels")

    # ------------------------------------------------------------- populate

    def populate(self, snapshot_ts: Timestamp) -> int:
        """(Re)build the unit from the row store at ``snapshot_ts``."""
        rows = self._rows.snapshot_rows(snapshot_ts)
        self._keys = [self.schema.key_of(r) for r in rows]
        self._key_set = set(self._keys)
        self._encodings = {}
        self.zone_maps = {}
        if rows:
            arrays = rows_to_columns(self.schema, rows)
            for name, arr in arrays.items():
                enc = choose_encoding(arr)
                self._encodings[name] = enc
                zone = build_zone_map(arr, enc)
                if zone is not None:
                    self.zone_maps[name] = zone
        self.smu = SnapshotMetadataUnit(populate_ts=snapshot_ts)
        self.populations += 1
        self._cost.charge_rows(self._cost.rebuild_per_row_us, max(len(rows), 1))
        return len(rows)

    @property
    def populated(self) -> bool:
        return self.populations > 0

    def populated_rows(self) -> int:
        return len(self._keys)

    def memory_bytes(self) -> int:
        return sum(e.size_bytes() for e in self._encodings.values())

    # ------------------------------------------------------------- change feed

    def on_change(self, key: Key) -> None:
        """Row-store change hook: mark the key stale (or new)."""
        self.smu.record_change(key, populated=key in self._key_set)

    def staleness(self) -> float:
        return self.smu.staleness(self.populated_rows())

    # ------------------------------------------------------------- scan

    def pruned_row_fraction(self, predicate: Predicate) -> float:
        """Fraction of populated rows the unit's zone maps would prune.

        All-or-nothing (the IMCU is one pruning granule); a
        planning-time estimate with no simulated charge.
        """
        n = self.populated_rows()
        if n == 0 or not self._encodings:
            return 0.0
        return 0.0 if zones_may_match(self.zone_maps, n, predicate) else 1.0

    def _encodable_columns(self, wanted: list[str]) -> frozenset:
        """Columns an encoded scan can hand off as dictionary codes."""
        out = set()
        for name in wanted:
            enc = self._encodings.get(name)
            if isinstance(enc, DictionaryEncoding) and enc.code_space_safe():
                out.add(name)
        return frozenset(out)

    def encoded_column_fraction(self, columns: list[str] | None = None) -> float:
        """Fraction of ``columns`` an encoded scan serves as codes.

        Planner hint for the code-space scan discount; estimates only,
        no simulated charge.
        """
        wanted = list(columns) if columns is not None else self.schema.column_names
        if not wanted or not self._encodings:
            return 0.0
        return len(self._encodable_columns(wanted)) / len(wanted)

    def scan(
        self,
        snapshot_ts: Timestamp,
        columns: list[str] | None = None,
        predicate: Predicate = ALWAYS_TRUE,
        patch: bool = True,
        *,
        prune: bool | None = None,
        code_space: bool | None = None,
        encode: bool = False,
    ) -> ColumnScanResult:
        """Columnar scan patched with current row-store truth.

        Populated-and-clean rows are answered from the IMCU; stale and
        new keys are re-read from the row store at ``snapshot_ts`` —
        which is why this architecture's freshness is High in Table 1
        (at the cost of per-stale-row patch reads).

        The unit is one pruning granule: when its zone maps exclude the
        predicate, the whole columnar side is skipped (patch reads still
        run — staleness is orthogonal to pruning).  Surviving scans
        evaluate the predicate in code/run space where the codec allows
        and late-materialize output columns at surviving positions.
        ``prune``/``code_space`` default to :func:`~repro.storage.
        column_store.scan_mode`'s process-wide settings.

        With a :mod:`repro.parallel` pool installed, the unit splits
        into row-range morsels fanned over the pool; the zone check and
        patch step stay in the driver (pruning and patching are charged
        once, not per morsel), and count-based charge merging keeps the
        simulated cost bit-identical to the serial scan.

        ``encode=True`` keeps code-space-safe dictionary columns
        *encoded*: they come back as :class:`CodeColumn` (codes +
        dictionary) instead of decoded values, charging the cheaper
        ``code_gather_per_value_us`` and deferring materialization to
        whoever decodes downstream.  Patch rows are folded into the
        code space via :func:`encode_against` (decode fallback when the
        patch values are not encodable).
        """
        if prune is None:
            prune = _SCAN_DEFAULTS["prune"]
        if code_space is None:
            code_space = _SCAN_DEFAULTS["code_space"]
        pool = None
        if _SCAN_DEFAULTS["parallel"]:
            from ..parallel import get_default_pool

            pool = get_default_pool()
        wanted = list(columns) if columns is not None else self.schema.column_names
        needed = set(wanted) | predicate.referenced_columns()
        n = len(self._keys)
        arrays: dict[str, np.ndarray] = {}
        out_keys: list[Key] = []
        scanned = pruned = code_filters = 0
        unit_matches = True
        if n and self._encodings and prune:
            self._cost.charge(self._cost.zone_map_check_us)
            unit_matches = zones_may_match(self.zone_maps, n, predicate)
        if n and self._encodings and unit_matches:
            scanned = 1
            encode_cols = self._encodable_columns(wanted) if encode else frozenset()
            morsel_rows = getattr(pool, "morsel_rows", None) if pool else None
            if morsel_rows and n > morsel_rows:
                cuts = [
                    (start, min(start + morsel_rows, n))
                    for start in range(0, n, morsel_rows)
                ]
            else:
                cuts = [(0, n)]
            stale = self.smu.stale_keys
            scan_us = self._cost.column_scan_per_value_us
            code_us = self._cost.code_filter_per_value_us
            gather_us = self._cost.code_gather_per_value_us
            encodings = self._encodings
            keys = self._keys

            def one_morsel(cut: tuple[int, int]):
                start, stop = cut
                whole = start == 0 and stop == n
                encs = (
                    encodings
                    if whole
                    else {
                        name: encodings[name].slice(start, stop)
                        for name in needed
                        if name in encodings
                    }
                )
                # Factors stay 1.0 here: the IMCU's per-value price never
                # varied by codec, and the reference path must keep parity.
                data = EncodedColumns(
                    encs, stop - start, scan_us, code_us, {}, gather_us
                )
                if code_space:
                    mask = predicate_mask(predicate, data)
                else:
                    # Reference behavior: decode every needed column up
                    # front and evaluate on materialized arrays.
                    decoded = {name: data.array(name) for name in needed}
                    if decoded:
                        mask = np.asarray(predicate.mask(decoded), dtype=bool)
                    else:
                        mask = np.ones(stop - start, dtype=bool)
                if stale:
                    mask = mask & np.array(
                        [k not in stale for k in keys[start:stop]], dtype=bool
                    )
                positions = np.flatnonzero(mask)
                part_arrays: dict[str, object] = {}
                for name in wanted:
                    if name in encode_cols:
                        part_arrays[name] = (
                            data.codes(name, positions),
                            data.encoding(name).dictionary,
                        )
                    else:
                        part_arrays[name] = data.gather(name, positions)
                part_keys = [keys[start + p] for p in positions]
                return (
                    part_arrays,
                    part_keys,
                    data.charge_items(),
                    data.code_space_filters,
                )

            if pool is not None and len(cuts) > 1:
                parts = pool.map_ordered(one_morsel, cuts)
            else:
                parts = [one_morsel(cut) for cut in cuts]
            if len(cuts) > 1:
                self._morsel_counter.inc(len(cuts))
            rate_counts: dict[float, int] = {}
            for index, part in enumerate(parts):
                for rate, count in part[2]:
                    rate_counts[rate] = rate_counts.get(rate, 0) + count
                if index == 0:
                    # Morsel 0 stands in for the serial filter tally —
                    # every morsel re-runs the same per-leaf rewrites,
                    # so summing would overcount versus a serial scan.
                    code_filters = part[3]
                out_keys.extend(part[1])
            remapped = 0
            for name in wanted:
                if name in encode_cols:
                    col, n_remapped = concat_code_parts(
                        [part[0][name] for part in parts]
                    )
                    arrays[name] = col
                    remapped += n_remapped
                else:
                    pieces = [part[0][name] for part in parts]
                    arrays[name] = (
                        pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
                    )
            charge = 0.0
            for rate, count in rate_counts.items():
                charge += rate * count
            if remapped:
                charge += self._cost.code_remap_per_value_us * remapped
            self._cost.charge(charge)
        else:
            if n and self._encodings:
                pruned = 1
            for name in wanted:
                arrays[name] = np.array(
                    [], dtype=self.schema.column(name).dtype.numpy_dtype
                )
        if scanned:
            self._scanned_counter.inc(scanned)
        if pruned:
            self._pruned_counter.inc(pruned)
        if code_filters:
            self._code_filter_counter.inc(code_filters)
        if not patch:
            # Isolated mode: stale keys were dropped above and no patch
            # reads happen — the scan is cheaper but the image is stale.
            return ColumnScanResult(
                arrays=arrays,
                keys=out_keys,
                segments_scanned=scanned,
                segments_pruned=pruned,
                code_space_filters=code_filters,
            )
        # Patch stale + brand-new keys from the row store.
        patch_keys = self.smu.stale_keys | self.smu.new_keys
        patch_rows: list[Row] = []
        patched_keys: list[Key] = []
        for key in patch_keys:
            row = self._rows.read(key, snapshot_ts)
            if row is not None and predicate.matches(row, self.schema):
                patch_rows.append(row)
                patched_keys.append(key)
        if patch_rows:
            patch_arrays = rows_to_columns(self.schema, patch_rows)
            for name in wanted:
                current = arrays[name]
                if isinstance(current, CodeColumn):
                    extended = encode_against(current, list(patch_arrays[name]))
                    if extended is not None:
                        arrays[name] = extended
                        continue
                    current = current.decode()
                arrays[name] = np.concatenate([current, patch_arrays[name]])
            out_keys.extend(patched_keys)
        return ColumnScanResult(
            arrays=arrays,
            keys=out_keys,
            segments_scanned=scanned,
            segments_pruned=pruned,
            code_space_filters=code_filters,
        )
