"""Predicate evaluation over *encoded* segments.

The survey's main-store optimization — "compressed execution" — is
evaluating filters directly on encoded data.  This module walks a
predicate tree against one sealed segment and evaluates each leaf in
the cheapest space available:

* **code space** — on a sorted :class:`DictionaryEncoding`, equality /
  range / IN rewrite to integer comparisons on the codes (the
  dictionary is sorted, so codes order like values);
* **run space** — on a :class:`RunLengthEncoding`, the leaf runs over
  the per-run values (one comparison per run, not per row) and the run
  mask is ``np.repeat``-ed out;
* **decoded** — anything else falls back to materializing the column
  once (cached) and calling the predicate's own ``mask``.

The contract is *exactness*: every rewrite produces the same boolean
mask ``predicate.mask(decoded)`` would, including NULL-sentinel, NaN,
and dtype-coercion corner cases — anything not provably exact (NaN in
a dictionary, incomparable mixed types) falls back to decoded
evaluation instead of guessing.

:class:`EncodedColumns` is the per-segment column provider.  It is
deliberately *pure with respect to shared state*: it accumulates its
simulated cost in ``charge_us`` instead of charging a shared
:class:`~repro.common.cost.CostModel`, so segment tasks can run on
worker threads (:mod:`repro.parallel`) and the caller can account the
charges on the shared clock in deterministic segment order.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..common.predicate import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from .compression import DictionaryEncoding, Encoding, RunLengthEncoding


class EncodedColumns:
    """Lazy decoded-column cache over one segment, with cost accounting.

    Charges accumulate as ``{per-value rate: value count}`` instead of a
    running float: integer counts sum exactly across any morsel split of
    the segment, so a morsel-driven scan settles *bit-identical*
    simulated cost to the serial scan no matter how the rows were cut
    (``rate * (a + b) == rate * n`` exactly, whereas
    ``rate*a + rate*b`` need not be).
    """

    __slots__ = (
        "_encodings",
        "n_rows",
        "_scan_us",
        "_code_us",
        "_code_gather_us",
        "_factors",
        "_decoded",
        "_charge_counts",
        "code_space_filters",
    )

    def __init__(
        self,
        encodings: dict[str, Encoding],
        n_rows: int,
        scan_per_value_us: float,
        code_filter_per_value_us: float,
        scan_factors: Mapping[str, float],
        code_gather_per_value_us: float = 0.0,
    ):
        self._encodings = encodings
        self.n_rows = n_rows
        self._scan_us = scan_per_value_us
        self._code_us = code_filter_per_value_us
        self._code_gather_us = code_gather_per_value_us
        self._factors = scan_factors
        self._decoded: dict[str, np.ndarray] = {}
        self._charge_counts: dict[float, int] = {}
        self.code_space_filters = 0

    def _add_charge(self, rate: float, count: int) -> None:
        if count:
            self._charge_counts[rate] = self._charge_counts.get(rate, 0) + count

    @property
    def charge_us(self) -> float:
        return sum(rate * count for rate, count in self._charge_counts.items())

    def charge_items(self) -> tuple[tuple[float, int], ...]:
        """(rate, value-count) pairs, in first-charge order — the merge
        side aggregates counts per rate before pricing them."""
        return tuple(self._charge_counts.items())

    def encoding(self, name: str) -> Encoding:
        return self._encodings[name]

    def array(self, name: str) -> np.ndarray:
        """The fully decoded column (cached; charged once per column)."""
        arr = self._decoded.get(name)
        if arr is None:
            enc = self._encodings[name]
            arr = enc.decode()
            self._decoded[name] = arr
            self._add_charge(
                self._scan_us * self._factors.get(enc.name, 1.0), self.n_rows
            )
        return arr

    def gather(self, name: str, positions: np.ndarray) -> np.ndarray:
        """Late materialization: values at ``positions`` only.

        Columns never decoded pay per *surviving* position instead of
        per row — the payoff of filtering in code space first.
        """
        arr = self._decoded.get(name)
        if arr is not None:
            return arr[positions]
        enc = self._encodings[name]
        self._add_charge(
            self._scan_us * self._factors.get(enc.name, 1.0), len(positions)
        )
        return enc.take(positions)

    def codes(self, name: str, positions: np.ndarray | None = None):
        """Dictionary codes (not values) at ``positions`` — the encoded
        hand-off for compressed execution.  Touching a code costs
        ``code_gather_per_value_us``, a fraction of the decode price;
        the deferred materialization is charged downstream at result
        emit.  Only valid for dictionary encodings.
        """
        enc = self._encodings[name]
        if positions is None:
            self._add_charge(self._code_gather_us, self.n_rows)
            return enc.codes
        self._add_charge(self._code_gather_us, len(positions))
        return enc.codes[positions]

    def note_code_filter(self) -> None:
        self.code_space_filters += 1
        self._add_charge(self._code_us, self.n_rows)


def predicate_mask(predicate: Predicate, data: EncodedColumns) -> np.ndarray:
    """Boolean row mask for ``predicate`` over one encoded segment."""
    if isinstance(predicate, TruePredicate):
        return np.ones(data.n_rows, dtype=bool)
    if isinstance(predicate, And):
        result: np.ndarray | None = None
        for child in predicate.children:
            m = predicate_mask(child, data)
            result = m if result is None else result & m
        return result if result is not None else np.ones(data.n_rows, dtype=bool)
    if isinstance(predicate, Or):
        result = None
        for child in predicate.children:
            m = predicate_mask(child, data)
            result = m if result is None else result | m
        return result if result is not None else np.ones(data.n_rows, dtype=bool)
    if isinstance(predicate, Not):
        return ~predicate_mask(predicate.child, data)
    if isinstance(predicate, (Comparison, Between, InList)):
        mask = _leaf_code_mask(predicate, data)
        if mask is not None:
            data.note_code_filter()
            return np.asarray(mask, dtype=bool)
    return _decoded_mask(predicate, data)


def _decoded_mask(predicate: Predicate, data: EncodedColumns) -> np.ndarray:
    """Reference evaluation: decode the referenced columns, call mask()."""
    decoded = {name: data.array(name) for name in predicate.referenced_columns()}
    if not decoded:
        # Custom predicates with no column references: size the mask
        # from a dummy column (TruePredicate-style length probing).
        decoded = {"__rows__": np.empty(data.n_rows, dtype=np.int8)}
    return np.asarray(predicate.mask(decoded), dtype=bool)


def _is_nan(value) -> bool:
    return isinstance(value, float) and value != value


def _leaf_code_mask(
    predicate: Comparison | Between | InList, data: EncodedColumns
) -> np.ndarray | None:
    """Evaluate a single-column leaf in code/run space, or None if the
    rewrite would not be provably exact."""
    enc = data.encoding(predicate.column)
    if isinstance(enc, RunLengthEncoding):
        try:
            run_mask = np.asarray(
                predicate.mask({predicate.column: enc.values}), dtype=bool
            )
        except TypeError:  # incomparable run values: decoded path decides
            return None
        return np.repeat(run_mask, enc.lengths())
    if not isinstance(enc, DictionaryEncoding) or not enc.code_space_safe():
        return None
    n = len(enc.codes)
    try:
        if isinstance(predicate, InList):
            wanted = enc.codes_for_values(predicate.values)
            return np.isin(enc.codes, wanted)
        if isinstance(predicate, Between):
            if _is_nan(predicate.low) or _is_nan(predicate.high):
                return None
            lo = enc.code_cut(predicate.low, "left")
            hi = enc.code_cut(predicate.high, "right")
            return (enc.codes >= lo) & (enc.codes < hi)
        value = predicate.value
        if _is_nan(value):
            return None
        op = predicate.op
        if op == "=":
            code = enc.code_for(value)
            if code is None:
                return np.zeros(n, dtype=bool)
            return enc.codes == code
        if op == "!=":
            code = enc.code_for(value)
            if code is None:
                return np.ones(n, dtype=bool)
            return enc.codes != code
        if op == "<":
            return enc.codes < enc.code_cut(value, "left")
        if op == "<=":
            return enc.codes < enc.code_cut(value, "right")
        if op == ">":
            return enc.codes >= enc.code_cut(value, "right")
        if op == ">=":
            return enc.codes >= enc.code_cut(value, "left")
    except (TypeError, ValueError):
        # Incomparable / uncoercible literal: the decoded path owns the
        # semantics (including raising, where numpy would).
        return None
    return None
