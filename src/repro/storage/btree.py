"""An in-memory B+-tree.

Used three ways in the testbed, mirroring the survey:

* primary index of the disk row store (Heatwave-style substrate);
* secondary indexes of the in-memory row store;
* index over log-based delta files so delta items "can be efficiently
  located with key lookups" (TiDB's disk-based delta merge, §2.2(3)).

Leaves are chained for range scans.  Keys must be mutually comparable;
values are opaque.  Duplicate keys overwrite (the tree is a map).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..common.errors import KeyNotFoundError

_DEFAULT_ORDER = 32


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.children: list[_Node] = []   # internal nodes only
        self.values: list[Any] = []       # leaves only
        self.next_leaf: _Node | None = None


class BPlusTree:
    """Classic order-``m`` B+-tree map with linked leaves."""

    def __init__(self, order: int = _DEFAULT_ORDER):
        if order < 4:
            raise ValueError("order must be >= 4")
        self._order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @classmethod
    def from_sorted(
        cls, items: list[tuple[Any, Any]], order: int = _DEFAULT_ORDER
    ) -> "BPlusTree":
        """Bottom-up bulk build from key-sorted, duplicate-free pairs.

        O(n) node construction instead of n top-down inserts; produces
        the same map (packed leaves, chained left to right).  Callers
        must pre-sort and de-duplicate — violations corrupt lookups.
        """
        tree = cls(order)
        if not items:
            return tree
        level: list[_Node] = []
        mins: list[Any] = []
        for i in range(0, len(items), order):
            chunk = items[i : i + order]
            leaf = _Node(is_leaf=True)
            leaf.keys = [k for k, _v in chunk]
            leaf.values = [v for _k, v in chunk]
            if level:
                level[-1].next_leaf = leaf
            level.append(leaf)
            mins.append(leaf.keys[0])
        tree._size = len(items)
        while len(level) > 1:
            parents: list[_Node] = []
            parent_mins: list[Any] = []
            for i in range(0, len(level), order):
                node = _Node(is_leaf=False)
                node.children = level[i : i + order]
                node.keys = mins[i + 1 : i + len(node.children)]
                parents.append(node)
                parent_mins.append(mins[i])
            level, mins = parents, parent_mins
        tree._root = level[0]
        return tree

    def __contains__(self, key: Any) -> bool:
        return self.get(key, default=_MISSING) is not _MISSING

    # ------------------------------------------------------------- lookups

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = _bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        idx = _bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def lookup(self, key: Any) -> Any:
        """Like :meth:`get` but raises when the key is absent."""
        value = self.get(key, default=_MISSING)
        if value is _MISSING:
            raise KeyNotFoundError(f"key {key!r} not in B+-tree")
        return value

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs with low <= key <= high, in key order."""
        if low is None:
            leaf: _Node | None = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(low)
            idx = _bisect_left(leaf.keys, low)
            if include_low is False:
                while idx < len(leaf.keys) and leaf.keys[idx] == low:
                    idx += 1
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self.range()

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def min_key(self) -> Any:
        leaf = self._leftmost_leaf()
        if not leaf.keys:
            raise KeyNotFoundError("tree is empty")
        return leaf.keys[0]

    def max_key(self) -> Any:
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        if not node.keys:
            raise KeyNotFoundError("tree is empty")
        return node.keys[-1]

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # ------------------------------------------------------------- writes

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            sep_key, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert_into(self, node: _Node, key: Any, value: Any):
        if node.is_leaf:
            idx = _bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        idx = _bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right)
        if len(node.children) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep_key, right

    def delete(self, key: Any) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` when absent.

        Uses lazy deletion for internal balance (no rebalancing of
        internal separators), which keeps the tree correct for lookups
        and ranges — sufficient for an index whose workload is
        insert/lookup heavy, and far simpler to verify.
        """
        leaf = self._find_leaf(key)
        idx = _bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(f"key {key!r} not in B+-tree")
        leaf.keys.pop(idx)
        leaf.values.pop(idx)
        self._size -= 1

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not node.is_leaf:
            depth += 1
            node = node.children[0]
        return depth

    def check_invariants(self) -> None:
        """Assert structural invariants; used by property tests."""
        previous = None
        count = 0
        for key, _value in self.items():
            if previous is not None and not previous < key:
                raise AssertionError(f"keys out of order: {previous!r} !< {key!r}")
            previous = key
            count += 1
        if count != self._size:
            raise AssertionError(f"size mismatch: iterated {count}, size {self._size}")


_MISSING = object()


def _bisect_left(keys: list, key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(keys: list, key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo
