"""A memory-optimized, multi-versioned row store.

This is the OLTP substrate of architecture categories (a)-(c): a hash
primary index over MVCC version chains, exactly the "MVCC + logging"
model of Table 2's transaction-processing row.  An update "creates a
new version of a row with a new lifetime of a begin timestamp and an
end timestamp" (§2.2(1)); deletes close the lifetime of the newest
version.

The store itself is timestamp-driven and knows nothing about
transactions: the transaction manager stages writes and installs them
here at commit time with the commit timestamp.  That keeps snapshot
visibility a pure function of (version chain, snapshot ts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..common.clock import INFINITY_TS, Timestamp
from ..common.cost import CostModel
from ..common.errors import DuplicateKeyError, KeyNotFoundError, SchemaError
from ..common.predicate import ALWAYS_TRUE, Predicate
from ..common.types import Key, Row, Schema
from .btree import BPlusTree
from .mv_index import MultiVersionIndex


@dataclass
class RowVersion:
    """One lifetime of a row: visible to snapshots in [begin_ts, end_ts)."""

    row: Row
    begin_ts: Timestamp
    end_ts: Timestamp = INFINITY_TS

    def visible_at(self, snapshot_ts: Timestamp) -> bool:
        return self.begin_ts <= snapshot_ts < self.end_ts


class MVCCRowStore:
    """Hash-indexed MVCC row store with optional B+-tree secondary indexes."""

    def __init__(self, schema: Schema, cost: CostModel | None = None):
        self.schema = schema
        self._cost = cost or CostModel()
        self._chains: dict[Key, list[RowVersion]] = {}
        self._secondary: dict[str, BPlusTree] = {}
        self._mv_indexes: dict[str, MultiVersionIndex] = {}
        self._installs = 0  # total versions ever installed (activity counter)
        self._versions = 0  # live version count, maintained incrementally

    # ------------------------------------------------------------- metadata

    def __len__(self) -> int:
        """Number of keys with a currently-live newest version."""
        return sum(
            1 for chain in self._chains.values() if chain and chain[-1].end_ts == INFINITY_TS
        )

    @property
    def installs(self) -> int:
        return self._installs

    def keys(self) -> Iterator[Key]:
        for key, chain in self._chains.items():
            if chain and chain[-1].end_ts == INFINITY_TS:
                yield key

    def version_count(self) -> int:
        """O(1): scan-cache tokens read this on every scan, so it must
        not walk the chains (writes and vacuum keep the tally)."""
        return self._versions

    def memory_bytes(self) -> int:
        """Rough footprint: versions dominate; ~48 bytes/cell heuristic."""
        width = max(1, len(self.schema.columns))
        return self.version_count() * width * 48

    def last_committed_ts(self, key: Key) -> Timestamp | None:
        """Begin ts of the newest version (None if the key never existed).

        The first-committer-wins conflict check compares this against a
        transaction's begin timestamp.
        """
        chain = self._chains.get(key)
        if not chain:
            return None
        return chain[-1].begin_ts

    def key_exists_at(self, key: Key, snapshot_ts: Timestamp) -> bool:
        return self.read(key, snapshot_ts) is not None

    # ------------------------------------------------------------- writes

    def install_insert(self, row: Row, commit_ts: Timestamp) -> Key:
        row = self.schema.validate_row(row)
        key = self.schema.key_of(row)
        chain = self._chains.get(key)
        if chain and chain[-1].end_ts == INFINITY_TS:
            raise DuplicateKeyError(
                f"key {key!r} already live in {self.schema.table_name!r}"
            )
        self._cost.charge(self._cost.row_point_write_us)
        self._chains.setdefault(key, []).append(RowVersion(row=row, begin_ts=commit_ts))
        self._installs += 1
        self._versions += 1
        self._index_add(key, row)
        for column, index in self._mv_indexes.items():
            index.on_insert(key, row[self.schema.index_of(column)], commit_ts)
        return key

    def install_update(self, key: Key, row: Row, commit_ts: Timestamp) -> None:
        row = self.schema.validate_row(row)
        if self.schema.key_of(row) != key:
            raise SchemaError("update must not change the primary key")
        chain = self._require_live_chain(key)
        self._cost.charge(self._cost.row_point_write_us)
        old = chain[-1]
        old.end_ts = commit_ts
        chain.append(RowVersion(row=row, begin_ts=commit_ts))
        self._installs += 1
        self._versions += 1
        self._index_remove(key, old.row)
        self._index_add(key, row)
        for column, index in self._mv_indexes.items():
            pos = self.schema.index_of(column)
            index.on_update(key, old.row[pos], row[pos], commit_ts)

    def install_delete(self, key: Key, commit_ts: Timestamp) -> None:
        chain = self._require_live_chain(key)
        self._cost.charge(self._cost.row_point_write_us)
        old = chain[-1]
        old.end_ts = commit_ts
        self._installs += 1
        self._index_remove(key, old.row)
        for column, index in self._mv_indexes.items():
            index.on_delete(key, old.row[self.schema.index_of(column)], commit_ts)

    def _require_live_chain(self, key: Key) -> list[RowVersion]:
        chain = self._chains.get(key)
        if not chain or chain[-1].end_ts != INFINITY_TS:
            raise KeyNotFoundError(
                f"key {key!r} not live in {self.schema.table_name!r}"
            )
        return chain

    # ------------------------------------------------------------- reads

    def read(self, key: Key, snapshot_ts: Timestamp) -> Row | None:
        """The version of ``key`` visible at ``snapshot_ts`` (or None)."""
        self._cost.charge(self._cost.row_point_read_us)
        chain = self._chains.get(key)
        if not chain:
            return None
        # Newest-first: OLTP reads overwhelmingly want the latest version.
        for version in reversed(chain):
            if version.visible_at(snapshot_ts):
                return version.row
        return None

    def scan(
        self,
        snapshot_ts: Timestamp,
        predicate: Predicate = ALWAYS_TRUE,
        on_row: Callable[[Row], None] | None = None,
    ) -> list[Row]:
        """Full scan of the snapshot; returns matching rows in key-hash order."""
        out: list[Row] = []
        examined = 0
        for chain in self._chains.values():
            for version in reversed(chain):
                if version.visible_at(snapshot_ts):
                    examined += 1
                    if predicate.matches(version.row, self.schema):
                        out.append(version.row)
                        if on_row is not None:
                            on_row(version.row)
                    break
        self._cost.charge_rows(self._cost.row_scan_per_row_us, max(examined, 1))
        return out

    def snapshot_rows(self, snapshot_ts: Timestamp) -> list[Row]:
        """All rows visible at ``snapshot_ts`` (used by rebuild sync)."""
        return self.scan(snapshot_ts)

    # ------------------------------------------------------------- indexes

    def create_index(self, column: str) -> None:
        """Build a B+-tree secondary index over the *live* rows of a column."""
        idx_pos = self.schema.index_of(column)
        tree = BPlusTree()
        for key, chain in self._chains.items():
            if chain and chain[-1].end_ts == INFINITY_TS:
                value = chain[-1].row[idx_pos]
                bucket = tree.get((value,), default=None)
                if bucket is None:
                    bucket = []
                    tree.insert((value,), bucket)
                bucket.append(key)
        self._secondary[column] = tree

    def index_lookup_range(
        self, column: str, low, high
    ) -> list[Key]:
        """Keys whose ``column`` is within [low, high] per the index.

        Reflects the index's current (latest) state — callers re-check
        visibility with :meth:`read`, the standard index-then-verify
        pattern of MVCC systems.
        """
        tree = self._secondary.get(column)
        if tree is None:
            raise KeyNotFoundError(f"no index on column {column!r}")
        self._cost.charge(self._cost.index_lookup_us)
        keys: list[Key] = []
        low_key = None if low is None else (low,)
        high_key = None if high is None else (high, _TOP)
        for _value, bucket in tree.range(low_key, high_key):
            keys.extend(bucket)
        self._cost.charge_rows(self._cost.index_scan_per_row_us, max(len(keys), 1))
        return keys

    def has_index(self, column: str) -> bool:
        return column in self._secondary

    # ------------------------------------------------------- mv indexes

    def create_mv_index(self, column: str) -> MultiVersionIndex:
        """Build a multi-version index over ``column`` (MV-PBT style).

        Backfills postings for the full version history so snapshot
        lookups are correct even for timestamps before index creation.
        """
        pos = self.schema.index_of(column)
        index = MultiVersionIndex(column, self._cost)
        for key, chain in self._chains.items():
            for version in chain:
                index.on_insert(key, version.row[pos], version.begin_ts)
                if version.end_ts != INFINITY_TS:
                    index.on_delete(key, version.row[pos], version.end_ts)
        self._mv_indexes[column] = index
        return index

    def mv_index(self, column: str) -> MultiVersionIndex:
        try:
            return self._mv_indexes[column]
        except KeyError:
            raise KeyNotFoundError(f"no mv-index on column {column!r}") from None

    def mv_lookup(self, column: str, value, snapshot_ts: Timestamp) -> list[Key]:
        """Snapshot-correct equality lookup, no verification reads."""
        return self.mv_index(column).lookup(value, snapshot_ts)

    def mv_range(self, column: str, low, high, snapshot_ts: Timestamp):
        return self.mv_index(column).range(low, high, snapshot_ts)

    def _index_add(self, key: Key, row: Row) -> None:
        for column, tree in self._secondary.items():
            value = row[self.schema.index_of(column)]
            bucket = tree.get((value,), default=None)
            if bucket is None:
                bucket = []
                tree.insert((value,), bucket)
            bucket.append(key)

    def _index_remove(self, key: Key, row: Row) -> None:
        for column, tree in self._secondary.items():
            value = row[self.schema.index_of(column)]
            bucket = tree.get((value,), default=None)
            if bucket and key in bucket:
                bucket.remove(key)

    # ------------------------------------------------------------- GC

    def vacuum(self, oldest_active_ts: Timestamp) -> int:  # htaplint: ignore[HTL002] -- GC drops only versions invisible to every live snapshot; cache tokens include version_count(), which this does move
        """Drop versions invisible to every snapshot >= oldest_active_ts.

        Returns the number of versions reclaimed.
        """
        reclaimed = 0
        dead_keys: list[Key] = []
        for key, chain in self._chains.items():
            keep: list[RowVersion] = []
            for version in chain:
                dead = version.end_ts <= oldest_active_ts
                if dead:
                    reclaimed += 1
                else:
                    keep.append(version)
            if keep:
                self._chains[key] = keep
            else:
                dead_keys.append(key)
        for key in dead_keys:
            del self._chains[key]
        self._versions -= reclaimed
        for index in self._mv_indexes.values():
            index.vacuum(oldest_active_ts)
        return reclaimed


class _Top:
    """Compares greater than everything; upper sentinel for index ranges."""

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, _Top)

    def __hash__(self) -> int:
        return hash("_Top")


_TOP = _Top()
