"""A disk-based row store: slotted pages + buffer pool + B+-tree index.

The primary store of architecture (c) ("Disk Row Store + Distributed
Column Store", MySQL Heatwave in the survey).  It is a current-state
store: the engine's transaction manager serializes commits, so readers
always see the latest committed row.  Every change is also offered to a
registered change listener, the hook the engine uses for threshold-based
change propagation into the in-memory column-store cluster.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.errors import DuplicateKeyError, KeyNotFoundError
from ..common.predicate import ALWAYS_TRUE, Predicate
from ..common.types import Key, Row, Schema
from .btree import BPlusTree
from .pages import Page, BufferPool

ChangeListener = Callable[[str, Key, Row | None, Timestamp], None]
"""(kind, key, row_or_none, commit_ts) — kind in {'insert','update','delete'}."""


class DiskRowStore:
    """Heap-file row store behind an LRU buffer pool."""

    def __init__(
        self,
        schema: Schema,
        cost: CostModel | None = None,
        buffer_capacity: int = 128,
    ):
        self.schema = schema
        self._cost = cost or CostModel()
        self._disk: dict[int, Page] = {}
        self._pool = BufferPool(self._disk, buffer_capacity, self._cost)
        self._index = BPlusTree()  # key -> (page_id, slot)
        self._next_page_id = 0
        self._free_pages: list[int] = []  # pages known to have space
        self._listeners: list[ChangeListener] = []
        self._count = 0
        self.last_commit_ts: Timestamp = 0
        #: Monotone write-version (insert/update/delete); scan caches
        #: key on it to fence stale batches.
        self.mutations = 0

    # ------------------------------------------------------------- plumbing

    @property
    def buffer_pool(self) -> BufferPool:
        return self._pool

    def add_change_listener(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def _notify(self, kind: str, key: Key, row: Row | None, ts: Timestamp) -> None:
        for listener in self._listeners:
            listener(kind, key, row, ts)

    def __len__(self) -> int:
        return self._count

    def page_count(self) -> int:
        return len(self._disk)

    def disk_bytes(self) -> int:
        from .pages import PAGE_CAPACITY

        width = max(1, len(self.schema.columns))
        return len(self._disk) * PAGE_CAPACITY * width * 16

    def _index_key(self, key: Key):
        return key if isinstance(key, tuple) else (key,)

    # ------------------------------------------------------------- writes

    def insert(self, row: Row, commit_ts: Timestamp) -> Key:
        row = self.schema.validate_row(row)
        key = self.schema.key_of(row)
        if self._index.get(self._index_key(key)) is not None:
            raise DuplicateKeyError(f"key {key!r} already in {self.schema.table_name!r}")
        page = self._page_with_space()
        slot = page.free_slot()
        assert slot is not None
        page.slots[slot] = row
        page.dirty = True
        self._index.insert(self._index_key(key), (page.page_id, slot))
        self._count += 1
        self.mutations += 1
        self.last_commit_ts = max(self.last_commit_ts, commit_ts)
        self._notify("insert", key, row, commit_ts)
        return key

    def update(self, key: Key, row: Row, commit_ts: Timestamp) -> None:
        row = self.schema.validate_row(row)
        page_id, slot = self._locate(key)
        page = self._pool.fetch(page_id)
        page.slots[slot] = row
        page.dirty = True
        self.mutations += 1
        self.last_commit_ts = max(self.last_commit_ts, commit_ts)
        self._notify("update", key, row, commit_ts)

    def delete(self, key: Key, commit_ts: Timestamp) -> None:
        page_id, slot = self._locate(key)
        page = self._pool.fetch(page_id)
        page.slots[slot] = None
        page.dirty = True
        self._index.delete(self._index_key(key))
        if page_id not in self._free_pages:
            self._free_pages.append(page_id)
        self._count -= 1
        self.mutations += 1
        self.last_commit_ts = max(self.last_commit_ts, commit_ts)
        self._notify("delete", key, None, commit_ts)

    def _locate(self, key: Key) -> tuple[int, int]:
        loc = self._index.get(self._index_key(key))
        if loc is None:
            raise KeyNotFoundError(f"key {key!r} not in {self.schema.table_name!r}")
        self._cost.charge(self._cost.index_lookup_us)
        return loc

    def _page_with_space(self) -> Page:
        while self._free_pages:
            page = self._pool.fetch(self._free_pages[-1])
            if page.free_slot() is not None:
                return page
            self._free_pages.pop()
        page = Page(page_id=self._next_page_id)
        self._next_page_id += 1
        self._disk[page.page_id] = page
        self._free_pages.append(page.page_id)
        self._pool._admit(page)  # freshly created pages are hot
        return page

    # ------------------------------------------------------------- reads

    def read(self, key: Key) -> Row | None:
        loc = self._index.get(self._index_key(key))
        if loc is None:
            return None
        self._cost.charge(self._cost.index_lookup_us)
        page_id, slot = loc
        page = self._pool.fetch(page_id)
        return page.slots[slot]

    def scan(self, predicate: Predicate = ALWAYS_TRUE) -> list[Row]:
        """Full heap scan through the buffer pool (the slow path the
        in-memory column-store cluster exists to avoid)."""
        out: list[Row] = []
        for page_id in sorted(self._disk):
            page = self._pool.fetch(page_id)
            for row in page.slots:
                if row is not None and predicate.matches(row, self.schema):
                    out.append(row)
        self._cost.charge_rows(self._cost.row_scan_per_row_us, max(self._count, 1))
        return out

    def iter_rows(self) -> Iterator[tuple[Key, Row]]:
        """Index-ordered iteration (no predicate, pays the same I/O)."""
        for index_key, (page_id, slot) in self._index.items():
            page = self._pool.fetch(page_id)
            row = page.slots[slot]
            if row is not None:
                key = index_key[0] if len(index_key) == 1 else index_key
                yield key, row
