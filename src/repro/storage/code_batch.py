"""Dictionary-code batches for compressed execution past the scan.

PR 5 stopped decoding *inside* the scan (code-space predicates, late
materialization of surviving positions) but still handed the executor
fully decoded arrays.  This module is the currency that lets encoded
data cross the scan boundary: a :class:`CodeColumn` pairs int32/int64
codes with the *sorted* dictionary they index, so joins, GROUP BY and
DISTINCT run directly on the codes and values materialize only at
result emit.

Two invariants carried over from :class:`DictionaryEncoding` make the
code space exact:

* the dictionary is sorted and free of NaN (``code_space_safe``), so
  codes order exactly like values and ``code_a == code_b`` ⇔
  ``value_a == value_b`` within one dictionary;
* cross-dictionary operations (multi-segment scans, join sides built
  from different stores) first remap codes into a merged sorted
  dictionary — after which the same single-dictionary guarantees hold.

Simulated-cost discipline: helpers here never touch the shared clock.
They *report* how many codes were remapped; the caller prices that
against :attr:`CostModel.code_remap_per_value_us` in its own charging
sequence, keeping pooled/morsel scans cost-identical to serial ones.
"""

from __future__ import annotations

import numpy as np

from .compression import _object_bytes


class CodeColumn:
    """An encoded column batch: integer codes into a sorted dictionary.

    Behaves enough like an ``ndarray`` for batch plumbing (``len``,
    boolean/fancy indexing, ``dtype``, ``nbytes``) that executor stages
    can carry it untouched; kernels that understand codes unwrap
    :attr:`codes` and :attr:`dictionary` directly.
    """

    __slots__ = ("codes", "dictionary")

    def __init__(self, codes: np.ndarray, dictionary: np.ndarray):
        self.codes = codes
        self.dictionary = dictionary

    def __len__(self) -> int:
        return len(self.codes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CodeColumn(n={len(self.codes)}, "
            f"cardinality={len(self.dictionary)}, dtype={self.dtype})"
        )

    @property
    def dtype(self) -> np.dtype:
        """The *decoded* dtype — what the batch looks like to results."""
        return self.dictionary.dtype

    @property
    def nbytes(self) -> int:
        if self.dictionary.dtype == object:
            dict_bytes = _object_bytes(self.dictionary)
        else:
            dict_bytes = int(self.dictionary.nbytes)
        return int(self.codes.nbytes) + dict_bytes

    def decode(self) -> np.ndarray:
        """Materialize values (the late-materialization boundary)."""
        return self.dictionary[self.codes]

    def take(self, positions) -> "CodeColumn":
        return CodeColumn(self.codes[positions], self.dictionary)

    def __getitem__(self, item):
        """Array-style indexing: selections stay encoded, a scalar
        index decodes (single-cell emit)."""
        if isinstance(item, (int, np.integer)):
            return self.dictionary[int(self.codes[item])]
        return CodeColumn(self.codes[item], self.dictionary)

    def cardinality(self) -> int:
        return len(self.dictionary)


def is_code_column(value) -> bool:
    return isinstance(value, CodeColumn)


def decode_column(value):
    """``value`` decoded if it is a :class:`CodeColumn`, else as-is."""
    return value.decode() if isinstance(value, CodeColumn) else value


def _merge_dictionaries(dicts: list[np.ndarray]) -> np.ndarray:
    """Sorted union of already-sorted dictionaries."""
    if len(dicts) == 1:
        return dicts[0]
    first = dicts[0]
    if first.dtype == object:
        merged: set = set()
        for d in dicts:
            merged.update(d.tolist())
        return np.array(sorted(merged), dtype=object)
    return np.unique(np.concatenate(dicts))


def _remap_into(dictionary: np.ndarray, merged: np.ndarray) -> np.ndarray:
    """Code map from ``dictionary``'s code space into ``merged``'s.

    Every value of ``dictionary`` must be present in ``merged`` (it is,
    by construction of the union), so a searchsorted is exact.
    """
    return np.searchsorted(merged, dictionary).astype(np.int64)


def concat_code_parts(
    parts: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[CodeColumn, int]:
    """Concatenate per-morsel ``(codes, dictionary)`` parts.

    Morsels of one segment share the dictionary *object* (see
    ``DictionaryEncoding.slice``), and segments of a stable value
    domain share dictionary *content* — both collapse to one canonical
    dictionary and concatenate codes with zero remapping (the
    global-dictionary model: equal dictionaries define the same code
    space, so no map is applied and none is charged).  Only genuinely
    different dictionaries pay the sorted union + per-dictionary remap
    table.  Returns the merged column and how many codes were remapped
    (for cost accounting).  Both dedup steps depend only on the
    dictionaries' identity/content, never on how rows were cut, so any
    morsel split settles the same remap count as the serial merge.
    """
    canon: dict[int, np.ndarray] = {}
    dicts: list[np.ndarray] = []
    for _codes, d in parts:
        if id(d) in canon:
            continue
        hit = next(
            (
                seen
                for seen in dicts
                if seen is d
                or (len(seen) == len(d) and bool(np.array_equal(seen, d)))
            ),
            None,
        )
        if hit is None:
            dicts.append(d)
            canon[id(d)] = d
        else:
            canon[id(d)] = hit
    if len(dicts) == 1:
        codes = (
            parts[0][0]
            if len(parts) == 1
            else np.concatenate([codes for codes, _ in parts])
        )
        return CodeColumn(codes, dicts[0]), 0
    merged = _merge_dictionaries(dicts)
    maps = {id(d): _remap_into(d, merged) for d in dicts}
    remapped = sum(len(codes) for codes, _ in parts)
    codes = np.concatenate(
        [maps[id(canon[id(d)])][codes] for codes, d in parts]
    )
    return CodeColumn(codes, merged), remapped


def align_build_codes(
    probe: CodeColumn, build: CodeColumn
) -> tuple[np.ndarray, np.ndarray, int]:
    """Align a join's build side into the probe side's code space.

    Shared dictionary: both code arrays are already comparable.
    Different dictionaries: build codes are remapped through the probe
    dictionary; build values absent from it become ``-1``, which can
    never match a probe code (codes are non-negative) — exactly the
    no-match semantics of the decoded join.  Returns
    ``(probe_codes, build_codes, n_remapped)``.
    """
    if probe.dictionary is build.dictionary or (
        probe.dictionary.dtype == build.dictionary.dtype
        and len(probe.dictionary) == len(build.dictionary)
        and bool(np.array_equal(probe.dictionary, build.dictionary))
    ):
        return probe.codes, build.codes, 0
    mapping = np.searchsorted(probe.dictionary, build.dictionary)
    mapping = np.minimum(mapping, max(len(probe.dictionary) - 1, 0)).astype(
        np.int64
    )
    if len(probe.dictionary):
        present = np.asarray(
            probe.dictionary[mapping] == build.dictionary, dtype=bool
        )
    else:
        present = np.zeros(len(build.dictionary), dtype=bool)
    mapping[~present] = -1
    return probe.codes, mapping[build.codes], len(build.codes)


def encode_against(
    column: CodeColumn, values: list
) -> CodeColumn | None:
    """``column`` extended with fresh ``values`` (overlay/patch rows),
    still encoded.

    The dictionary grows to the sorted union of old dictionary and new
    values; old codes remap, new values encode against the result.
    Returns None when the values cannot join the code space (None/NaN
    or incomparable types) — the caller decodes instead, which is
    always exact.
    """
    if not values:
        return column
    d = column.dictionary
    try:
        if d.dtype == object:
            if any(v is None for v in values):
                return None
            fresh = np.array(sorted(set(values)), dtype=object)
        else:
            fresh = np.asarray(values, dtype=d.dtype)
            if fresh.dtype.kind == "f" and bool(np.isnan(fresh).any()):
                return None
            fresh = np.unique(fresh)
    except (TypeError, ValueError):
        return None
    merged = _merge_dictionaries([d, fresh])
    if len(merged) == len(d):
        codes = column.codes
    else:
        codes = _remap_into(d, merged)[column.codes]
    new_codes = np.searchsorted(merged, np.asarray(values, dtype=merged.dtype))
    return CodeColumn(
        np.concatenate([codes, new_codes.astype(codes.dtype, copy=False)]),
        merged,
    )


def overlay_arrays(
    arrays: dict,
    keys: list,
    drop: set,
    fresh_rows: list,
    fresh_columns: dict | None = None,
) -> dict:
    """The engines' shared delta-overlay shape, kept encoded.

    All four architectures overlay a base columnar scan the same way:
    drop rows whose keys the delta touched, then append the delta's
    fresh rows.  ``arrays`` may hold :class:`CodeColumn` entries; they
    stay encoded when the fresh values fit their dictionaries and fall
    back to decoded concatenation otherwise.  ``fresh_columns`` maps
    column name → list of fresh values (same order as ``fresh_rows``).
    Plain arrays take ``fresh_columns``' pre-built ndarray per column.
    """
    if drop:
        keep = [i for i, k in enumerate(keys) if k not in drop]
        arrays = {
            name: col.take(keep) if isinstance(col, CodeColumn) else col[keep]
            for name, col in arrays.items()
        }
    if not fresh_rows or fresh_columns is None:
        return dict(arrays)
    out = {}
    for name, col in arrays.items():
        fresh = fresh_columns[name]
        if isinstance(col, CodeColumn):
            extended = encode_against(col, list(fresh))
            if extended is None:
                extended = np.concatenate(
                    [col.decode(), np.asarray(fresh, dtype=col.dtype)]
                )
            out[name] = extended
        else:
            out[name] = np.concatenate([col, fresh])
    return out
