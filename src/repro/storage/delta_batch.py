"""Columnar batch representation of delta entries.

The scalar sync paths move one :class:`~repro.storage.delta_store.DeltaEntry`
at a time through Python dicts.  A :class:`DeltaBatch` keeps the same
information as parallel columns (kind codes, keys, row tuples, commit
timestamps) so the last-writer-wins collapse — the inner loop of every
Table 2 data-synchronization technique — runs as one NumPy scatter
instead of ``n`` dict operations:

* assign each distinct key a dense integer code (one dict pass,
  amortized at ingest time by :class:`InMemoryDeltaStore`);
* ``last[codes] = arange(n)`` — later positions overwrite earlier ones,
  which *is* last-writer-wins;
* partition the winning positions by kind into live rows vs tombstones.

Only the winners (unique keys) ever touch Python objects again, so a
batch of 100k entries over 20k keys collapses with 20k dict stores
instead of 100k branchy dict mutations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..common.clock import Timestamp
from ..common.types import Key, Row

#: Integer kind codes used inside batches (np.int8 friendly).
KIND_INSERT = 0
KIND_UPDATE = 1
KIND_DELETE = 2


@dataclass
class CollapseResult:
    """Final image of one delta batch: newest row per surviving key,
    plus the keys whose final operation was a delete."""

    live_keys: list[Key]
    live_rows: list[Row]
    tombstones: list[Key]

    def as_dicts(self) -> tuple[dict[Key, Row], set[Key]]:
        """The ``(live, tombstones)`` shape the scalar paths return."""
        return dict(zip(self.live_keys, self.live_rows)), set(self.tombstones)

    def touched_keys(self) -> list[Key]:
        """Every key the batch finally writes or deletes (upsert set)."""
        return self.live_keys + self.tombstones


@dataclass
class DeltaBatch:
    """Commit-ordered delta entries held columnar.

    ``key_codes`` maps each entry to a dense integer id for its key
    (same key ⇒ same code); ``n_codes`` bounds the code space so the
    collapse scatter array can be allocated directly.
    """

    kinds: np.ndarray        # int8 KIND_* per entry
    keys: list[Key]
    rows: list[Row | None]   # None for deletes
    commit_ts: np.ndarray    # int64 per entry, non-decreasing
    key_codes: np.ndarray    # int64 dense key ids
    n_codes: int

    def __len__(self) -> int:
        return len(self.keys)

    def max_commit_ts(self) -> Timestamp:
        return int(self.commit_ts[-1]) if len(self.commit_ts) else 0

    def min_commit_ts(self) -> Timestamp:
        return int(self.commit_ts[0]) if len(self.commit_ts) else 0

    @classmethod
    def empty(cls) -> "DeltaBatch":
        return cls(
            kinds=np.empty(0, dtype=np.int8),
            keys=[],
            rows=[],
            commit_ts=np.empty(0, dtype=np.int64),
            key_codes=np.empty(0, dtype=np.int64),
            n_codes=0,
        )

    @classmethod
    def from_columns(
        cls,
        kinds: Sequence[int],
        keys: list[Key],
        rows: list[Row | None],
        commit_ts: Sequence[int],
        key_codes: Sequence[int] | None = None,
        n_codes: int | None = None,
    ) -> "DeltaBatch":
        if key_codes is None:
            key_codes, n_codes = encode_keys(keys)
        return cls(
            kinds=np.asarray(kinds, dtype=np.int8),
            keys=keys,
            rows=rows,
            commit_ts=np.asarray(commit_ts, dtype=np.int64),
            key_codes=np.asarray(key_codes, dtype=np.int64),
            n_codes=int(n_codes if n_codes is not None else 0),
        )

    @classmethod
    def from_entries(cls, entries: Iterable) -> "DeltaBatch":
        """Build from :class:`DeltaEntry` objects (log-merge ingest)."""
        from .delta_store import DeltaKind

        kind_code = {
            DeltaKind.INSERT: KIND_INSERT,
            DeltaKind.UPDATE: KIND_UPDATE,
            DeltaKind.DELETE: KIND_DELETE,
        }
        kinds: list[int] = []
        keys: list[Key] = []
        rows: list[Row | None] = []
        ts: list[int] = []
        for e in entries:
            kinds.append(kind_code[e.kind])
            keys.append(e.key)
            rows.append(e.row)
            ts.append(e.commit_ts)
        return cls.from_columns(kinds, keys, rows, ts)

    def collapse(self) -> CollapseResult:
        return collapse_batch(self)


def encode_keys(keys: list[Key]) -> tuple[np.ndarray, int]:
    """Dense integer codes for ``keys``: same key ⇒ same code, codes
    dense in ``[0, n_codes)`` — the only contract the collapse scatter
    needs (code *values* may differ between the paths below)."""
    if keys:
        arr = np.asarray(keys)
        # Homogeneous scalar keys (one table's key space) vectorize;
        # tuples and mixed types fall back to the dict pass.  Guarding
        # on kind avoids e.g. int/str mixes silently coerced to <U.
        if arr.ndim == 1 and arr.dtype.kind in "iuUS":
            uniq, codes = np.unique(arr, return_inverse=True)
            return codes.astype(np.int64, copy=False), len(uniq)
    code_of: dict[Key, int] = {}
    codes = np.empty(len(keys), dtype=np.int64)
    setdefault = code_of.setdefault
    for i, key in enumerate(keys):
        codes[i] = setdefault(key, len(code_of))
    return codes, len(code_of)


def collapse_batch(batch: DeltaBatch) -> CollapseResult:
    """Vectorized last-writer-wins collapse + tombstone separation.

    Equivalent to the scalar ``collapse_entries`` on the same entries:
    per key, only the final operation survives; DELETE winners become
    tombstones, INSERT/UPDATE winners become live row images.  Winners
    come out in commit order of their final operation.
    """
    n = len(batch)
    if n == 0:
        return CollapseResult([], [], [])
    last = np.full(batch.n_codes, -1, dtype=np.int64)
    # Scatter with duplicate indices: NumPy applies assignments in
    # order, so the highest (newest) position per code wins.
    last[batch.key_codes] = np.arange(n, dtype=np.int64)
    winners = last[last >= 0]
    winners.sort()
    win_kinds = batch.kinds[winners]
    live_pos = winners[win_kinds != KIND_DELETE]
    tomb_pos = winners[win_kinds == KIND_DELETE]
    keys = batch.keys
    rows = batch.rows
    live_list = live_pos.tolist()
    return CollapseResult(
        live_keys=[keys[i] for i in live_list],
        live_rows=[rows[i] for i in live_list],
        tombstones=[keys[i] for i in tomb_pos.tolist()],
    )
