"""A compressed, segment-based in-memory column store.

The analytical substrate of all four architectures: immutable sealed
segments of compressed column arrays with zone maps (min/max per
segment) and a delete bitmap.  Inserted/merged rows always form new
segments; deletes flip bits; updates are delete + re-insert — the
standard append-only columnar contract that makes "column scan"
(Table 2's AP rows) a pure vectorized operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Iterable, Sequence

import numpy as np

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.errors import StorageError
from ..common.predicate import ALWAYS_TRUE, Predicate, column_range
from ..common.types import Key, Row, Schema, decode_cell, rows_to_columns
from .compression import Encoding, choose_encoding

#: Relative per-value scan cost by codec: compressed layouts move fewer
#: bytes per value (RLE best on runs, bit-packing next, dictionary adds
#: one indirection but smaller codes); plain is the 1.0 baseline.
SCAN_COST_FACTOR = {
    "plain": 1.0,
    "bitpack": 0.7,
    "dictionary": 0.85,
    "rle": 0.55,
}

#: Relative per-row seal (encode) cost: building dictionaries and run
#: boundaries is costlier than memcpy — the maintenance price that
#: erodes compressed layouts under update-heavy mixes (HAP's trade-off).
SEAL_COST_FACTOR = {
    "plain": 1.0,
    "bitpack": 1.15,
    "dictionary": 1.8,
    "rle": 1.3,
}


@dataclass
class Segment:
    """One sealed, immutable batch of rows in columnar form."""

    segment_id: int
    n_rows: int
    encodings: dict[str, Encoding]
    keys: list[Key]
    zone_maps: dict[str, tuple]
    delete_mask: np.ndarray          # True = row is dead
    max_commit_ts: Timestamp

    def live_count(self) -> int:
        return int(self.n_rows - self.delete_mask.sum())

    def size_bytes(self) -> int:
        return sum(enc.size_bytes() for enc in self.encodings.values())

    def may_match(self, predicate: Predicate, schema: Schema) -> bool:
        """Zone-map check: can any row here satisfy the predicate?"""
        for col in predicate.referenced_columns():
            bounds = column_range(predicate, col)
            zone = self.zone_maps.get(col)
            if bounds is None or zone is None:
                continue
            low, high = bounds
            zmin, zmax = zone
            if low is not None and zmax < low:
                return False
            if high is not None and zmin > high:
                return False
        return True


@dataclass
class ColumnScanResult:
    """Arrays for the requested columns plus the matching keys.

    ``keys`` is empty when the scan ran with ``with_keys=False`` (pure
    columnar consumers like the executor never touch them), so ``len``
    falls back to the array length.
    """

    arrays: dict[str, np.ndarray]
    keys: list[Key]
    segments_scanned: int = 0
    segments_pruned: int = 0

    def __len__(self) -> int:
        if self.keys:
            return len(self.keys)
        for arr in self.arrays.values():
            return len(arr)
        return 0


class ColumnStore:
    """Segmented columnar table with pk-addressed deletes."""

    def __init__(
        self,
        schema: Schema,
        cost: CostModel | None = None,
        forced_encoding: str | None = None,
    ):
        self.schema = schema
        self._cost = cost or CostModel()
        self._forced_encoding = forced_encoding
        self._segments: list[Segment] = []
        self._locations: dict[Key, tuple[int, int]] = {}  # key -> (segment_id, pos)
        self._segment_by_id: dict[int, Segment] = {}
        self._next_segment_id = 0
        self._max_commit_ts: Timestamp = 0
        #: Monotone write-version: bumped on any operation that can change
        #: what a scan returns (seal/delete/compact).  Scan caches key on it.
        self.mutations = 0

    # ------------------------------------------------------------- metadata

    def __len__(self) -> int:
        return sum(seg.live_count() for seg in self._segments)

    @property
    def segments(self) -> list[Segment]:
        return self._segments

    def segment_count(self) -> int:
        return len(self._segments)

    def memory_bytes(self, columns: list[str] | None = None) -> int:
        """Encoded footprint; restrict to ``columns`` when the caller
        only keeps a subset resident (column selection)."""
        if columns is None:
            return sum(seg.size_bytes() for seg in self._segments)
        wanted = set(columns)
        return sum(
            enc.size_bytes()
            for seg in self._segments
            for name, enc in seg.encodings.items()
            if name in wanted
        )

    def max_commit_ts(self) -> Timestamp:
        """Commit timestamp of the freshest data in the store."""
        return self._max_commit_ts

    def contains_key(self, key: Key) -> bool:
        return key in self._locations

    # ------------------------------------------------------------- writes

    def append_rows(self, rows: Sequence[Row], commit_ts: Timestamp) -> Segment:
        """Seal ``rows`` into a new segment (upserting over prior versions)."""
        if not rows:
            raise StorageError("cannot seal an empty segment")
        self.mutations += 1
        validated = [self.schema.validate_row(r) for r in rows]
        keys = [self.schema.key_of(r) for r in validated]
        # Upsert semantics: a key re-appended supersedes its old position.
        stale = [k for k in keys if k in self._locations]
        if stale:
            self.delete_keys(stale)
        arrays = rows_to_columns(self.schema, validated)
        encodings: dict[str, Encoding] = {}
        zone_maps: dict[str, tuple] = {}
        for col in self.schema.columns:
            arr = arrays[col.name]
            if self._forced_encoding is not None:
                from .compression import PlainEncoding, encoding_for_name

                try:
                    encodings[col.name] = encoding_for_name(self._forced_encoding, arr)
                except (ValueError, TypeError):
                    # Codec inapplicable to this dtype (e.g. bit-packing
                    # strings): store plainly rather than failing the seal.
                    encodings[col.name] = PlainEncoding(data=arr)
            else:
                encodings[col.name] = choose_encoding(arr)
            if arr.dtype != object and len(arr):
                zone_maps[col.name] = (arr.min().item(), arr.max().item())
        segment = Segment(
            segment_id=self._next_segment_id,
            n_rows=len(validated),
            encodings=encodings,
            keys=keys,
            zone_maps=zone_maps,
            delete_mask=np.zeros(len(validated), dtype=bool),
            max_commit_ts=commit_ts,
        )
        self._next_segment_id += 1
        self._segments.append(segment)
        self._segment_by_id[segment.segment_id] = segment
        for pos, key in enumerate(keys):
            self._locations[key] = (segment.segment_id, pos)
        self._max_commit_ts = max(self._max_commit_ts, commit_ts)
        seal_factor = sum(
            SEAL_COST_FACTOR.get(enc.name, 1.0) for enc in encodings.values()
        ) / max(len(encodings), 1)
        self._cost.charge_rows(
            self._cost.segment_seal_per_row_us * seal_factor, len(validated)
        )
        return segment

    def append_batch(
        self,
        arrays: dict[str, np.ndarray],
        keys: Sequence[Key],
        commit_ts: Timestamp,
    ) -> Segment:
        """Seal pre-pivoted column ``arrays`` into one segment.

        The bulk counterpart of :meth:`append_rows`: callers supply
        already-encoded cell arrays (e.g. from ``rows_to_columns`` or a
        prior scan) plus the matching key list, so the seal skips the
        per-row validate/key-extract/pivot hops entirely.  Upsert
        semantics, zone maps, encodings and the simulated seal charge
        match the scalar path exactly.
        """
        n = len(keys)
        if n == 0:
            raise StorageError("cannot seal an empty segment")
        self.mutations += 1
        stale = [k for k in keys if k in self._locations]
        if stale:
            self._delete_positions(stale)
        encodings: dict[str, Encoding] = {}
        zone_maps: dict[str, tuple] = {}
        for col in self.schema.columns:
            arr = np.asarray(arrays[col.name])
            if len(arr) != n:
                raise StorageError(
                    f"column {col.name!r} has {len(arr)} values for {n} keys"
                )
            encodings[col.name] = self._encode_column(arr)
            if arr.dtype != object and len(arr):
                zone_maps[col.name] = (arr.min().item(), arr.max().item())
        segment = Segment(
            segment_id=self._next_segment_id,
            n_rows=n,
            encodings=encodings,
            keys=list(keys),
            zone_maps=zone_maps,
            delete_mask=np.zeros(n, dtype=bool),
            max_commit_ts=commit_ts,
        )
        self._next_segment_id += 1
        self._segments.append(segment)
        self._segment_by_id[segment.segment_id] = segment
        sid = segment.segment_id
        self._locations.update(zip(segment.keys, zip(repeat(sid), range(n))))
        self._max_commit_ts = max(self._max_commit_ts, commit_ts)
        seal_factor = sum(
            SEAL_COST_FACTOR.get(enc.name, 1.0) for enc in encodings.values()
        ) / max(len(encodings), 1)
        self._cost.charge_rows(self._cost.segment_seal_per_row_us * seal_factor, n)
        return segment

    def _encode_column(self, arr: np.ndarray) -> Encoding:
        if self._forced_encoding is not None:
            from .compression import PlainEncoding, encoding_for_name

            try:
                return encoding_for_name(self._forced_encoding, arr)
            except (ValueError, TypeError):
                # Codec inapplicable to this dtype (e.g. bit-packing
                # strings): store plainly rather than failing the seal.
                return PlainEncoding(data=arr)
        return choose_encoding(arr)

    def _delete_positions(self, keys: Iterable[Key]) -> int:
        """Flip delete bits without bumping the write version."""
        if not self._locations:
            return 0
        by_segment: dict[int, list[int]] = {}
        pop = self._locations.pop
        for key in keys:
            loc = pop(key, None)
            if loc is None:
                continue
            by_segment.setdefault(loc[0], []).append(loc[1])
        hit = 0
        for segment_id, positions in by_segment.items():
            self._segment_by_id[segment_id].delete_mask[
                np.asarray(positions, dtype=np.int64)
            ] = True
            hit += len(positions)
        return hit

    def delete_keys(self, keys: Iterable[Key]) -> int:
        """Flip delete bits for ``keys``; returns how many were present."""
        self.mutations += 1
        if not self._locations:
            return 0
        hit = 0
        for key in keys:
            loc = self._locations.pop(key, None)
            if loc is None:
                continue
            segment_id, pos = loc
            self._segment_by_id[segment_id].delete_mask[pos] = True
            hit += 1
        return hit

    def delete_batch(self, keys: Sequence[Key]) -> int:
        """Bulk :meth:`delete_keys`: group hits per segment and flip
        each segment's bits with one fancy-indexed assignment."""
        self.mutations += 1
        return self._delete_positions(keys)

    def advance_sync_ts(self, commit_ts: Timestamp) -> None:  # htaplint: ignore[HTL002] -- moves only the freshness watermark; scan results are unchanged and no cache token includes _max_commit_ts
        """Record that the store reflects all commits up to ``commit_ts``.

        Called by synchronizers after merging a delta batch that may
        contain only deletes (which create no new segment).
        """
        self._max_commit_ts = max(self._max_commit_ts, commit_ts)

    # ------------------------------------------------------------- reads

    def get_row(self, key: Key) -> Row | None:
        """Point lookup by primary key (materializes one row).

        Deliberately priced above a row-store probe: reconstruction
        gathers one value per column (k cache misses vs the row store's
        one) — the read-amplification that makes pure column stores a
        poor OLTP primary (Table 1, architecture (d)).
        """
        self._cost.charge(self._cost.row_point_read_us * 0.5)  # pk directory probe
        loc = self._locations.get(key)
        if loc is None:
            return None
        segment_id, pos = loc
        segment = self._segment_by_id[segment_id]
        self._cost.charge(self._cost.column_materialize_per_row_us * len(self.schema))
        positions = np.array([pos])
        return tuple(
            decode_cell(segment.encodings[col.name].take(positions)[0], col.dtype)
            for col in self.schema.columns
        )

    def scan(
        self,
        columns: Sequence[str] | None = None,
        predicate: Predicate = ALWAYS_TRUE,
        with_keys: bool = True,
    ) -> ColumnScanResult:
        """Vectorized scan: decode needed columns, mask, gather, concat.

        Cost is charged per (row, referenced column) pair actually
        scanned; zone maps prune whole segments before any decode.
        ``with_keys=False`` skips building the per-row key list — the
        dominant Python-level cost for wide scans — for callers that
        only consume the arrays.
        """
        wanted = list(columns) if columns is not None else self.schema.column_names
        for name in wanted:
            self.schema.index_of(name)  # validate
        needed = set(wanted) | predicate.referenced_columns()
        out_arrays: dict[str, list[np.ndarray]] = {name: [] for name in wanted}
        out_keys: list[Key] = []
        scanned = 0
        pruned = 0
        for segment in self._segments:
            if segment.live_count() == 0:
                continue
            if not segment.may_match(predicate, self.schema):
                pruned += 1
                continue
            scanned += 1
            decoded = {
                name: segment.encodings[name].decode() for name in needed
            }
            scan_factor = sum(
                SCAN_COST_FACTOR.get(segment.encodings[name].name, 1.0)
                for name in needed
            ) / max(len(needed), 1)
            self._cost.charge(
                self._cost.column_scan_per_value_us
                * scan_factor
                * segment.n_rows
                * max(len(needed), 1)
            )
            mask = predicate.mask(decoded) & ~segment.delete_mask
            if not mask.any():
                continue
            if mask.all():
                # Every row survives: skip the gather (concatenate below
                # copies, so sharing the decoded buffers here is safe).
                for name in wanted:
                    if name in decoded:
                        out_arrays[name].append(decoded[name])
                    else:
                        out_arrays[name].append(segment.encodings[name].decode())
                if with_keys:
                    out_keys.extend(segment.keys)
                continue
            positions = np.flatnonzero(mask)
            for name in wanted:
                if name in decoded:
                    out_arrays[name].append(decoded[name][positions])
                else:
                    out_arrays[name].append(segment.encodings[name].take(positions))
            if with_keys:
                out_keys.extend(segment.keys[p] for p in positions)
        final = {
            name: (
                np.concatenate(parts)
                if parts
                else np.array([], dtype=self.schema.column(name).dtype.numpy_dtype)
            )
            for name, parts in out_arrays.items()
        }
        return ColumnScanResult(
            arrays=final, keys=out_keys, segments_scanned=scanned, segments_pruned=pruned
        )

    def all_rows(self) -> list[Row]:
        """Materialize every live row (test/verification helper)."""
        result = self.scan()
        n = len(result.keys)
        cols = [(result.arrays[c.name], c.dtype) for c in self.schema.columns]
        self._cost.charge_rows(self._cost.column_materialize_per_row_us, n)
        return [
            tuple(decode_cell(col[i], dtype) for col, dtype in cols)
            for i in range(n)
        ]

    # ------------------------------------------------------------- maintenance

    def dead_fraction(self) -> float:
        total = sum(seg.n_rows for seg in self._segments)
        if total == 0:
            return 0.0
        dead = sum(int(seg.delete_mask.sum()) for seg in self._segments)
        return dead / total

    def compact(self, vectorized: bool = False) -> None:
        """Rewrite all live rows into a single fresh segment.

        ``vectorized=True`` moves the surviving rows as whole column
        arrays (scan → reset → :meth:`append_batch`) instead of
        materializing Python row tuples; the simulated materialize and
        seal charges are kept identical to the scalar path.
        """
        self.mutations += 1
        max_ts = self._max_commit_ts
        if vectorized:
            result = self.scan(with_keys=True)
            n = len(result.keys)
            self._cost.charge_rows(self._cost.column_materialize_per_row_us, n)
            self._segments.clear()
            self._segment_by_id.clear()
            self._locations.clear()
            if n:
                self.append_batch(result.arrays, result.keys, commit_ts=max_ts)
        else:
            rows = self.all_rows()
            self._segments.clear()
            self._segment_by_id.clear()
            self._locations.clear()
            if rows:
                self.append_rows(rows, commit_ts=max_ts)
        self._max_commit_ts = max_ts
