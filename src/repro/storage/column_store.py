"""A compressed, segment-based in-memory column store.

The analytical substrate of all four architectures: immutable sealed
segments of compressed column arrays with zone maps (min/max,
null count, distinct hint per segment) and a delete bitmap.  Inserted/
merged rows always form new segments; deletes flip bits; updates are
delete + re-insert — the standard append-only columnar contract that
makes "column scan" (Table 2's AP rows) a pure vectorized operation.

Scans are predicate-aware end to end:

1. zone maps prune whole segments before any decode;
2. surviving segments evaluate the predicate in code/run space where
   the codec allows (:mod:`repro.storage.segment_filter`), decoding a
   column only when they must;
3. output columns are late-materialized — gathered at surviving
   positions only;
4. per-segment work optionally fans out to the deterministic
   :mod:`repro.parallel` pool and merges back in segment-id order,
   byte-identical to the serial loop.

:func:`scan_mode` switches the pruning/code-space/parallel behavior
process-wide (ablation benches and differential tests use it to
reproduce the pre-pruning full-decode path).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import repeat
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.errors import StorageError
from ..common.predicate import ALWAYS_TRUE, Predicate, column_range
from ..common.types import NULL_INT, Key, Row, Schema, decode_cell, rows_to_columns
from ..obs.registry import get_registry
from .code_batch import CodeColumn, concat_code_parts
from .compression import (
    DictionaryEncoding,
    Encoding,
    RunLengthEncoding,
    choose_encoding,
)
from .segment_filter import EncodedColumns, predicate_mask

#: Relative per-value scan cost by codec: compressed layouts move fewer
#: bytes per value (RLE best on runs, bit-packing next, dictionary adds
#: one indirection but smaller codes); plain is the 1.0 baseline.
SCAN_COST_FACTOR = {
    "plain": 1.0,
    "bitpack": 0.7,
    "dictionary": 0.85,
    "rle": 0.55,
}

#: Relative per-row seal (encode) cost: building dictionaries and run
#: boundaries is costlier than memcpy — the maintenance price that
#: erodes compressed layouts under update-heavy mixes (HAP's trade-off).
SEAL_COST_FACTOR = {
    "plain": 1.0,
    "bitpack": 1.15,
    "dictionary": 1.8,
    "rle": 1.3,
}


@dataclass(frozen=True)
class ZoneMap:
    """Per-column pruning metadata for one sealed segment.

    ``min``/``max`` reflect what the *mask* path sees: raw extrema for
    integer columns (NULL sentinels included — ``predicate.mask``
    compares the sentinel value itself), NaN-excluded extrema for float
    columns (comparisons with NaN are always False, so skipping NaN is
    conservative), and sorted-dictionary endpoints for dictionary-coded
    object columns.  ``None`` min/max means "no usable bound".

    ``null_count`` counts NULL cells (sentinel/NaN/None) and
    ``distinct_hint`` is a codec-derived cardinality upper bound
    (dictionary size, or RLE run count) for selectivity estimation.

    Iterating yields ``(min, max)`` — the historical tuple shape.
    """

    min: Any
    max: Any
    null_count: int = 0
    distinct_hint: int | None = None

    def __iter__(self) -> Iterator[Any]:
        yield self.min
        yield self.max


def build_zone_map(arr: np.ndarray, encoding: Encoding) -> ZoneMap | None:
    """Zone map for one sealed column array (None when unusable)."""
    n = len(arr)
    if n == 0:
        return None
    if isinstance(encoding, DictionaryEncoding):
        distinct: int | None = encoding.cardinality()
    elif isinstance(encoding, RunLengthEncoding):
        distinct = encoding.n_runs()  # upper bound: runs >= distinct values
    else:
        distinct = None
    if arr.dtype == object:
        null_count = int(
            np.frompyfunc(lambda v: v is None, 1, 1)(arr).astype(bool).sum()
        )
        zmin = zmax = None
        if isinstance(encoding, DictionaryEncoding) and encoding.cardinality():
            # The sorted dictionary gives exact extrema for free; plain
            # object columns stay unbounded (a Python-level min/max
            # pass is not worth the seal-time cost).
            zmin = encoding.dictionary[0]
            zmax = encoding.dictionary[-1]
        if zmin is None and null_count < n:
            return (
                ZoneMap(None, None, null_count, distinct) if null_count else None
            )
        return ZoneMap(zmin, zmax, null_count, distinct)
    if arr.dtype.kind == "f":
        null_count = int(np.isnan(arr).sum())
        if null_count == n:
            return ZoneMap(None, None, null_count, distinct)
        return ZoneMap(
            float(np.nanmin(arr)), float(np.nanmax(arr)), null_count, distinct
        )
    null_count = (
        int(np.count_nonzero(arr == NULL_INT)) if arr.dtype.kind == "i" else 0
    )
    return ZoneMap(arr.min().item(), arr.max().item(), null_count, distinct)


def zones_may_match(
    zone_maps: dict[str, ZoneMap], n_rows: int, predicate: Predicate
) -> bool:
    """Zone-map check: can any of ``n_rows`` satisfy the predicate?

    Conservative by construction: a unit is skipped only when the
    predicate's extracted bounds provably exclude every value the mask
    path would see — including the all-NULL case, where a bounded
    predicate cannot match (NULL comparisons are False).
    """
    for col in predicate.referenced_columns():
        bounds = column_range(predicate, col)
        if bounds is None:
            continue
        zone = zone_maps.get(col)
        if zone is None:
            continue
        if zone.min is None:
            # No usable extrema.  All-NULL columns (min is None and
            # every cell null) cannot satisfy a bounded predicate.
            if zone.null_count >= n_rows:
                return False
            continue
        low, high = bounds
        try:
            if low is not None and zone.max < low:
                return False
            if high is not None and zone.min > high:
                return False
        except TypeError:
            # Bound incomparable with the zone's type: no pruning.
            continue
    return True


@dataclass
class Segment:
    """One sealed, immutable batch of rows in columnar form."""

    segment_id: int
    n_rows: int
    encodings: dict[str, Encoding]
    keys: list[Key]
    zone_maps: dict[str, ZoneMap]
    delete_mask: np.ndarray          # True = row is dead
    max_commit_ts: Timestamp
    #: Number of set bits in ``delete_mask``, maintained by the delete
    #: paths so per-scan liveness checks never re-sum the mask.
    dead_count: int = 0

    def live_count(self) -> int:
        return self.n_rows - self.dead_count

    def size_bytes(self) -> int:
        return sum(enc.size_bytes() for enc in self.encodings.values())

    def may_match(self, predicate: Predicate, schema: Schema) -> bool:
        """Zone-map check: can any row here satisfy the predicate?"""
        return zones_may_match(self.zone_maps, self.n_rows, predicate)


@dataclass
class ColumnScanResult:
    """Arrays for the requested columns plus the matching keys.

    ``keys`` is ``None`` when the scan ran with ``with_keys=False``
    (pure columnar consumers like the executor never touch them) — no
    key list is ever allocated on that path — so ``len`` falls back to
    the array length.
    """

    arrays: dict[str, np.ndarray]
    keys: list[Key] | None = None
    segments_scanned: int = 0
    segments_pruned: int = 0
    code_space_filters: int = 0

    def __len__(self) -> int:
        if self.keys is not None:
            return len(self.keys)
        for arr in self.arrays.values():
            return len(arr)
        return 0


#: Process-wide scan behavior; :func:`scan_mode` overrides it for a
#: block.  ``parallel=True`` means "use :func:`repro.parallel.
#: get_default_pool` when one is installed" — with no pool installed
#: scans stay serial.
_SCAN_DEFAULTS = {"prune": True, "code_space": True, "parallel": True}


@contextmanager
def scan_mode(
    *,
    prune: bool | None = None,
    code_space: bool | None = None,
    parallel: bool | None = None,
) -> Iterator[None]:
    """Temporarily override the default scan pipeline behavior.

    ``scan_mode(prune=False, code_space=False)`` reproduces the
    pre-pruning full-decode scan (every needed column of every live
    segment decoded before the predicate runs) — the ablation baseline
    for the perf bench and the reference side of differential tests.
    """
    saved = dict(_SCAN_DEFAULTS)
    if prune is not None:
        _SCAN_DEFAULTS["prune"] = prune
    if code_space is not None:
        _SCAN_DEFAULTS["code_space"] = code_space
    if parallel is not None:
        _SCAN_DEFAULTS["parallel"] = parallel
    try:
        yield
    finally:
        _SCAN_DEFAULTS.update(saved)


@dataclass
class _SegmentPartial:
    """One segment's (or morsel's) contribution to a scan.

    Built entirely off the shared clock: simulated work is carried as
    ``(per-value rate, value count)`` pairs so the merge can aggregate
    integer counts per rate before pricing them — any morsel split of a
    segment settles *bit-identical* cost to the serial segment scan.
    ``arrays`` values are ndarrays, or :class:`CodeColumn` parts when
    the scan hands codes across the boundary (``encode=True``).
    """

    arrays: dict[str, object] | None  # None: no surviving rows
    keys: Sequence[Key] | None
    charges: tuple[tuple[float, int], ...]
    code_space_filters: int


class ColumnStore:
    """Segmented columnar table with pk-addressed deletes."""

    def __init__(
        self,
        schema: Schema,
        cost: CostModel | None = None,
        forced_encoding: str | None = None,
    ):
        self.schema = schema
        self._cost = cost or CostModel()
        self._forced_encoding = forced_encoding
        self._segments: list[Segment] = []
        self._locations: dict[Key, tuple[int, int]] = {}  # key -> (segment_id, pos)
        self._segment_by_id: dict[int, Segment] = {}
        self._next_segment_id = 0
        self._max_commit_ts: Timestamp = 0
        #: Monotone write-version: bumped on any operation that can change
        #: what a scan returns (seal/delete/compact).  Scan caches key on it.
        self.mutations = 0
        #: Store-level zone index: per-column (min, max) over every
        #: sealed segment, widened on append and rebuilt on compact.
        #: Lets planners bound a predicate against the whole table in
        #: O(1) and backs :meth:`table_range`.
        self._zone_ranges: dict[str, tuple] = {}
        reg = get_registry()
        self._scanned_counter = reg.counter("scan.segments_scanned")
        self._pruned_counter = reg.counter("scan.segments_pruned")
        self._code_filter_counter = reg.counter("scan.code_space_filters")
        self._morsel_counter = reg.counter("parallel.morsels")

    # ------------------------------------------------------------- metadata

    def __len__(self) -> int:
        return sum(seg.live_count() for seg in self._segments)

    @property
    def segments(self) -> list[Segment]:
        return self._segments

    def segment_count(self) -> int:
        return len(self._segments)

    def memory_bytes(self, columns: list[str] | None = None) -> int:
        """Encoded footprint; restrict to ``columns`` when the caller
        only keeps a subset resident (column selection)."""
        if columns is None:
            return sum(seg.size_bytes() for seg in self._segments)
        wanted = set(columns)
        return sum(
            enc.size_bytes()
            for seg in self._segments
            for name, enc in seg.encodings.items()
            if name in wanted
        )

    def max_commit_ts(self) -> Timestamp:
        """Commit timestamp of the freshest data in the store."""
        return self._max_commit_ts

    def contains_key(self, key: Key) -> bool:
        return key in self._locations

    # ------------------------------------------------------------- writes

    def append_rows(self, rows: Sequence[Row], commit_ts: Timestamp) -> Segment:
        """Seal ``rows`` into a new segment (upserting over prior versions)."""
        if not rows:
            raise StorageError("cannot seal an empty segment")
        self.mutations += 1
        validated = [self.schema.validate_row(r) for r in rows]
        keys = [self.schema.key_of(r) for r in validated]
        # Upsert semantics: a key re-appended supersedes its old position.
        stale = [k for k in keys if k in self._locations]
        if stale:
            self.delete_keys(stale)
        arrays = rows_to_columns(self.schema, validated)
        encodings: dict[str, Encoding] = {}
        zone_maps: dict[str, ZoneMap] = {}
        for col in self.schema.columns:
            arr = arrays[col.name]
            encodings[col.name] = self._encode_column(arr)
            zone = build_zone_map(arr, encodings[col.name])
            if zone is not None:
                zone_maps[col.name] = zone
        self._widen_zone_index(zone_maps)
        segment = Segment(
            segment_id=self._next_segment_id,
            n_rows=len(validated),
            encodings=encodings,
            keys=keys,
            zone_maps=zone_maps,
            delete_mask=np.zeros(len(validated), dtype=bool),
            max_commit_ts=commit_ts,
        )
        self._next_segment_id += 1
        self._segments.append(segment)
        self._segment_by_id[segment.segment_id] = segment
        for pos, key in enumerate(keys):
            self._locations[key] = (segment.segment_id, pos)
        self._max_commit_ts = max(self._max_commit_ts, commit_ts)
        seal_factor = sum(
            SEAL_COST_FACTOR.get(enc.name, 1.0) for enc in encodings.values()
        ) / max(len(encodings), 1)
        self._cost.charge_rows(
            self._cost.segment_seal_per_row_us * seal_factor, len(validated)
        )
        return segment

    def append_batch(
        self,
        arrays: dict[str, np.ndarray],
        keys: Sequence[Key],
        commit_ts: Timestamp,
    ) -> Segment:
        """Seal pre-pivoted column ``arrays`` into one segment.

        The bulk counterpart of :meth:`append_rows`: callers supply
        already-encoded cell arrays (e.g. from ``rows_to_columns`` or a
        prior scan) plus the matching key list, so the seal skips the
        per-row validate/key-extract/pivot hops entirely.  Upsert
        semantics, zone maps, encodings and the simulated seal charge
        match the scalar path exactly.
        """
        n = len(keys)
        if n == 0:
            raise StorageError("cannot seal an empty segment")
        self.mutations += 1
        stale = [k for k in keys if k in self._locations]
        if stale:
            self._delete_positions(stale)
        encodings: dict[str, Encoding] = {}
        zone_maps: dict[str, ZoneMap] = {}
        for col in self.schema.columns:
            arr = np.asarray(arrays[col.name])
            if len(arr) != n:
                raise StorageError(
                    f"column {col.name!r} has {len(arr)} values for {n} keys"
                )
            encodings[col.name] = self._encode_column(arr)
            zone = build_zone_map(arr, encodings[col.name])
            if zone is not None:
                zone_maps[col.name] = zone
        self._widen_zone_index(zone_maps)
        segment = Segment(
            segment_id=self._next_segment_id,
            n_rows=n,
            encodings=encodings,
            keys=list(keys),
            zone_maps=zone_maps,
            delete_mask=np.zeros(n, dtype=bool),
            max_commit_ts=commit_ts,
        )
        self._next_segment_id += 1
        self._segments.append(segment)
        self._segment_by_id[segment.segment_id] = segment
        sid = segment.segment_id
        self._locations.update(zip(segment.keys, zip(repeat(sid), range(n))))
        self._max_commit_ts = max(self._max_commit_ts, commit_ts)
        seal_factor = sum(
            SEAL_COST_FACTOR.get(enc.name, 1.0) for enc in encodings.values()
        ) / max(len(encodings), 1)
        self._cost.charge_rows(self._cost.segment_seal_per_row_us * seal_factor, n)
        return segment

    def _encode_column(self, arr: np.ndarray) -> Encoding:
        if self._forced_encoding is not None:
            from .compression import PlainEncoding, encoding_for_name

            try:
                return encoding_for_name(self._forced_encoding, arr)
            except (ValueError, TypeError):
                # Codec inapplicable to this dtype (e.g. bit-packing
                # strings): store plainly rather than failing the seal.
                return PlainEncoding(data=arr)
        return choose_encoding(arr)

    def _widen_zone_index(self, zone_maps: dict[str, ZoneMap]) -> None:
        """Fold a new segment's zone maps into the store-level index.

        Only called from the sealing paths (which bump ``mutations``);
        deletes leave the index conservatively wide and ``compact``
        rebuilds it from scratch.
        """
        for name, zone in zone_maps.items():
            if zone.min is None:
                continue
            current = self._zone_ranges.get(name)
            if current is None:
                self._zone_ranges[name] = (zone.min, zone.max)
                continue
            lo, hi = current
            try:
                self._zone_ranges[name] = (
                    min(lo, zone.min), max(hi, zone.max)
                )
            except TypeError:  # mixed incomparable types across segments
                self._zone_ranges.pop(name, None)

    def _delete_positions(self, keys: Iterable[Key]) -> int:
        """Flip delete bits without bumping the write version."""
        if not self._locations:
            return 0
        by_segment: dict[int, list[int]] = {}
        pop = self._locations.pop
        for key in keys:
            loc = pop(key, None)
            if loc is None:
                continue
            by_segment.setdefault(loc[0], []).append(loc[1])
        hit = 0
        for segment_id, positions in by_segment.items():
            segment = self._segment_by_id[segment_id]
            segment.delete_mask[np.asarray(positions, dtype=np.int64)] = True
            segment.dead_count += len(positions)
            hit += len(positions)
        return hit

    def delete_keys(self, keys: Iterable[Key]) -> int:
        """Flip delete bits for ``keys``; returns how many were present."""
        self.mutations += 1
        if not self._locations:
            return 0
        hit = 0
        for key in keys:
            loc = self._locations.pop(key, None)
            if loc is None:
                continue
            segment_id, pos = loc
            segment = self._segment_by_id[segment_id]
            segment.delete_mask[pos] = True
            segment.dead_count += 1
            hit += 1
        return hit

    def delete_batch(self, keys: Sequence[Key]) -> int:
        """Bulk :meth:`delete_keys`: group hits per segment and flip
        each segment's bits with one fancy-indexed assignment."""
        self.mutations += 1
        return self._delete_positions(keys)

    def advance_sync_ts(self, commit_ts: Timestamp) -> None:  # htaplint: ignore[HTL002] -- moves only the freshness watermark; scan results are unchanged and no cache token includes _max_commit_ts
        """Record that the store reflects all commits up to ``commit_ts``.

        Called by synchronizers after merging a delta batch that may
        contain only deletes (which create no new segment).
        """
        self._max_commit_ts = max(self._max_commit_ts, commit_ts)

    # ------------------------------------------------------------- reads

    def get_row(self, key: Key) -> Row | None:
        """Point lookup by primary key (materializes one row).

        Deliberately priced above a row-store probe: reconstruction
        gathers one value per column (k cache misses vs the row store's
        one) — the read-amplification that makes pure column stores a
        poor OLTP primary (Table 1, architecture (d)).
        """
        self._cost.charge(self._cost.row_point_read_us * 0.5)  # pk directory probe
        loc = self._locations.get(key)
        if loc is None:
            return None
        segment_id, pos = loc
        segment = self._segment_by_id[segment_id]
        self._cost.charge(self._cost.column_materialize_per_row_us * len(self.schema))
        positions = np.array([pos])
        return tuple(
            decode_cell(segment.encodings[col.name].take(positions)[0], col.dtype)
            for col in self.schema.columns
        )

    def scan(
        self,
        columns: Sequence[str] | None = None,
        predicate: Predicate = ALWAYS_TRUE,
        with_keys: bool = True,
        *,
        prune: bool | None = None,
        code_space: bool | None = None,
        parallel: bool | None = None,
        encode: bool = False,
    ) -> ColumnScanResult:
        """Predicate-aware scan: prune, filter encoded, gather survivors.

        Per segment: zone maps prune first; the predicate then runs in
        code/run space where the codec allows (decoding a column only
        when it must); output columns are gathered at surviving
        positions only.  ``with_keys=False`` never allocates the key
        list.  The keyword-only flags override :func:`scan_mode`'s
        process-wide defaults; ``prune=False, code_space=False`` is the
        pre-pruning full-decode reference path.

        ``encode=True`` keeps output columns *encoded* across the scan
        boundary: a wanted column whose every surviving segment carries
        a code-space-safe sorted dictionary is returned as a
        :class:`CodeColumn` (codes gathered at surviving positions, one
        merged dictionary — cross-segment dictionaries union-remap at
        the merge), so joins/GROUP BY/DISTINCT downstream can run on
        codes and defer materialization to result emit.

        With a :mod:`repro.parallel` pool installed (and ``parallel``
        on), work fans out to worker threads and merges in submission
        order.  The unit of work is a *morsel* — a row range of a
        surviving segment (``pool.morsel_rows``; whole segments when
        unset).  Zone-map pruning runs once per segment here in the
        driver, never per morsel, and workers never touch the shared
        clock: each task reports (rate, value-count) charge pairs whose
        integer counts the merge aggregates per rate before pricing, so
        serial, segment-parallel and morsel-parallel scans produce
        identical results *and* bit-identical simulated cost.
        """
        wanted = list(columns) if columns is not None else self.schema.column_names
        for name in wanted:
            self.schema.index_of(name)  # validate
        needed = set(wanted) | predicate.referenced_columns()
        if prune is None:
            prune = _SCAN_DEFAULTS["prune"]
        if code_space is None:
            code_space = _SCAN_DEFAULTS["code_space"]
        if parallel is None:
            parallel = _SCAN_DEFAULTS["parallel"]
        pool = None
        if parallel:
            from ..parallel import get_default_pool

            pool = get_default_pool()
        # Snapshot the segment list: appends racing with (or triggered
        # mid-scan by) this scan never change what it returns.
        live = [seg for seg in self._segments if seg.live_count() > 0]
        survivors: list[Segment] = []
        pruned = 0
        charge = 0.0
        if prune:
            for segment in live:
                charge += self._cost.zone_map_check_us
                if segment.may_match(predicate, self.schema):
                    survivors.append(segment)
                else:
                    pruned += 1
        else:
            survivors = live
        encode_cols = (
            self._encodable_columns(wanted, survivors) if encode else frozenset()
        )
        morsel_rows = getattr(pool, "morsel_rows", None) if pool else None
        tasks: list[tuple[Segment, int, int, int]] = []
        for segment in survivors:
            if morsel_rows and segment.n_rows > morsel_rows:
                for index, start in enumerate(range(0, segment.n_rows, morsel_rows)):
                    stop = min(start + morsel_rows, segment.n_rows)
                    tasks.append((segment, start, stop, index))
            else:
                tasks.append((segment, 0, segment.n_rows, 0))

        def task(desc: tuple[Segment, int, int, int]) -> _SegmentPartial:
            segment, start, stop, index = desc
            return self._scan_segment(
                segment, start, stop, index, wanted, needed,
                predicate, with_keys, code_space, encode_cols,
            )

        if pool is not None and len(tasks) > 1:
            parts = pool.map_ordered(task, tasks)
            if len(tasks) > len(survivors):
                self._morsel_counter.inc(len(tasks))
        else:
            parts = [task(desc) for desc in tasks]
        out_arrays: dict[str, list] = {name: [] for name in wanted}
        out_keys: list[Key] | None = [] if with_keys else None
        code_filters = 0
        rate_counts: dict[float, int] = {}
        for desc, part in zip(tasks, parts):  # already in submission order
            for rate, count in part.charges:
                rate_counts[rate] = rate_counts.get(rate, 0) + count
            if desc[3] == 0:
                # Every morsel of a segment evaluates the same leaves;
                # count each segment's code-space filters once (morsel 0
                # is representative), matching the serial scan's tally.
                code_filters += part.code_space_filters
            if part.arrays is None:
                continue
            for name in wanted:
                out_arrays[name].append(part.arrays[name])
            if out_keys is not None:
                out_keys.extend(part.keys)
        final: dict[str, object] = {}
        remapped = 0
        for name, parts_ in out_arrays.items():
            if not parts_:
                final[name] = np.array(
                    [], dtype=self.schema.column(name).dtype.numpy_dtype
                )
            elif name in encode_cols:
                column, n_remap = concat_code_parts(
                    [(p.codes, p.dictionary) for p in parts_]
                )
                final[name] = column
                remapped += n_remap
            else:
                final[name] = np.concatenate(parts_)
        for rate, count in rate_counts.items():
            charge += rate * count
        if remapped:
            charge += self._cost.code_remap_per_value_us * remapped
        self._cost.charge(charge)
        scanned = len(survivors)
        if scanned:
            self._scanned_counter.inc(scanned)
        if pruned:
            self._pruned_counter.inc(pruned)
        if code_filters:
            self._code_filter_counter.inc(code_filters)
        return ColumnScanResult(
            arrays=final,
            keys=out_keys,
            segments_scanned=scanned,
            segments_pruned=pruned,
            code_space_filters=code_filters,
        )

    def _encodable_columns(
        self, wanted: list[str], survivors: list[Segment]
    ) -> frozenset[str]:
        """Wanted columns every surviving segment can serve as codes.

        All-or-nothing per column and decided up front in the driver —
        a fixed representation regardless of pool, morsel split, or
        which segments end up empty, so scan results are deterministic.
        """
        if not survivors:
            return frozenset()
        ok = []
        for name in wanted:
            if all(
                isinstance(seg.encodings.get(name), DictionaryEncoding)
                and seg.encodings[name].code_space_safe()
                for seg in survivors
            ):
                ok.append(name)
        return frozenset(ok)

    def encoded_column_fraction(self, columns: Sequence[str]) -> float:
        """Fraction of ``columns`` servable as dictionary codes across
        every live segment — the planner's code-space hint (a planning
        estimate: no simulated charge)."""
        cols = list(columns)
        live = [seg for seg in self._segments if seg.live_count() > 0]
        if not live or not cols:
            return 0.0
        servable = sum(
            1
            for name in cols
            if all(
                isinstance(seg.encodings.get(name), DictionaryEncoding)
                and seg.encodings[name].code_space_safe()
                for seg in live
            )
        )
        return servable / len(cols)

    def _scan_segment(
        self,
        segment: Segment,
        start: int,
        stop: int,
        morsel_index: int,
        wanted: list[str],
        needed: set[str],
        predicate: Predicate,
        with_keys: bool,
        code_space: bool,
        encode_cols: frozenset[str],
    ) -> _SegmentPartial:
        """One morsel's scan work (rows ``[start, stop)`` of a segment);
        thread-safe (no shared-state writes)."""
        whole = start == 0 and stop == segment.n_rows
        if whole:
            encodings = segment.encodings
        else:
            encodings = {
                name: enc.slice(start, stop)
                for name, enc in segment.encodings.items()
                if name in needed
            }
        data = EncodedColumns(
            encodings,
            stop - start,
            self._cost.column_scan_per_value_us,
            self._cost.code_filter_per_value_us,
            SCAN_COST_FACTOR,
            self._cost.code_gather_per_value_us,
        )
        if code_space:
            mask = predicate_mask(predicate, data)
        else:
            # Reference behavior: decode every needed column up front
            # and evaluate the predicate on materialized arrays.
            decoded = {name: data.array(name) for name in needed}
            if decoded:
                mask = np.asarray(predicate.mask(decoded), dtype=bool)
            else:
                mask = np.ones(stop - start, dtype=bool)
        mask = mask & ~segment.delete_mask[start:stop]
        if not mask.any():
            return _SegmentPartial(
                None, None, data.charge_items(), data.code_space_filters
            )
        if mask.all():
            # Every row survives: full decodes / full code arrays
            # (concatenate at the merge copies, so sharing buffers is
            # safe).
            arrays = {
                name: (
                    CodeColumn(data.codes(name), data.encoding(name).dictionary)
                    if name in encode_cols
                    else data.array(name)
                )
                for name in wanted
            }
            keys: Sequence[Key] | None = None
            if with_keys:
                keys = segment.keys if whole else segment.keys[start:stop]
            return _SegmentPartial(
                arrays, keys, data.charge_items(), data.code_space_filters
            )
        positions = np.flatnonzero(mask)
        arrays = {
            name: (
                CodeColumn(
                    data.codes(name, positions), data.encoding(name).dictionary
                )
                if name in encode_cols
                else data.gather(name, positions)
            )
            for name in wanted
        }
        keys = (
            [segment.keys[start + p] for p in positions] if with_keys else None
        )
        return _SegmentPartial(
            arrays, keys, data.charge_items(), data.code_space_filters
        )

    # ------------------------------------------------------- pruning estimates

    def table_range(self, column: str) -> tuple | None:
        """Store-level (min, max) over every sealed segment, or None."""
        return self._zone_ranges.get(column)

    def pruned_row_fraction(self, predicate: Predicate) -> float:
        """Fraction of stored rows in segments zone maps would prune.

        A planning-time estimate (no simulated charge): the optimizer
        discounts the column-scan price by this fraction, which is how
        zone-map pruning becomes visible to access-path choice.
        """
        total = 0
        pruned_rows = 0
        for segment in self._segments:
            if segment.live_count() == 0:
                continue
            total += segment.n_rows
            if not segment.may_match(predicate, self.schema):
                pruned_rows += segment.n_rows
        if total == 0:
            return 0.0
        return pruned_rows / total

    def all_rows(self) -> list[Row]:
        """Materialize every live row (test/verification helper)."""
        result = self.scan()
        n = len(result.keys)
        cols = [(result.arrays[c.name], c.dtype) for c in self.schema.columns]
        self._cost.charge_rows(self._cost.column_materialize_per_row_us, n)
        return [
            tuple(decode_cell(col[i], dtype) for col, dtype in cols)
            for i in range(n)
        ]

    # ------------------------------------------------------------- maintenance

    def dead_fraction(self) -> float:
        total = sum(seg.n_rows for seg in self._segments)
        if total == 0:
            return 0.0
        dead = sum(seg.dead_count for seg in self._segments)
        return dead / total

    def compact(self, vectorized: bool = False) -> None:
        """Rewrite all live rows into a single fresh segment.

        ``vectorized=True`` moves the surviving rows as whole column
        arrays (scan → reset → :meth:`append_batch`) instead of
        materializing Python row tuples; the simulated materialize and
        seal charges are kept identical to the scalar path.
        """
        self.mutations += 1
        max_ts = self._max_commit_ts
        if vectorized:
            result = self.scan(with_keys=True)
            n = len(result.keys)
            self._cost.charge_rows(self._cost.column_materialize_per_row_us, n)
            self._segments.clear()
            self._segment_by_id.clear()
            self._locations.clear()
            self._zone_ranges.clear()  # rebuilt by the re-seal below
            if n:
                self.append_batch(result.arrays, result.keys, commit_ts=max_ts)
        else:
            rows = self.all_rows()
            self._segments.clear()
            self._segment_by_id.clear()
            self._locations.clear()
            self._zone_ranges.clear()
            if rows:
                self.append_rows(rows, commit_ts=max_ts)
        self._max_commit_ts = max_ts
