"""In-memory delta store + delete bitmap.

Architecture (a) and (d) systems append every committed change to an
in-memory, row-wise delta that analytical scans merge on the fly (the
"in-memory delta and column scan" of Table 2) until the data
synchronizer folds it into the main column store.  Deletes against
rows already in the main store are tracked as a delete set — the
"delete bitmap" of §2.2(1).

Entries are held *columnar* internally (parallel kind/key/row/ts
columns plus dense per-key codes) so merges can drain them as a
:class:`~repro.storage.delta_batch.DeltaBatch` and collapse them with
one NumPy scatter instead of a per-entry Python loop.  The classic
:class:`DeltaEntry` object view is materialized on demand for the
scalar reference paths.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.predicate import ALWAYS_TRUE, Predicate
from ..common.types import Key, Row, Schema
from .delta_batch import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_UPDATE,
    DeltaBatch,
)


class DeltaKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


_KIND_CODE = {
    DeltaKind.INSERT: KIND_INSERT,
    DeltaKind.UPDATE: KIND_UPDATE,
    DeltaKind.DELETE: KIND_DELETE,
}
_CODE_KIND = {code: kind for kind, code in _KIND_CODE.items()}


@dataclass(frozen=True)
class DeltaEntry:
    kind: DeltaKind
    key: Key
    row: Row | None         # None for deletes
    commit_ts: Timestamp


class InMemoryDeltaStore:
    """Commit-ordered delta entries with a per-key latest index."""

    def __init__(self, schema: Schema, cost: CostModel | None = None):
        self.schema = schema
        self._cost = cost or CostModel()
        # Columnar entry storage: one append per column keeps the OLTP
        # write path cheap while merges read whole columns at once.
        self._kinds: list[int] = []
        self._keys: list[Key] = []
        self._rows: list[Row | None] = []
        self._ts: list[Timestamp] = []
        # Dense per-key integer codes (stable for the store's lifetime)
        # power the vectorized last-writer-wins collapse.
        self._key_codes: list[int] = []
        self._code_of: dict[Key, int] = {}
        self._latest: dict[Key, int] = {}  # key -> index of newest entry

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def entries(self) -> list[DeltaEntry]:
        """Object view of the columnar storage (scalar-path compat)."""
        return [
            DeltaEntry(_CODE_KIND[k], key, row, ts)
            for k, key, row, ts in zip(self._kinds, self._keys, self._rows, self._ts)
        ]

    # ------------------------------------------------------------- ingest

    def _append_raw(
        self, kind_code: int, key: Key, row: Row | None, commit_ts: Timestamp
    ) -> None:
        if self._ts and commit_ts < self._ts[-1]:
            raise ValueError("delta entries must arrive in commit order")
        self._kinds.append(kind_code)
        self._keys.append(key)
        self._rows.append(row)
        self._ts.append(commit_ts)
        self._key_codes.append(self._code_of.setdefault(key, len(self._code_of)))
        self._latest[key] = len(self._keys) - 1

    def append(self, entry: DeltaEntry) -> None:
        self._cost.charge(self._cost.row_point_write_us)
        self._append_raw(_KIND_CODE[entry.kind], entry.key, entry.row, entry.commit_ts)

    def record_insert(self, row: Row, commit_ts: Timestamp) -> None:
        self._cost.charge(self._cost.row_point_write_us)
        self._append_raw(KIND_INSERT, self.schema.key_of(row), row, commit_ts)

    def record_update(self, row: Row, commit_ts: Timestamp) -> None:
        self._cost.charge(self._cost.row_point_write_us)
        self._append_raw(KIND_UPDATE, self.schema.key_of(row), row, commit_ts)

    def record_delete(self, key: Key, commit_ts: Timestamp) -> None:
        self._cost.charge(self._cost.row_point_write_us)
        self._append_raw(KIND_DELETE, key, None, commit_ts)

    def record_insert_batch(self, rows: Sequence[Row], commit_ts: Timestamp) -> None:
        """Bulk-ingest ``rows`` at one commit timestamp (one charge)."""
        if not rows:
            return
        self._cost.charge_rows(self._cost.row_point_write_us, len(rows))
        key_of = self.schema.key_of
        for row in rows:
            self._append_raw(KIND_INSERT, key_of(row), row, commit_ts)

    def record_delete_batch(self, keys: Sequence[Key], commit_ts: Timestamp) -> None:
        if not keys:
            return
        self._cost.charge_rows(self._cost.row_point_write_us, len(keys))
        for key in keys:
            self._append_raw(KIND_DELETE, key, None, commit_ts)

    # ------------------------------------------------------------- reads

    def _cut_index(self, ts: Timestamp) -> int:
        """Number of leading entries with commit_ts <= ts (commit order)."""
        return bisect_right(self._ts, ts)

    def effective_rows(
        self, snapshot_ts: Timestamp, predicate: Predicate = ALWAYS_TRUE
    ) -> tuple[dict[Key, Row], set[Key]]:
        """Collapse entries visible at ``snapshot_ts`` into final images.

        Returns ``(live, tombstones)``: the newest row image per key that
        still matches ``predicate``, and the set of keys deleted by the
        delta (tombstones must also suppress main-store rows).
        """
        cut = self._cut_index(snapshot_ts)
        self._cost.charge_rows(self._cost.delta_scan_per_row_us, max(cut, 1))
        live, tombstones = self._slice_batch(0, cut).collapse().as_dicts()
        if not isinstance(predicate, type(ALWAYS_TRUE)):
            live = {
                key: row
                for key, row in live.items()
                if predicate.matches(row, self.schema)
            }
        return live, tombstones

    def updated_keys(self) -> set[Key]:
        return set(self._latest.keys())

    def max_commit_ts(self) -> Timestamp:
        return self._ts[-1] if self._ts else 0

    def min_commit_ts(self) -> Timestamp:
        return self._ts[0] if self._ts else 0

    def memory_bytes(self) -> int:
        width = max(1, len(self.schema.columns))
        return len(self._keys) * width * 56  # row-wise deltas are fat

    # ------------------------------------------------------------- merge support

    def _slice_batch(self, start: int, stop: int) -> DeltaBatch:
        return DeltaBatch.from_columns(
            self._kinds[start:stop],
            self._keys[start:stop],
            self._rows[start:stop],
            self._ts[start:stop],
            key_codes=self._key_codes[start:stop],
            # Codes are store-lifetime dense ids, so the live dict size
            # upper-bounds every code in any slice.
            n_codes=len(self._code_of),
        )

    def _drain_cut(self, cut: int) -> None:
        """Drop the first ``cut`` entries, keeping residuals consistent.

        Residual entries (commits that interleaved with phase 1 of a
        two-phase merge) must have ``_latest`` *re-indexed* against
        their new positions — offset arithmetic on the old indexes
        would go stale as soon as a drained key also has a residual
        entry.
        """
        self._kinds = self._kinds[cut:]
        self._keys = self._keys[cut:]
        self._rows = self._rows[cut:]
        self._ts = self._ts[cut:]
        self._key_codes = self._key_codes[cut:]
        self._latest = {key: i for i, key in enumerate(self._keys)}

    def drain_batch_up_to(self, ts: Timestamp) -> DeltaBatch:
        """Columnar variant of :meth:`drain_up_to` for batch mergers."""
        cut = self._cut_index(ts)
        if cut == len(self._keys):
            # Full drain (the common merge-everything case): hand the
            # slabs over without slicing copies or a _latest rebuild.
            batch = DeltaBatch.from_columns(
                self._kinds,
                self._keys,
                self._rows,
                self._ts,
                key_codes=self._key_codes,
                n_codes=len(self._code_of),
            )
            self._kinds = []
            self._keys = []
            self._rows = []
            self._ts = []
            self._key_codes = []
            self._latest = {}
            return batch
        batch = self._slice_batch(0, cut)
        self._drain_cut(cut)
        return batch

    def drain_up_to(self, ts: Timestamp) -> list[DeltaEntry]:
        """Remove and return every entry with commit_ts <= ts.

        The data synchronizer calls this inside its merge; remaining
        entries (committed after ``ts``) stay behind for the next round.
        """
        cut = self._cut_index(ts)
        drained = [
            DeltaEntry(_CODE_KIND[k], key, row, ts_)
            for k, key, row, ts_ in zip(
                self._kinds[:cut], self._keys[:cut], self._rows[:cut], self._ts[:cut]
            )
        ]
        self._drain_cut(cut)
        return drained

    def clear(self) -> list[DeltaEntry]:
        return self.drain_up_to(self.max_commit_ts())

    def clear_batch(self) -> DeltaBatch:
        return self.drain_batch_up_to(self.max_commit_ts())


def collapse_entries(
    entries: Iterable[DeltaEntry],
) -> tuple[dict[Key, Row], set[Key]]:
    """Final row image per key plus tombstoned keys, for a merge batch.

    The scalar reference collapse; the vectorized equivalent lives in
    :mod:`repro.storage.delta_batch`.
    """
    live: dict[Key, Row] = {}
    tombstones: set[Key] = set()
    for entry in entries:
        if entry.kind is DeltaKind.DELETE:
            live.pop(entry.key, None)
            tombstones.add(entry.key)
        else:
            tombstones.discard(entry.key)
            live[entry.key] = entry.row
    return live, tombstones
