"""In-memory delta store + delete bitmap.

Architecture (a) and (d) systems append every committed change to an
in-memory, row-wise delta that analytical scans merge on the fly (the
"in-memory delta and column scan" of Table 2) until the data
synchronizer folds it into the main column store.  Deletes against
rows already in the main store are tracked as a delete set — the
"delete bitmap" of §2.2(1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.predicate import ALWAYS_TRUE, Predicate
from ..common.types import Key, Row, Schema


class DeltaKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class DeltaEntry:
    kind: DeltaKind
    key: Key
    row: Row | None         # None for deletes
    commit_ts: Timestamp


class InMemoryDeltaStore:
    """Commit-ordered delta entries with a per-key latest index."""

    def __init__(self, schema: Schema, cost: CostModel | None = None):
        self.schema = schema
        self._cost = cost or CostModel()
        self._entries: list[DeltaEntry] = []
        self._latest: dict[Key, int] = {}  # key -> index of newest entry

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[DeltaEntry]:
        return self._entries

    def append(self, entry: DeltaEntry) -> None:
        if self._entries and entry.commit_ts < self._entries[-1].commit_ts:
            raise ValueError("delta entries must arrive in commit order")
        self._cost.charge(self._cost.row_point_write_us)
        self._entries.append(entry)
        self._latest[entry.key] = len(self._entries) - 1

    def record_insert(self, row: Row, commit_ts: Timestamp) -> None:
        key = self.schema.key_of(row)
        self.append(DeltaEntry(DeltaKind.INSERT, key, row, commit_ts))

    def record_update(self, row: Row, commit_ts: Timestamp) -> None:
        key = self.schema.key_of(row)
        self.append(DeltaEntry(DeltaKind.UPDATE, key, row, commit_ts))

    def record_delete(self, key: Key, commit_ts: Timestamp) -> None:
        self.append(DeltaEntry(DeltaKind.DELETE, key, None, commit_ts))

    # ------------------------------------------------------------- reads

    def effective_rows(
        self, snapshot_ts: Timestamp, predicate: Predicate = ALWAYS_TRUE
    ) -> tuple[dict[Key, Row], set[Key]]:
        """Collapse entries visible at ``snapshot_ts`` into final images.

        Returns ``(live, tombstones)``: the newest row image per key that
        still matches ``predicate``, and the set of keys deleted by the
        delta (tombstones must also suppress main-store rows).
        """
        live: dict[Key, Row] = {}
        tombstones: set[Key] = set()
        examined = 0
        for entry in self._entries:
            if entry.commit_ts > snapshot_ts:
                break  # entries are commit-ordered
            examined += 1
            if entry.kind is DeltaKind.DELETE:
                live.pop(entry.key, None)
                tombstones.add(entry.key)
            else:
                tombstones.discard(entry.key)
                live[entry.key] = entry.row  # updates overwrite in place
        self._cost.charge_rows(self._cost.delta_scan_per_row_us, max(examined, 1))
        if not isinstance(predicate, type(ALWAYS_TRUE)):
            live = {
                key: row
                for key, row in live.items()
                if predicate.matches(row, self.schema)
            }
        return live, tombstones

    def updated_keys(self) -> set[Key]:
        return set(self._latest.keys())

    def max_commit_ts(self) -> Timestamp:
        return self._entries[-1].commit_ts if self._entries else 0

    def min_commit_ts(self) -> Timestamp:
        return self._entries[0].commit_ts if self._entries else 0

    def memory_bytes(self) -> int:
        width = max(1, len(self.schema.columns))
        return len(self._entries) * width * 56  # row-wise deltas are fat

    # ------------------------------------------------------------- merge support

    def drain_up_to(self, ts: Timestamp) -> list[DeltaEntry]:
        """Remove and return every entry with commit_ts <= ts.

        The data synchronizer calls this inside its merge; remaining
        entries (committed after ``ts``) stay behind for the next round.
        """
        cut = 0
        while cut < len(self._entries) and self._entries[cut].commit_ts <= ts:
            cut += 1
        drained = self._entries[:cut]
        self._entries = self._entries[cut:]
        self._latest = {}
        for i, entry in enumerate(self._entries):
            self._latest[entry.key] = i
        return drained

    def clear(self) -> list[DeltaEntry]:
        return self.drain_up_to(self.max_commit_ts())


def collapse_entries(
    entries: Iterable[DeltaEntry],
) -> tuple[dict[Key, Row], set[Key]]:
    """Final row image per key plus tombstoned keys, for a merge batch."""
    live: dict[Key, Row] = {}
    tombstones: set[Key] = set()
    for entry in entries:
        if entry.kind is DeltaKind.DELETE:
            live.pop(entry.key, None)
            tombstones.add(entry.key)
        else:
            tombstones.discard(entry.key)
            live[entry.key] = entry.row
    return live, tombstones
