"""Log-based (disk) delta files with a B+-tree key index.

The TiDB-style delta path of Table 2: committed changes destined for the
columnar replica are shipped as *log files* that accumulate on disk until
the log-based delta merge folds them into the column store.  Analytical
scans that want fresh data must read these unmerged files — the survey's
"log-based delta and column scan", which is more expensive than the
in-memory variant because every file read is charged page I/O, and
freshness suffers from shipping latency.

Each sealed file carries a B+-tree over its keys so merges and point
patches "can be efficiently located with key lookups" (§2.2(3)).
"""

from __future__ import annotations

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.types import Key, Row, Schema
from .btree import BPlusTree
from .delta_batch import KIND_DELETE, KIND_INSERT, KIND_UPDATE
from .delta_store import DeltaEntry, DeltaKind, collapse_entries

_ENTRIES_PER_PAGE = 64

_KIND_OF_CODE = {
    KIND_INSERT: DeltaKind.INSERT,
    KIND_UPDATE: DeltaKind.UPDATE,
    KIND_DELETE: DeltaKind.DELETE,
}
_CODE_OF_KIND = {kind: code for code, kind in _KIND_OF_CODE.items()}


class DeltaLogFile:
    """One sealed, immutable delta log file.

    Holds either materialized :class:`DeltaEntry` objects (scalar
    ingest) or parallel column slabs (batched ingest); each
    representation derives — and caches — the other on demand.  The
    per-file B+-tree key index is likewise built on first access, so
    batch merges that collapse whole files columnar never pay for
    per-key tree construction."""

    __slots__ = (
        "file_id",
        "_entries",
        "_columns",
        "_key_index",
        "min_commit_ts",
        "max_commit_ts",
    )

    def __init__(self, file_id: int, entries: list[DeltaEntry]):
        self.file_id = file_id
        self._entries = entries
        self._columns = None
        self._key_index: BPlusTree | None = None
        self.min_commit_ts = entries[0].commit_ts if entries else 0
        self.max_commit_ts = entries[-1].commit_ts if entries else 0

    @classmethod
    def from_columns(
        cls,
        file_id: int,
        kinds: list[int],
        keys: list[Key],
        rows: list[Row | None],
        commit_ts: list[Timestamp],
    ) -> "DeltaLogFile":
        """Seal a file directly from column slabs (batched replay)."""
        obj = cls.__new__(cls)
        obj.file_id = file_id
        obj._entries = None
        obj._columns = (kinds, keys, rows, commit_ts)
        obj._key_index = None
        obj.min_commit_ts = commit_ts[0] if commit_ts else 0
        obj.max_commit_ts = commit_ts[-1] if commit_ts else 0
        return obj

    def __len__(self) -> int:
        if self._entries is not None:
            return len(self._entries)
        return len(self._columns[1])

    @property
    def entries(self) -> list[DeltaEntry]:
        if self._entries is None:
            kind_of = _KIND_OF_CODE
            self._entries = [
                DeltaEntry(kind_of[kind], key, row, ts)
                for kind, key, row, ts in zip(*self._columns)
            ]
        return self._entries

    def columns(self) -> tuple[list[int], list[Key], list, list[Timestamp]]:
        """``(kind codes, keys, rows, commit_ts)`` parallel lists."""
        if self._columns is None:
            code_of = _CODE_OF_KIND
            es = self._entries
            self._columns = (
                [code_of[e.kind] for e in es],
                [e.key for e in es],
                [e.row for e in es],
                [e.commit_ts for e in es],
            )
        return self._columns

    @property
    def key_index(self) -> BPlusTree:
        if self._key_index is None:
            # Keep only the newest position per key; tuples keep mixed
            # key types comparable inside one table's key space.  A dict
            # pass + sorted bulk build beats n top-down tree inserts.
            newest: dict = {}
            if self._entries is not None:
                for pos, entry in enumerate(self._entries):
                    newest[_index_key(entry.key)] = pos
            else:
                for pos, key in enumerate(self._columns[1]):
                    newest[_index_key(key)] = pos
            self._key_index = BPlusTree.from_sorted(sorted(newest.items()))
        return self._key_index

    def indexed_key_count(self) -> int:
        """Distinct indexed keys — the scalar merge walk's probe count —
        without forcing the B+-tree build."""
        if self._key_index is not None:
            return len(self._key_index)
        if self._entries is not None:
            return len({e.key for e in self._entries})
        return len(set(self._columns[1]))

    def page_count(self) -> int:
        return max(1, -(-len(self) // _ENTRIES_PER_PAGE))

    def lookup(self, key: Key) -> DeltaEntry | None:
        pos = self.key_index.get(_index_key(key))
        if pos is None:
            return None
        return self.entries[pos]


def _index_key(key: Key):
    return key if isinstance(key, tuple) else (key,)


class LogDeltaManager:
    """Open write buffer + sealed files awaiting merge."""

    def __init__(
        self,
        schema: Schema,
        cost: CostModel | None = None,
        seal_threshold: int = 256,
        ship_latency_us: float = 2_000.0,
    ):
        self.schema = schema
        self._cost = cost or CostModel()
        self._buffer: list[DeltaEntry] = []
        self._files: list[DeltaLogFile] = []
        self._next_file_id = 0
        self._seal_threshold = seal_threshold
        #: Simulated latency between a commit and its availability in a
        #: sealed, shipped file — the source of the architecture's
        #: freshness gap.
        self.ship_latency_us = ship_latency_us

    # ------------------------------------------------------------- ingest

    def append(self, entry: DeltaEntry) -> None:
        self._buffer.append(entry)
        self._cost.charge(self._cost.wal_append_us)
        if len(self._buffer) >= self._seal_threshold:
            self.seal()

    def record_insert(self, row: Row, commit_ts: Timestamp) -> None:
        key = self.schema.key_of(row)
        self.append(DeltaEntry(DeltaKind.INSERT, key, row, commit_ts))

    def record_update(self, row: Row, commit_ts: Timestamp) -> None:
        key = self.schema.key_of(row)
        self.append(DeltaEntry(DeltaKind.UPDATE, key, row, commit_ts))

    def record_delete(self, key: Key, commit_ts: Timestamp) -> None:
        self.append(DeltaEntry(DeltaKind.DELETE, key, None, commit_ts))

    def append_batch(self, entries: list[DeltaEntry]) -> None:
        """Bulk ingest: one WAL charge for the whole batch, sealing as
        many full files as the threshold dictates."""
        if not entries:
            return
        self._cost.charge_rows(self._cost.wal_append_us, len(entries))
        buf = self._buffer
        buf.extend(entries)
        threshold = self._seal_threshold
        n_full = len(buf) // threshold
        for i in range(n_full):
            sealed = DeltaLogFile(
                self._next_file_id, buf[i * threshold : (i + 1) * threshold]
            )
            self._next_file_id += 1
            self._files.append(sealed)
            self._cost.charge(self._cost.page_write_us * sealed.page_count())
            self._cost.charge(self.ship_latency_us)
        del buf[: n_full * threshold]

    def append_batch_columns(
        self,
        kinds: list[int],
        keys: list[Key],
        rows: list[Row | None],
        commit_ts: list[Timestamp],
    ) -> None:
        """Columnar bulk ingest: same sealing cadence and charges as
        :meth:`append_batch`, but full files keep the column slabs —
        no per-entry object materialization on the hot replay path.
        Only a sub-threshold head (topping up an open buffer) and tail
        ever become :class:`DeltaEntry` objects."""
        n = len(keys)
        if n == 0:
            return
        if not (len(kinds) == len(rows) == len(commit_ts) == n):
            raise ValueError("column slabs must have equal lengths")
        self._cost.charge_rows(self._cost.wal_append_us, n)
        threshold = self._seal_threshold
        kind_of = _KIND_OF_CODE
        start = 0
        if self._buffer:
            take = min(n, threshold - len(self._buffer))
            self._buffer.extend(
                DeltaEntry(kind_of[kinds[i]], keys[i], rows[i], commit_ts[i])
                for i in range(take)
            )
            start = take
            if len(self._buffer) >= threshold:
                self.seal()
        while n - start >= threshold:
            end = start + threshold
            sealed = DeltaLogFile.from_columns(
                self._next_file_id,
                kinds[start:end],
                keys[start:end],
                rows[start:end],
                commit_ts[start:end],
            )
            self._next_file_id += 1
            self._files.append(sealed)
            self._cost.charge(self._cost.page_write_us * sealed.page_count())
            self._cost.charge(self.ship_latency_us)
            start = end
        if start < n:
            self._buffer.extend(
                DeltaEntry(kind_of[kinds[i]], keys[i], rows[i], commit_ts[i])
                for i in range(start, n)
            )

    def seal(self) -> DeltaLogFile | None:
        """Flush the open buffer into a sealed file (ships it to the
        columnar side, paying write I/O + network shipping)."""
        if not self._buffer:
            return None
        sealed = DeltaLogFile(self._next_file_id, self._buffer)
        self._next_file_id += 1
        self._buffer = []
        self._files.append(sealed)
        self._cost.charge(self._cost.page_write_us * sealed.page_count())
        self._cost.charge(self.ship_latency_us)
        return sealed

    # ------------------------------------------------------------- reads

    @property
    def files(self) -> list[DeltaLogFile]:
        return self._files

    def pending_entries(self) -> int:
        return sum(len(f) for f in self._files) + len(self._buffer)

    def sealed_entries(self) -> int:
        return sum(len(f) for f in self._files)

    def unsealed_entries(self) -> int:
        return len(self._buffer)

    def scan_sealed(self, up_to_ts: Timestamp | None = None):
        """Read every sealed entry (paying page I/O per file)."""
        out: list[DeltaEntry] = []
        for file in self._files:
            self._cost.charge(self._cost.page_read_us * file.page_count())
            for entry in file.entries:
                if up_to_ts is None or entry.commit_ts <= up_to_ts:
                    out.append(entry)
        return out

    def effective_rows(self, up_to_ts: Timestamp | None = None):
        """Collapsed (live rows, tombstones) over sealed files only.

        Unsealed buffer entries have not shipped yet — that invisibility
        is exactly the freshness penalty the paper attributes to this
        design.
        """
        return collapse_entries(self.scan_sealed(up_to_ts))

    def max_sealed_ts(self) -> Timestamp:
        if not self._files:
            return 0
        return max(f.max_commit_ts for f in self._files)

    # ------------------------------------------------------------- merge support

    def drain_files(self) -> list[DeltaLogFile]:
        """Hand every sealed file to the merger and forget them."""
        drained = self._files
        self._files = []
        return drained

    def disk_bytes(self) -> int:
        width = max(1, len(self.schema.columns))
        return self.pending_entries() * width * 40
