"""Log-based (disk) delta files with a B+-tree key index.

The TiDB-style delta path of Table 2: committed changes destined for the
columnar replica are shipped as *log files* that accumulate on disk until
the log-based delta merge folds them into the column store.  Analytical
scans that want fresh data must read these unmerged files — the survey's
"log-based delta and column scan", which is more expensive than the
in-memory variant because every file read is charged page I/O, and
freshness suffers from shipping latency.

Each sealed file carries a B+-tree over its keys so merges and point
patches "can be efficiently located with key lookups" (§2.2(3)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.clock import Timestamp
from ..common.cost import CostModel
from ..common.types import Key, Row, Schema
from .btree import BPlusTree
from .delta_store import DeltaEntry, DeltaKind, collapse_entries

_ENTRIES_PER_PAGE = 64


@dataclass
class DeltaLogFile:
    """One sealed, immutable delta log file."""

    file_id: int
    entries: list[DeltaEntry]
    key_index: BPlusTree = field(repr=False)
    min_commit_ts: Timestamp = 0
    max_commit_ts: Timestamp = 0

    def __init__(self, file_id: int, entries: list[DeltaEntry]):
        self.file_id = file_id
        self.entries = entries
        self.key_index = BPlusTree()
        for pos, entry in enumerate(entries):
            # Keep only the newest position per key; tuples keep mixed
            # key types comparable inside one table's key space.
            self.key_index.insert(_index_key(entry.key), pos)
        self.min_commit_ts = entries[0].commit_ts if entries else 0
        self.max_commit_ts = entries[-1].commit_ts if entries else 0

    def __len__(self) -> int:
        return len(self.entries)

    def page_count(self) -> int:
        return max(1, -(-len(self.entries) // _ENTRIES_PER_PAGE))

    def lookup(self, key: Key) -> DeltaEntry | None:
        pos = self.key_index.get(_index_key(key))
        if pos is None:
            return None
        return self.entries[pos]


def _index_key(key: Key):
    return key if isinstance(key, tuple) else (key,)


class LogDeltaManager:
    """Open write buffer + sealed files awaiting merge."""

    def __init__(
        self,
        schema: Schema,
        cost: CostModel | None = None,
        seal_threshold: int = 256,
        ship_latency_us: float = 2_000.0,
    ):
        self.schema = schema
        self._cost = cost or CostModel()
        self._buffer: list[DeltaEntry] = []
        self._files: list[DeltaLogFile] = []
        self._next_file_id = 0
        self._seal_threshold = seal_threshold
        #: Simulated latency between a commit and its availability in a
        #: sealed, shipped file — the source of the architecture's
        #: freshness gap.
        self.ship_latency_us = ship_latency_us

    # ------------------------------------------------------------- ingest

    def append(self, entry: DeltaEntry) -> None:
        self._buffer.append(entry)
        self._cost.charge(self._cost.wal_append_us)
        if len(self._buffer) >= self._seal_threshold:
            self.seal()

    def record_insert(self, row: Row, commit_ts: Timestamp) -> None:
        key = self.schema.key_of(row)
        self.append(DeltaEntry(DeltaKind.INSERT, key, row, commit_ts))

    def record_update(self, row: Row, commit_ts: Timestamp) -> None:
        key = self.schema.key_of(row)
        self.append(DeltaEntry(DeltaKind.UPDATE, key, row, commit_ts))

    def record_delete(self, key: Key, commit_ts: Timestamp) -> None:
        self.append(DeltaEntry(DeltaKind.DELETE, key, None, commit_ts))

    def seal(self) -> DeltaLogFile | None:
        """Flush the open buffer into a sealed file (ships it to the
        columnar side, paying write I/O + network shipping)."""
        if not self._buffer:
            return None
        sealed = DeltaLogFile(self._next_file_id, self._buffer)
        self._next_file_id += 1
        self._buffer = []
        self._files.append(sealed)
        self._cost.charge(self._cost.page_write_us * sealed.page_count())
        self._cost.charge(self.ship_latency_us)
        return sealed

    # ------------------------------------------------------------- reads

    @property
    def files(self) -> list[DeltaLogFile]:
        return self._files

    def pending_entries(self) -> int:
        return sum(len(f) for f in self._files) + len(self._buffer)

    def sealed_entries(self) -> int:
        return sum(len(f) for f in self._files)

    def unsealed_entries(self) -> int:
        return len(self._buffer)

    def scan_sealed(self, up_to_ts: Timestamp | None = None):
        """Read every sealed entry (paying page I/O per file)."""
        out: list[DeltaEntry] = []
        for file in self._files:
            self._cost.charge(self._cost.page_read_us * file.page_count())
            for entry in file.entries:
                if up_to_ts is None or entry.commit_ts <= up_to_ts:
                    out.append(entry)
        return out

    def effective_rows(self, up_to_ts: Timestamp | None = None):
        """Collapsed (live rows, tombstones) over sealed files only.

        Unsealed buffer entries have not shipped yet — that invisibility
        is exactly the freshness penalty the paper attributes to this
        design.
        """
        return collapse_entries(self.scan_sealed(up_to_ts))

    def max_sealed_ts(self) -> Timestamp:
        if not self._files:
            return 0
        return max(f.max_commit_ts for f in self._files)

    # ------------------------------------------------------------- merge support

    def drain_files(self) -> list[DeltaLogFile]:
        """Hand every sealed file to the merger and forget them."""
        drained = self._files
        self._files = []
        return drained

    def disk_bytes(self) -> int:
        width = max(1, len(self.schema.columns))
        return self.pending_entries() * width * 40
